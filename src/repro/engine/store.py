"""Append-only JSONL result store with content-hash caching.

One line per job record. The ``key`` field is the job's content hash
(:attr:`repro.engine.jobs.Job.key`); the runner consults :meth:`keys`
before executing, so re-running an unchanged spec touches the store
only to read. JSONL keeps the store greppable, mergeable
(concatenation), and safely appendable without rewriting history.

Two companions keep the flat file honest at scale:

* **Schema migration** (:mod:`repro.engine.migration`): every row read
  back is normalized to the current schema by the declarative
  :data:`~repro.engine.migration.CHAIN` — one registered
  :class:`~repro.engine.migration.MigrationStep` per version bump,
  validated gapless at import time. Old rows keep their cache keys
  (default-valued jobs hash identically), so old stores keep absorbing
  re-runs.
* **Sidecar index** (:mod:`repro.engine.index`): a sqlite file next to
  the store maps cache key → byte offset, making :meth:`keys`,
  :meth:`lookup` and key-only :meth:`select` O(log n) probes plus
  seek-reads instead of full-file scans. The index is disposable and
  self-healing — growth is absorbed incrementally, and a rewrite of
  the file (detected by content fingerprint) triggers a rebuild. Pass
  ``index=False`` to force pure scans (the index-vs-scan equivalence
  is pinned by ``tests/test_store_properties.py``).

Reads stream: :meth:`records` parses the file lazily and never
materializes it, and a torn tail left by a concurrent writer is simply
not yet visible. Writers in other processes become visible on the next
read that syncs the index — call :meth:`refresh` to force a
full-fingerprint re-check (the serve daemon does, see
``SolverService.refresh_store``).
"""

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

try:  # POSIX advisory locks; absent on some platforms (see append()).
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

from repro.engine.index import (
    IndexUnavailableError,
    StoreIndex,
    complete_region_end,
    scan_rows,
)
from repro.engine.migration import CHAIN, SCHEMA_VERSION  # noqa: F401 (re-export)


class ResultStore:
    """A persistent store of job records at ``path`` (created on demand).

    Args:
        path: the JSONL file (its sidecar index lives at ``<path>.idx``).
        index: maintain/use the sidecar index (default). With ``False``
            every read is a linear scan — correct, just O(n).
        metrics: optional :class:`~repro.telemetry.MetricsRegistry`;
            lookup and index-maintenance counters land there.
    """

    def __init__(
        self,
        path: os.PathLike,
        index: bool = True,
        metrics: Optional[Any] = None,
    ) -> None:
        self.path = Path(path)
        self.metrics = metrics
        self._use_index = index
        self._index: Optional[StoreIndex] = None

    # -- plumbing --------------------------------------------------------

    def bind_metrics(self, metrics: Any) -> None:
        """Attach a metrics registry after construction (the daemon's)."""
        self.metrics = metrics
        if self._index is not None:
            self._index.metrics = metrics

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _idx(self, verify: bool = False) -> Optional[StoreIndex]:
        """The synced sidecar index, or ``None`` when disabled/broken.

        The first contact always verifies the content fingerprint (a
        stale sidecar from a rewritten file must not survive); later
        syncs use the cheap size probe unless ``verify`` forces it.
        """
        if not self._use_index:
            return None
        try:
            if self._index is None:
                self._index = StoreIndex(self.path, metrics=self.metrics)
                verify = True
            self._index.sync(verify=verify)
            return self._index
        except IndexUnavailableError:
            # Sidecar unwritable/locked-out: degrade to scans for this
            # instance rather than failing reads of a healthy store.
            self._count("engine.store.index.unavailable")
            if self._index is not None:
                self._index.close()
                self._index = None
            self._use_index = False
            return None

    def refresh(self) -> None:
        """Observe other-process writers *now*.

        Streaming reads are always current, but the sidecar's cheap
        staleness probe only watches file size; ``refresh`` forces a
        full fingerprint verification (and rebuild if the file was
        rewritten rather than appended). Long-lived readers — the
        serve daemon's hot map, a watch loop — call this on their
        refresh cadence.
        """
        self._idx(verify=True)

    # -- reading ---------------------------------------------------------

    def scan(self, start: int = 0) -> Iterator[Tuple[int, int, Dict[str, Any]]]:
        """Stream ``(offset, length, migrated_row)`` from byte ``start``.

        The offsets let incremental consumers (the daemon's hot map)
        resume exactly where they left off; a torn tail from a
        concurrent writer is not yielded.
        """
        for offset, length, row in scan_rows(self.path, start):
            yield offset, length, CHAIN.migrate(row)

    def records(self, start: int = 0) -> Iterator[Dict[str, Any]]:
        """Yield every stored record (streaming; nothing materialized)."""
        for _, _, row in self.scan(start):
            yield row

    def tail_offset(self) -> int:
        """Byte offset just past the last complete row (resume cursor)."""
        index = self._idx()
        if index is not None:
            return index.indexed_bytes()
        return complete_region_end(self.path)

    def keys(self) -> Set[str]:
        """The cache keys of every stored record."""
        index = self._idx()
        if index is not None:
            return index.keys()
        return {record["key"] for record in self.records()}

    def lookup(self, key: str) -> Optional[Dict[str, Any]]:
        """The first stored record for ``key``, or ``None``.

        Indexed: one B-tree probe plus one seek-read. Unindexed: a
        linear scan with early exit.
        """
        index = self._idx()
        if index is not None:
            span = index.lookup(key)
            if span is None:
                return None
            self._count("engine.store.lookup.indexed")
            return self._read_spans([span])[0]
        self._count("engine.store.lookup.scan")
        for record in self.records():
            if record.get("key") == key:
                return record
        return None

    def _read_spans(
        self, spans: List[Tuple[int, int]]
    ) -> List[Dict[str, Any]]:
        """Seek-read rows at ``(offset, length)`` spans (file order)."""
        out = []
        with self.path.open("rb") as handle:
            for offset, length in spans:
                handle.seek(offset)
                out.append(
                    CHAIN.migrate(json.loads(handle.read(length)))
                )
        return out

    def select(
        self,
        scenario: Optional[str] = None,
        keys: Optional[Iterable[str]] = None,
        network: Optional[str] = None,
        backend: Optional[str] = None,
        placement: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Records filtered by scenario, network model name, backend
        engine name, placement strategy, and/or an explicit key set.

        A *key-only* select (no other filter) returns the first stored
        record per requested key, in file order — served by the index
        as seek-reads when available. Filtered selects stream-scan the
        file and return every matching row.
        """
        wanted = set(keys) if keys is not None else None
        key_only = wanted is not None and all(
            value is None for value in (scenario, network, backend, placement)
        )
        if key_only:
            index = self._idx()
            if index is not None:
                self._count("engine.store.lookup.indexed", len(wanted))
                return self._read_spans(index.lookup_many(sorted(wanted)))
            # Scan fallback with identical first-occurrence semantics.
            self._count("engine.store.lookup.scan", len(wanted))
            out = []
            remaining = set(wanted)
            for record in self.records():
                if record.get("key") in remaining:
                    remaining.discard(record["key"])
                    out.append(record)
                    if not remaining:
                        break
            return out
        out = []
        for record in self.records():
            if scenario is not None and record.get("scenario") != scenario:
                continue
            if network is not None and record.get("network_model") != network:
                continue
            if backend is not None and record.get("backend_name") != backend:
                continue
            if placement is not None and record.get("placement") != placement:
                continue
            if wanted is not None and record["key"] not in wanted:
                continue
            out.append(record)
        return out

    def __len__(self) -> int:
        index = self._idx()
        if index is not None:
            return index.row_count()
        return sum(1 for _ in self.records())

    # -- writing ---------------------------------------------------------

    def append(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append records (stamped with the schema version); returns count.

        Input dicts are not mutated; the stamped copies land in the
        file, and an already-materialized sidecar index absorbs them
        incrementally (a lazy index simply catches up on first read).

        Concurrent-writer safe: the whole batch is serialized to one
        buffer and written through an ``O_APPEND`` descriptor under an
        advisory ``flock`` (where available), so a daemon and a CLI
        sweep appending to the same store cannot interleave partial
        rows (pinned by ``tests/test_store_concurrency.py``).
        """
        rows = []
        for record in records:
            row = CHAIN.migrate(dict(record))
            row.setdefault("schema", SCHEMA_VERSION)
            rows.append(row)
        if not rows:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        blob = "".join(
            json.dumps(row, sort_keys=True) + "\n" for row in rows
        ).encode("utf-8")
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                # One buffer, one descriptor: O_APPEND positions each
                # write at EOF atomically, and the lock serializes the
                # (rare) multi-write case for large batches.
                while blob:
                    written = os.write(fd, blob)
                    blob = blob[written:]
            finally:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
        if self._index is not None and self._use_index:
            try:
                self._index.sync()
            except IndexUnavailableError:
                self._count("engine.store.index.unavailable")
                self._index.close()
                self._index = None
                self._use_index = False
        return len(rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.path)!r})"
