"""Append-only JSONL result store with content-hash caching.

One line per job record. The ``key`` field is the job's content hash
(:attr:`repro.engine.jobs.Job.key`); the runner consults :meth:`keys` before
executing, so re-running an unchanged spec touches the store only to read.
JSONL keeps the store greppable, mergeable (concatenation), and safely
appendable without rewriting history.

A :class:`ResultStore` instance caches the parsed file in memory after the
first read and keeps the cache in sync with its own appends, so repeated
``keys()`` / ``select()`` / ``len()`` calls (one per spec in a suite run)
parse the file once rather than once per call. Writers in *other* processes
are not observed after the first read — construct a fresh instance to
re-read the file.
"""

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set

try:  # POSIX advisory locks; absent on some platforms (see _locked_fd).
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: v1: no network condition. v2: records carry ``network`` (canonical
#: spec dict) and ``network_model`` (model name, the grouping field).
#: v3: records additionally carry ``backend`` (canonical spec dict) and
#: ``backend_name`` (engine name, the grouping field). v4: records
#: carry ``placement`` (terminal-placement strategy name). v5: profiled
#: jobs carry a ``profile`` field (per-phase rounds / messages / bits /
#: wall-time, :meth:`repro.perf.PhaseProfiler.to_dict`); unprofiled
#: records simply lack it, so no upgrade step is needed. Old rows read
#: back with the defaults filled in — v1 as the clean ``reliable``
#: channel, v1/v2 as the ``reference`` engine, v1–v3 as ``uniform``
#: placement, v1–v4 as unprofiled — and their cache keys are unchanged
#: (default-valued jobs hash identically), so old stores keep absorbing
#: re-runs.
SCHEMA_VERSION = 5

_RELIABLE = {"model": "reliable", "params": {}}
_REFERENCE = {"name": "reference", "params": {}}


def _upgrade(row: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a stored row to the current schema in memory."""
    if "network" not in row:
        row["network"] = dict(_RELIABLE, params={})
    if "network_model" not in row:
        row["network_model"] = row["network"].get("model", "reliable")
    if "backend" not in row:
        row["backend"] = dict(_REFERENCE, params={})
    if "backend_name" not in row:
        row["backend_name"] = row["backend"].get("name", "reference")
    if "placement" not in row:
        row["placement"] = "uniform"
    return row


class ResultStore:
    """A persistent store of job records at ``path`` (created on demand)."""

    def __init__(self, path: os.PathLike) -> None:
        """Open (lazily) the store at ``path``; the file may not exist yet."""
        self.path = Path(path)
        self._cache: Optional[List[Dict[str, Any]]] = None

    # -- reading ---------------------------------------------------------

    def _load(self) -> List[Dict[str, Any]]:
        if self._cache is None:
            rows: List[Dict[str, Any]] = []
            if self.path.exists():
                with self.path.open("r", encoding="utf-8") as handle:
                    for line in handle:
                        line = line.strip()
                        if line:
                            rows.append(_upgrade(json.loads(line)))
            self._cache = rows
        return self._cache

    def records(self) -> Iterator[Dict[str, Any]]:
        """Yield every stored record."""
        yield from self._load()

    def keys(self) -> Set[str]:
        """The cache keys of every stored record."""
        return {record["key"] for record in self._load()}

    def select(
        self,
        scenario: Optional[str] = None,
        keys: Optional[Iterable[str]] = None,
        network: Optional[str] = None,
        backend: Optional[str] = None,
        placement: Optional[str] = None,
    ) -> List[Dict[str, Any]]:
        """Records filtered by scenario, network model name, backend
        engine name, placement strategy, and/or an explicit key set."""
        wanted = set(keys) if keys is not None else None
        out = []
        for record in self._load():
            if scenario is not None and record.get("scenario") != scenario:
                continue
            if network is not None and record.get("network_model") != network:
                continue
            if backend is not None and record.get("backend_name") != backend:
                continue
            if placement is not None and record.get("placement") != placement:
                continue
            if wanted is not None and record["key"] not in wanted:
                continue
            out.append(record)
        return out

    def __len__(self) -> int:
        return len(self._load())

    # -- writing ---------------------------------------------------------

    def append(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append records (stamped with the schema version); returns count.

        Input dicts are not mutated; the stamped copies land in the file
        and the in-memory cache.

        Concurrent-writer safe: the whole batch is serialized to one
        buffer and written through an ``O_APPEND`` descriptor under an
        advisory ``flock`` (where available), so a daemon and a CLI
        sweep appending to the same store cannot interleave partial
        rows (pinned by ``tests/test_store_concurrency.py``).
        """
        rows = []
        for record in records:
            row = _upgrade(dict(record))
            row.setdefault("schema", SCHEMA_VERSION)
            rows.append(row)
        if not rows:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        blob = "".join(
            json.dumps(row, sort_keys=True) + "\n" for row in rows
        ).encode("utf-8")
        fd = os.open(
            self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
        )
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            try:
                # One buffer, one descriptor: O_APPEND positions each
                # write at EOF atomically, and the lock serializes the
                # (rare) multi-write case for large batches.
                while blob:
                    written = os.write(fd, blob)
                    blob = blob[written:]
            finally:
                if fcntl is not None:
                    fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)
        if self._cache is not None:
            self._cache.extend(rows)
        return len(rows)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.path)!r})"
