"""Parallel batch runner: expand a spec, execute jobs, persist records.

Jobs cross the process boundary as plain dicts (see :meth:`Job.to_dict`), so
the pool workers only need the library importable — no closure pickling. Each
job rebuilds its instance from the registry by name and its derived seeds,
making every record exactly reproducible from its stored configuration.
"""

import os
import random
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.engine.algorithms import ALGORITHMS
from repro.engine.jobs import Job, expand_jobs
from repro.engine.registry import GRAPH_FAMILIES, ScenarioSpec
from repro.engine.store import SCHEMA_VERSION, ResultStore
from repro.exceptions import WorkerCrashError
from repro.model.instance import SteinerForestInstance
from repro.netmodel import build_network_model
from repro.perf import PhaseProfiler, make_ledger_run
from repro.workloads import place_terminals

#: Result attributes promoted to metrics whenever the solver exposes them.
_OPTIONAL_RESULT_METRICS = (
    "sigma",
    "num_phases",
    "num_growth_phases",
    "num_merge_phases",
)


def build_instance(job: Job) -> SteinerForestInstance:
    """Rebuild the (algorithm-independent) instance a job runs on."""
    family = GRAPH_FAMILIES[job.family]
    graph = family.build(random.Random(job.graph_seed()), **job.family_params)
    return place_terminals(
        job.placement, graph, job.k, job.component_size,
        random.Random(job.placement_seed()),
    )


def execute_job(job_dict: Mapping[str, Any]) -> Dict[str, Any]:
    """Run one job (worker entry point); returns its JSON-able record.

    The job's ``backend`` selects the *ledger engine* for run-accepting
    solvers (:func:`repro.perf.make_ledger_run`): ``flatarray`` (or a
    large-instance ``auto``) hands the solver a compiled
    :class:`~repro.perf.FastCongestRun`, which changes wall time but —
    by the fast path's conformance pin — nothing observable: weights,
    rounds, messages, per-edge traffic, and cache-relevant outputs are
    byte-identical to ``reference``. For message-level executions
    (node-program scenarios, conformance suites, benchmarks) the axis
    selects the simulator engine as before. Like the network axis, a
    non-default backend hashes to its own cache key.

    With ``job.profile`` set, a :class:`~repro.perf.PhaseProfiler`
    rides along (attached to the ledger for run-accepting solvers, as
    wall-time spans for centralized ones) and the record gains a
    ``profile`` field; profiling never changes the computation.
    """
    job = Job.from_dict(job_dict)
    instance = build_instance(job)
    algorithm = ALGORITHMS[job.algorithm]
    rng = random.Random(job.algorithm_seed())
    kwargs: Dict[str, Any] = dict(job.algo_params)
    profiler = PhaseProfiler() if job.profile else None
    ledger = None
    # Ledger construction is inside the timed window: the flatarray/auto
    # engines pay their topology compile there, so stored wall_time rows
    # compare backends end-to-end (same clock placement as
    # benchmarks/bench_e18_profile.py).
    started = time.perf_counter()
    if algorithm.accepts_run:
        ledger = make_ledger_run(job.backend, instance.graph)
        if profiler is not None:
            profiler.attach(ledger)
        kwargs["run"] = ledger
    elif algorithm.accepts_profiler and profiler is not None:
        kwargs["profiler"] = profiler
    if (
        profiler is not None
        and not algorithm.accepts_run
        and not algorithm.accepts_profiler
    ):
        # No internal instrumentation points: one span for the whole call.
        with profiler.span("solve"):
            result = algorithm.run(instance, rng, **kwargs)
    else:
        result = algorithm.run(instance, rng, **kwargs)
    wall_time = time.perf_counter() - started
    if profiler is not None:
        profiler.finish()
    result.solution.assert_feasible(instance)

    metrics: Dict[str, Any] = {
        "n": instance.graph.num_nodes,
        "m": instance.graph.num_edges,
        "t": instance.num_terminals,
        "weight": result.solution.weight,
        "wall_time": wall_time,
    }
    rounds = getattr(result, "rounds", None)
    if rounds is not None:
        metrics["rounds"] = rounds
    run = getattr(result, "run", None)
    if run is not None:
        metrics["messages"] = run.messages
        metrics["bits"] = run.bits
        if run.edge_messages:
            metrics["max_edge_messages"] = max(run.edge_messages.values())
    network_model = build_network_model(job.network)
    if network_model.name != "reliable" and rounds is not None:
        # The solvers run against the clean ledger; surface the network
        # condition's latency overhead via the model's synchronizer
        # accounting (see NetworkModel.emulated_rounds).
        metrics["emulated_rounds"] = network_model.emulated_rounds(
            rounds,
            bandwidth_bits=run.bandwidth_bits if run is not None else None,
        )
    for attr in _OPTIONAL_RESULT_METRICS:
        value = getattr(result, attr, None)
        if value is not None:
            metrics[attr] = value
    if algorithm.extra_metrics is not None:
        metrics.update(algorithm.extra_metrics(result))
    if job.exact:
        from repro.exact import steiner_forest_cost

        opt = steiner_forest_cost(instance)
        metrics["opt"] = opt
        metrics["ratio"] = result.solution.weight / opt if opt else 1.0

    record = job.identity()
    record["key"] = job.key
    record["schema"] = SCHEMA_VERSION
    # Explicit display/grouping fields: identity() omits the default
    # network, backend, and placement (cache-key stability), records
    # never do.
    record["placement"] = job.placement
    record["network"] = {
        "model": network_model.name,
        "params": dict(job.network["params"]),
    }
    record["network_model"] = network_model.name
    record["backend"] = {
        "name": job.backend["name"],
        "params": dict(job.backend["params"]),
    }
    record["backend_name"] = job.backend["name"]
    record["metrics"] = metrics
    if profiler is not None:
        record["profile"] = profiler.to_dict(
            bandwidth_bits=ledger.bandwidth_bits if ledger is not None else None
        )
    return record


#: Progress sink: called with one human-readable line per event.
ProgressLog = Optional[Callable[[str], None]]


def stderr_log(message: str) -> None:
    """The default CLI progress sink (long sweeps aren't silent)."""
    print(message, file=sys.stderr, flush=True)


def _job_event(
    telemetry: Optional[Any],
    status: str,
    job: Job,
    *,
    done: int = 0,
    total: int = 0,
    **fields: Any,
) -> None:
    """One job-lifecycle event (queued → running → cached / completed /
    failed) on the bus, when one is attached."""
    if telemetry is None:
        return
    telemetry.emit(
        "job_queued" if status == "queued" else
        "job_start" if status == "running" else
        "job_cached" if status == "cached" else "job_end",
        status=status,
        scenario=job.scenario,
        algorithm=job.algorithm,
        key=job.key,
        done=done,
        total=total,
        **fields,
    )


#: Pool-crash retry budget per job: a job whose worker died once is
#: retried in a fresh pool (jobs are pure, and the killer was probably a
#: neighbour); a job in flight across two crashes is presumed poisonous
#: and fails permanently.
MAX_JOB_ATTEMPTS = 2


def _run_jobs(
    jobs: List[Job],
    max_workers: Optional[int],
    parallel: bool,
    log: ProgressLog = None,
    scenario: str = "",
    telemetry: Optional[Any] = None,
    worker: Callable[[Mapping[str, Any]], Dict[str, Any]] = execute_job,
) -> List[Dict[str, Any]]:
    payloads = [job.to_dict() for job in jobs]
    total = len(payloads)

    def note(done: int, job: Job, record: Dict[str, Any]) -> None:
        wall = record["metrics"].get("wall_time", 0.0)
        # The legacy progress line is rendered by the telemetry console
        # shim (format_progress) from this event; ``log`` callers get it
        # through a CallbackSink attached in run_spec.
        _job_event(
            telemetry, "completed", job,
            done=done, total=total, wall_time=wall,
        )
        if telemetry is not None:
            telemetry.histogram("engine.job_wall_seconds").observe(wall)
            telemetry.counter("engine.jobs_executed").inc()

    def fail(done: int, job: Job, error: BaseException) -> None:
        _job_event(
            telemetry, "failed", job,
            done=done, total=total, error=repr(error),
        )
        if telemetry is not None:
            telemetry.counter("engine.jobs_failed").inc()

    if not parallel or len(jobs) <= 1:
        records = []
        for job, payload in zip(jobs, payloads):
            _job_event(telemetry, "running", job,
                       done=len(records), total=total)
            try:
                record = worker(payload)
            except BaseException as exc:
                fail(len(records) + 1, job, exc)
                raise
            records.append(record)
            note(len(records), job, record)
        return records
    if max_workers is None:
        # Saturate the machine by default; sweeps are embarrassingly
        # parallel and jobs are independent.
        max_workers = os.cpu_count() or 1
    results: List[Optional[Dict[str, Any]]] = [None] * total
    attempts = [0] * total
    pending_indices = list(range(total))
    crashed: List[int] = []
    done = 0
    for index in pending_indices:
        _job_event(telemetry, "queued", jobs[index],
                   done=index + 1, total=total)
    while pending_indices:
        broken: Optional[BaseException] = None
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(worker, payloads[index]): index
                for index in pending_indices
            }
            for future in as_completed(futures):
                index = futures[future]
                try:
                    results[index] = future.result()
                except BrokenProcessPool as exc:
                    # The pool is poisoned: every unfinished future will
                    # raise the same error. Leave the loop and decide
                    # per job below (retry in a fresh pool, or fail).
                    broken = exc
                    break
                except BaseException as exc:
                    done += 1
                    fail(done, jobs[index], exc)
                    raise
                done += 1
                note(done, jobs[index], results[index])
        if broken is None:
            break
        # A worker died mid-sweep (killed process, OOM, segfault). Every
        # unfinished job was either running in or queued behind the dead
        # worker; charge each one an attempt, retry the ones with budget
        # left in a fresh pool, and surface the rest as structured
        # failures instead of wedging on the bare BrokenProcessPool.
        unfinished = [i for i in pending_indices if results[i] is None]
        retryable = []
        for index in unfinished:
            attempts[index] += 1
            if attempts[index] < MAX_JOB_ATTEMPTS:
                retryable.append(index)
            else:
                done += 1
                crashed.append(index)
                fail(done, jobs[index], broken)
        pending_indices = retryable
    if crashed:
        raise WorkerCrashError(
            f"worker process died while running {len(crashed)} job(s) "
            f"(each retried once in a fresh pool; "
            f"{total - len(crashed)} of {total} jobs completed)",
            job_keys=[jobs[index].key for index in crashed],
        )
    return results


@dataclass
class SweepStats:
    """Outcome of running one spec: what ran, what the cache absorbed.

    ``records`` holds the full result set for the spec in job order —
    freshly executed rows merged with cached rows read back from the store.
    """

    scenario: str
    executed: int
    cached: int
    records: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Total jobs the spec expanded to (executed + cache hits)."""
        return self.executed + self.cached


def _open_telemetry(
    telemetry: Optional[Any], log: ProgressLog, workload: Dict[str, Any]
) -> "tuple[Optional[Any], bool]":
    """Resolve the bus a sweep reports to: the caller's, a private one
    wrapping ``log`` (so legacy progress callers get byte-identical
    lines through the compat sink), or none at all.

    Returns ``(telemetry, owned)``; an owned bus is closed by the sweep.
    """
    if telemetry is not None:
        return telemetry, False
    if log is None:
        return None, False
    from repro.telemetry import CallbackSink, RunManifest, Telemetry

    bus = Telemetry(
        manifest=RunManifest(workload=workload),
        sinks=[CallbackSink(log)],
    )
    return bus, True


def run_spec(
    spec: ScenarioSpec,
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = None,
    parallel: bool = True,
    log: ProgressLog = None,
    telemetry: Optional[Any] = None,
) -> SweepStats:
    """Expand ``spec``, skip rows already in ``store``, run the rest.

    Without a store everything executes and nothing persists (useful for
    benchmarks that only want the records). ``log`` receives one line per
    progress event (cache summary, per-job completion); pass
    :func:`stderr_log` for CLI-style output, None for silence.

    ``telemetry`` attaches a :class:`~repro.telemetry.Telemetry` bus:
    the sweep emits ``sweep_start``/``sweep_end``, job-lifecycle events
    (queued → running → cached/completed/failed), and cache/store
    counters. When only ``log`` is given, a private bus renders the
    historical progress strings through the compat sink — the legacy
    lines are now *views* over structured events. Telemetry observes
    and never participates: detached runs are byte-identical.
    """
    jobs = expand_jobs(spec)
    if store is not None and telemetry is not None:
        # Store-level lookup/index counters land on the sweep's registry.
        store.bind_metrics(telemetry.metrics)
    cached_keys = store.keys() if store is not None else set()
    pending = [job for job in jobs if job.key not in cached_keys]
    hits = len(jobs) - len(pending)
    tele, owned = _open_telemetry(telemetry, log, {"scenario": spec.name})
    if tele is not None and not owned and log is not None:
        # Caller supplied both a bus and a legacy logger: bridge them.
        from repro.telemetry import CallbackSink

        tele.add_sink(CallbackSink(log))
    try:
        if tele is not None:
            tele.emit(
                "sweep_start",
                scenario=spec.name,
                jobs=len(jobs),
                cache_hits=hits,
                to_run=len(pending),
            )
            tele.counter("engine.cache.hit").inc(hits)
            tele.counter("engine.cache.miss").inc(len(pending))
            for job in jobs:
                if job.key in cached_keys:
                    _job_event(tele, "cached", job, total=len(jobs))
        fresh = _run_jobs(
            pending,
            max_workers=max_workers,
            parallel=parallel,
            log=None if tele is not None else log,
            scenario=spec.name,
            telemetry=tele,
        )
        if store is not None and fresh:
            store.append(fresh)
            if tele is not None:
                tele.counter("engine.store.rows_written").inc(len(fresh))

        by_key = {record["key"]: record for record in fresh}
        if store is not None:
            hit_keys = {job.key for job in jobs} & cached_keys
            rows_read = 0
            for record in store.select(keys=hit_keys):
                by_key.setdefault(record["key"], record)
                rows_read += 1
            if tele is not None and rows_read:
                tele.counter("engine.store.rows_read").inc(rows_read)
        records = [by_key[job.key] for job in jobs if job.key in by_key]
        if tele is not None:
            tele.emit(
                "sweep_end",
                scenario=spec.name,
                executed=len(pending),
                cached=hits,
                records=len(records),
            )
    finally:
        if owned:
            tele.close()
    return SweepStats(
        scenario=spec.name,
        executed=len(pending),
        cached=hits,
        records=records,
    )


def run_suite(
    specs: Iterable[ScenarioSpec],
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = None,
    parallel: bool = True,
    log: ProgressLog = None,
    telemetry: Optional[Any] = None,
) -> List[SweepStats]:
    """Run several specs against one store; returns per-spec stats.

    A ``telemetry`` bus is shared across every spec (one run id, one
    event stream); per-spec events carry the scenario name.
    """
    return [
        run_spec(
            spec,
            store=store,
            max_workers=max_workers,
            parallel=parallel,
            log=log,
            telemetry=telemetry,
        )
        for spec in specs
    ]
