"""Parallel batch runner: expand a spec, execute jobs, persist records.

Jobs cross the process boundary as plain dicts (see :meth:`Job.to_dict`), so
the pool workers only need the library importable — no closure pickling. Each
job rebuilds its instance from the registry by name and its derived seeds,
making every record exactly reproducible from its stored configuration.
"""

import os
import random
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional

from repro.engine.algorithms import ALGORITHMS
from repro.engine.jobs import Job, expand_jobs
from repro.engine.registry import GRAPH_FAMILIES, ScenarioSpec
from repro.engine.store import SCHEMA_VERSION, ResultStore
from repro.model.instance import SteinerForestInstance
from repro.netmodel import build_network_model
from repro.perf import PhaseProfiler, make_ledger_run
from repro.workloads import place_terminals

#: Result attributes promoted to metrics whenever the solver exposes them.
_OPTIONAL_RESULT_METRICS = (
    "sigma",
    "num_phases",
    "num_growth_phases",
    "num_merge_phases",
)


def build_instance(job: Job) -> SteinerForestInstance:
    """Rebuild the (algorithm-independent) instance a job runs on."""
    family = GRAPH_FAMILIES[job.family]
    graph = family.build(random.Random(job.graph_seed()), **job.family_params)
    return place_terminals(
        job.placement, graph, job.k, job.component_size,
        random.Random(job.placement_seed()),
    )


def execute_job(job_dict: Mapping[str, Any]) -> Dict[str, Any]:
    """Run one job (worker entry point); returns its JSON-able record.

    The job's ``backend`` selects the *ledger engine* for run-accepting
    solvers (:func:`repro.perf.make_ledger_run`): ``flatarray`` (or a
    large-instance ``auto``) hands the solver a compiled
    :class:`~repro.perf.FastCongestRun`, which changes wall time but —
    by the fast path's conformance pin — nothing observable: weights,
    rounds, messages, per-edge traffic, and cache-relevant outputs are
    byte-identical to ``reference``. For message-level executions
    (node-program scenarios, conformance suites, benchmarks) the axis
    selects the simulator engine as before. Like the network axis, a
    non-default backend hashes to its own cache key.

    With ``job.profile`` set, a :class:`~repro.perf.PhaseProfiler`
    rides along (attached to the ledger for run-accepting solvers, as
    wall-time spans for centralized ones) and the record gains a
    ``profile`` field; profiling never changes the computation.
    """
    job = Job.from_dict(job_dict)
    instance = build_instance(job)
    algorithm = ALGORITHMS[job.algorithm]
    rng = random.Random(job.algorithm_seed())
    kwargs: Dict[str, Any] = dict(job.algo_params)
    profiler = PhaseProfiler() if job.profile else None
    ledger = None
    # Ledger construction is inside the timed window: the flatarray/auto
    # engines pay their topology compile there, so stored wall_time rows
    # compare backends end-to-end (same clock placement as
    # benchmarks/bench_e18_profile.py).
    started = time.perf_counter()
    if algorithm.accepts_run:
        ledger = make_ledger_run(job.backend, instance.graph)
        if profiler is not None:
            profiler.attach(ledger)
        kwargs["run"] = ledger
    elif algorithm.accepts_profiler and profiler is not None:
        kwargs["profiler"] = profiler
    if (
        profiler is not None
        and not algorithm.accepts_run
        and not algorithm.accepts_profiler
    ):
        # No internal instrumentation points: one span for the whole call.
        with profiler.span("solve"):
            result = algorithm.run(instance, rng, **kwargs)
    else:
        result = algorithm.run(instance, rng, **kwargs)
    wall_time = time.perf_counter() - started
    if profiler is not None:
        profiler.finish()
    result.solution.assert_feasible(instance)

    metrics: Dict[str, Any] = {
        "n": instance.graph.num_nodes,
        "m": instance.graph.num_edges,
        "t": instance.num_terminals,
        "weight": result.solution.weight,
        "wall_time": wall_time,
    }
    rounds = getattr(result, "rounds", None)
    if rounds is not None:
        metrics["rounds"] = rounds
    run = getattr(result, "run", None)
    if run is not None:
        metrics["messages"] = run.messages
        metrics["bits"] = run.bits
        if run.edge_messages:
            metrics["max_edge_messages"] = max(run.edge_messages.values())
    network_model = build_network_model(job.network)
    if network_model.name != "reliable" and rounds is not None:
        # The solvers run against the clean ledger; surface the network
        # condition's latency overhead via the model's synchronizer
        # accounting (see NetworkModel.emulated_rounds).
        metrics["emulated_rounds"] = network_model.emulated_rounds(
            rounds,
            bandwidth_bits=run.bandwidth_bits if run is not None else None,
        )
    for attr in _OPTIONAL_RESULT_METRICS:
        value = getattr(result, attr, None)
        if value is not None:
            metrics[attr] = value
    if algorithm.extra_metrics is not None:
        metrics.update(algorithm.extra_metrics(result))
    if job.exact:
        from repro.exact import steiner_forest_cost

        opt = steiner_forest_cost(instance)
        metrics["opt"] = opt
        metrics["ratio"] = result.solution.weight / opt if opt else 1.0

    record = job.identity()
    record["key"] = job.key
    record["schema"] = SCHEMA_VERSION
    # Explicit display/grouping fields: identity() omits the default
    # network, backend, and placement (cache-key stability), records
    # never do.
    record["placement"] = job.placement
    record["network"] = {
        "model": network_model.name,
        "params": dict(job.network["params"]),
    }
    record["network_model"] = network_model.name
    record["backend"] = {
        "name": job.backend["name"],
        "params": dict(job.backend["params"]),
    }
    record["backend_name"] = job.backend["name"]
    record["metrics"] = metrics
    if profiler is not None:
        record["profile"] = profiler.to_dict(
            bandwidth_bits=ledger.bandwidth_bits if ledger is not None else None
        )
    return record


#: Progress sink: called with one human-readable line per event.
ProgressLog = Optional[Callable[[str], None]]


def stderr_log(message: str) -> None:
    """The default CLI progress sink (long sweeps aren't silent)."""
    print(message, file=sys.stderr, flush=True)


def _run_jobs(
    jobs: List[Job],
    max_workers: Optional[int],
    parallel: bool,
    log: ProgressLog = None,
    scenario: str = "",
) -> List[Dict[str, Any]]:
    payloads = [job.to_dict() for job in jobs]
    total = len(payloads)

    def note(done: int, record: Dict[str, Any]) -> None:
        if log is not None:
            wall = record["metrics"].get("wall_time", 0.0)
            log(
                f"[{scenario}] job {done}/{total} done: "
                f"{record['algorithm']} ({wall:.3f}s)"
            )

    if not parallel or len(jobs) <= 1:
        records = []
        for payload in payloads:
            record = execute_job(payload)
            records.append(record)
            note(len(records), record)
        return records
    if max_workers is None:
        # Saturate the machine by default; sweeps are embarrassingly
        # parallel and jobs are independent.
        max_workers = os.cpu_count() or 1
    results: List[Optional[Dict[str, Any]]] = [None] * total
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = {
            pool.submit(execute_job, payload): index
            for index, payload in enumerate(payloads)
        }
        done = 0
        for future in as_completed(futures):
            index = futures[future]
            results[index] = future.result()
            done += 1
            note(done, results[index])
    return results


@dataclass
class SweepStats:
    """Outcome of running one spec: what ran, what the cache absorbed.

    ``records`` holds the full result set for the spec in job order —
    freshly executed rows merged with cached rows read back from the store.
    """

    scenario: str
    executed: int
    cached: int
    records: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def total(self) -> int:
        """Total jobs the spec expanded to (executed + cache hits)."""
        return self.executed + self.cached


def run_spec(
    spec: ScenarioSpec,
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = None,
    parallel: bool = True,
    log: ProgressLog = None,
) -> SweepStats:
    """Expand ``spec``, skip rows already in ``store``, run the rest.

    Without a store everything executes and nothing persists (useful for
    benchmarks that only want the records). ``log`` receives one line per
    progress event (cache summary, per-job completion); pass
    :func:`stderr_log` for CLI-style output, None for silence.
    """
    jobs = expand_jobs(spec)
    cached_keys = store.keys() if store is not None else set()
    pending = [job for job in jobs if job.key not in cached_keys]
    if log is not None:
        log(
            f"[{spec.name}] {len(jobs)} jobs: "
            f"{len(jobs) - len(pending)} cache hits, {len(pending)} to run"
        )
    fresh = _run_jobs(
        pending,
        max_workers=max_workers,
        parallel=parallel,
        log=log,
        scenario=spec.name,
    )
    if store is not None and fresh:
        store.append(fresh)

    by_key = {record["key"]: record for record in fresh}
    if store is not None:
        hit_keys = {job.key for job in jobs} & cached_keys
        for record in store.select(keys=hit_keys):
            by_key.setdefault(record["key"], record)
    records = [by_key[job.key] for job in jobs if job.key in by_key]
    return SweepStats(
        scenario=spec.name,
        executed=len(pending),
        cached=len(jobs) - len(pending),
        records=records,
    )


def run_suite(
    specs: Iterable[ScenarioSpec],
    store: Optional[ResultStore] = None,
    max_workers: Optional[int] = None,
    parallel: bool = True,
    log: ProgressLog = None,
) -> List[SweepStats]:
    """Run several specs against one store; returns per-spec stats."""
    return [
        run_spec(
            spec,
            store=store,
            max_workers=max_workers,
            parallel=parallel,
            log=log,
        )
        for spec in specs
    ]
