"""Text reports over a result store (the ``report`` subcommand)."""

from typing import Any, Iterable, List, Mapping, Sequence

from repro.engine.aggregate import aggregate_records, group_records, scaling_fit


def format_table(header: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Fixed-width table in the benchmarks' EXPERIMENTS.md style."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rendered), default=0))
        for i in range(len(header))
    ]
    lines = [" | ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("-" * len(lines[0]))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any, spec: str = ".2f") -> str:
    return "-" if value is None else format(value, spec)


def render_report(records: List[Mapping[str, Any]]) -> str:
    """Aggregate ``records`` into per-scenario tables plus scaling fits.

    When a scenario's records span more than one network condition (or
    any adverse one), the table grows a ``network`` column so the
    conditions read side by side; likewise a ``backend`` column appears
    when records span more than one execution engine (or any
    non-reference one), and a ``placement`` column when records span a
    non-uniform terminal placement.
    """
    if not records:
        return "no records"
    sections = []
    for (scenario,), group in group_records(records, by=("scenario",)).items():
        aggregates = aggregate_records(group)
        networks = {agg.network for agg in aggregates}
        show_network = networks != {"reliable"}
        backends = {agg.backend for agg in aggregates}
        show_backend = backends != {"reference"}
        placements = {agg.placement for agg in aggregates}
        show_placement = placements != {"uniform"}
        rows = []
        for agg in aggregates:
            row = [
                agg.algorithm,
                agg.jobs,
                _fmt(agg.mean_weight, ".1f"),
                _fmt(agg.mean_rounds, ".1f"),
                _fmt(agg.max_ratio, ".3f"),
                _fmt(agg.total_wall_time, ".3f"),
            ]
            if show_placement:
                row.insert(1, agg.placement)
            if show_backend:
                row.insert(1, agg.backend)
            if show_network:
                row.insert(1, agg.network)
            rows.append(tuple(row))
        header = [
            "algorithm", "jobs", "mean W", "mean rounds", "max ratio", "wall s",
        ]
        if show_placement:
            header.insert(1, "placement")
        if show_backend:
            header.insert(1, "backend")
        if show_network:
            header.insert(1, "network")
        table = format_table(tuple(header), rows)
        fits = []
        for (algorithm,), algo_group in group_records(
            group, by=("algorithm",)
        ).items():
            fit = scaling_fit(algo_group)
            if fit is not None:
                fits.append(
                    f"  rounds ~ n^{fit.exponent:.2f} for {algorithm} "
                    f"(R²={fit.r_squared:.2f})"
                )
        section = f"== scenario: {scenario} ({len(group)} records) ==\n{table}"
        if fits:
            section += "\nscaling fits:\n" + "\n".join(fits)
        sections.append(section)
    return "\n\n".join(sections)
