"""Text reports over a result store (the ``report`` subcommand)."""

from typing import Any, Iterable, List, Mapping, Sequence

from repro.engine.aggregate import aggregate_records, group_records, scaling_fit


def format_table(header: Sequence[str], rows: Iterable[Sequence[Any]]) -> str:
    """Fixed-width table in the benchmarks' EXPERIMENTS.md style."""
    rendered = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(header[i]), max((len(r[i]) for r in rendered), default=0))
        for i in range(len(header))
    ]
    lines = [" | ".join(h.ljust(w) for h, w in zip(header, widths))]
    lines.append("-" * len(lines[0]))
    for row in rendered:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any, spec: str = ".2f") -> str:
    return "-" if value is None else format(value, spec)


def render_report(records: List[Mapping[str, Any]]) -> str:
    """Aggregate ``records`` into per-scenario tables plus scaling fits."""
    if not records:
        return "no records"
    sections = []
    for (scenario,), group in group_records(records, by=("scenario",)).items():
        rows = []
        for agg in aggregate_records(group):
            rows.append(
                (
                    agg.algorithm,
                    agg.jobs,
                    _fmt(agg.mean_weight, ".1f"),
                    _fmt(agg.mean_rounds, ".1f"),
                    _fmt(agg.max_ratio, ".3f"),
                    _fmt(agg.total_wall_time, ".3f"),
                )
            )
        table = format_table(
            ("algorithm", "jobs", "mean W", "mean rounds", "max ratio", "wall s"),
            rows,
        )
        fits = []
        for (algorithm,), algo_group in group_records(
            group, by=("algorithm",)
        ).items():
            fit = scaling_fit(algo_group)
            if fit is not None:
                fits.append(
                    f"  rounds ~ n^{fit.exponent:.2f} for {algorithm} "
                    f"(R²={fit.r_squared:.2f})"
                )
        section = f"== scenario: {scenario} ({len(group)} records) ==\n{table}"
        if fits:
            section += "\nscaling fits:\n" + "\n".join(fits)
        sections.append(section)
    return "\n\n".join(sections)
