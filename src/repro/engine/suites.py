"""Curated scenario suites: named, parameterized grids of scenarios.

A :class:`SuiteSpec` bundles scenarios into one named unit of work —
``repro suite run smoke`` expands every member through the existing
job/runner/store stack, so suite runs share cache keys with plain
``sweep`` runs of the same scenarios (a suite adds *curation*, not a
new execution path).

Members referenced from the scenario registry are included byte-
identically (their cache keys are exactly the ``sweep`` keys); inline
members let a suite parameterize grids the registry doesn't carry —
scaling sweeps, exact-ratio probes, placement crosses.

Built-in suites:

* ``smoke`` — one small scenario per major graph-family regime; the CI
  end-to-end gate. Seconds.
* ``adversity`` — scenarios crossed with lossy/delay/crash network
  conditions.
* ``scaling`` — growing-``n`` sweeps feeding the report's power-law
  fits.
* ``nightly`` — every registered scenario, exact-ratio probes on tiny
  instances of each new family, and a full placement cross.
"""

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.engine.jobs import expand_jobs
from repro.engine.registry import REGISTRY, ScenarioSpec


@dataclass(frozen=True)
class SuiteSpec:
    """A named, ordered bundle of scenario specs.

    Attributes:
        name: suite-registry key.
        scenarios: member specs, run in order. Names must be unique
            within the suite (they key the result store's records).
        description: one-line summary for ``suite list`` output.
    """

    name: str
    scenarios: Tuple[ScenarioSpec, ...]
    description: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise ValueError(f"suite {self.name!r} has no scenarios")
        names = [spec.name for spec in self.scenarios]
        duplicates = sorted({n for n in names if names.count(n) > 1})
        if duplicates:
            raise ValueError(
                f"suite {self.name!r} repeats scenario names {duplicates}"
            )

    @property
    def scenario_names(self) -> Tuple[str, ...]:
        """Member scenario names, in run order."""
        return tuple(spec.name for spec in self.scenarios)

    def job_count(self) -> int:
        """Total jobs the suite expands to (before cache hits)."""
        return sum(len(expand_jobs(spec)) for spec in self.scenarios)


class SuiteRegistry:
    """Named suites; the ``suite`` subcommand runs these."""

    def __init__(self) -> None:
        """An empty registry; populate with :meth:`register`."""
        self._suites: Dict[str, SuiteSpec] = {}

    def register(self, suite: SuiteSpec) -> SuiteSpec:
        """Add a suite under its name; raises ValueError on duplicates."""
        if suite.name in self._suites:
            raise ValueError(f"suite {suite.name!r} already registered")
        self._suites[suite.name] = suite
        return suite

    def get(self, name: str) -> SuiteSpec:
        try:
            return self._suites[name]
        except KeyError:
            raise KeyError(
                f"unknown suite {name!r}; choose from {sorted(self._suites)}"
            ) from None

    def names(self) -> List[str]:
        return sorted(self._suites)

    def __contains__(self, name: str) -> bool:
        return name in self._suites

    def __len__(self) -> int:
        return len(self._suites)


def expand_suites(
    registry: SuiteRegistry, names: Iterable[str]
) -> List[ScenarioSpec]:
    """The scenario specs of the named suites, in order, deduplicated.

    A scenario appearing in several requested suites runs once (the
    store would absorb the repeats anyway — this keeps the progress
    log honest about the real workload). Two suites defining
    *different* specs under one scenario name is a conflict, not a
    duplicate: silently dropping one would vanish its results, so that
    raises instead.
    """
    names = list(names)
    specs: List[ScenarioSpec] = []
    seen: Dict[str, ScenarioSpec] = {}
    for name in names:
        for spec in registry.get(name).scenarios:
            if spec.name not in seen:
                seen[spec.name] = spec
                specs.append(spec)
            elif seen[spec.name] != spec:
                raise ValueError(
                    f"suites {list(names)} define conflicting specs "
                    f"named {spec.name!r}"
                )
    return specs


# ---------------------------------------------------------------------------
# Built-in suites
# ---------------------------------------------------------------------------

SUITES = SuiteRegistry()

SUITES.register(
    SuiteSpec(
        name="smoke",
        scenarios=(
            REGISTRY.get("gnp-core"),
            REGISTRY.get("grid-rounds"),
            REGISTRY.get("powerlaw-hubs"),
            REGISTRY.get("torus-local"),
            REGISTRY.get("trees-sparse"),
        ),
        description="one small scenario per graph-family regime (CI gate)",
    )
)

SUITES.register(
    SuiteSpec(
        name="adversity",
        scenarios=(
            REGISTRY.get("gnp-adversity"),
            ScenarioSpec(
                name="powerlaw-adversity",
                family="powerlaw",
                algorithms=("distributed",),
                grid={
                    "n": [16, 24], "m_attach": 2,
                    "k": 2, "component_size": 2, "placement": "hub_spoke",
                },
                network=[
                    "reliable",
                    {"model": "delay", "params": {"max_delay": 3}},
                    {"model": "lossy", "params": {"drop_p": 0.1, "retransmit": 2}},
                ],
                seeds=2,
                description="hub-heavy topology under delay and loss",
            ),
            ScenarioSpec(
                name="torus-crash",
                family="torus",
                algorithms=("distributed",),
                grid={"rows": 3, "cols": 4, "k": 2, "component_size": 2},
                network=[
                    "reliable",
                    {"model": "crash", "params": {"victims": [0, 1], "at_round": 2}},
                ],
                seeds=2,
                description="torus with crash-stop victims vs the clean run",
            ),
        ),
        description="scenarios crossed with lossy/delay/crash channels",
    )
)

SUITES.register(
    SuiteSpec(
        name="scaling",
        scenarios=(
            ScenarioSpec(
                name="scaling-gnp",
                family="gnp",
                algorithms=("distributed",),
                grid={"n": [16, 24, 32, 48], "p": 0.3, "k": 2, "component_size": 2},
                seeds=2,
                description="rounds vs n on dense random graphs",
            ),
            ScenarioSpec(
                name="scaling-powerlaw",
                family="powerlaw",
                algorithms=("distributed",),
                grid={
                    "n": [16, 24, 32, 48], "m_attach": 2,
                    "k": 2, "component_size": 2,
                },
                seeds=2,
                description="rounds vs n under power-law hubs",
            ),
            ScenarioSpec(
                name="scaling-smallworld",
                family="smallworld",
                algorithms=("distributed",),
                grid={
                    "n": [16, 24, 32, 48], "k_nearest": 4, "rewire_p": 0.2,
                    "k": 2, "component_size": 2,
                },
                seeds=2,
                description="rounds vs n with small-world shortcuts",
            ),
        ),
        description="growing-n sweeps feeding the power-law scaling fits",
    )
)


def _ratio_probe(name: str, family: str, grid: Dict) -> ScenarioSpec:
    """A tiny exact-ratio scenario: measured cost vs the true optimum."""
    return ScenarioSpec(
        name=name,
        family=family,
        algorithms=("moat", "rounded", "distributed"),
        grid=dict(grid, k=2, component_size=2),
        seeds=3,
        exact=True,
        description=f"approximation ratios vs exact OPT on tiny {family}",
    )


SUITES.register(
    SuiteSpec(
        name="nightly",
        scenarios=tuple(REGISTRY.specs()) + (
            _ratio_probe("ratio-powerlaw", "powerlaw", {"n": 10, "m_attach": 2}),
            _ratio_probe(
                "ratio-smallworld", "smallworld",
                {"n": 10, "k_nearest": 4, "rewire_p": 0.2},
            ),
            _ratio_probe("ratio-regular", "regular", {"n": 10, "degree": 3}),
            _ratio_probe("ratio-broom", "broom", {"handle": 5, "bristles": 4}),
            _ratio_probe(
                "ratio-cluster-geo", "cluster_geo", {"n": 10, "clusters": 2},
            ),
            ScenarioSpec(
                name="placement-cross",
                family="gnp",
                algorithms=("distributed",),
                grid={
                    "n": 14, "p": 0.35, "k": 2, "component_size": 2,
                    "placement": [
                        "uniform", "clustered", "far_pairs", "hub_spoke",
                    ],
                },
                seeds=2,
                description="one graph, all four terminal placements",
            ),
        ),
        description="full catalog: every scenario, exact ratios, placements",
    )
)
