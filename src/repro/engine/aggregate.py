"""Aggregation over stored job records, feeding :mod:`repro.analysis.scaling`.

Records are the JSON dicts produced by the runner; groups are (scenario,
algorithm) pairs by default. The scaling helpers reuse the same power-law
fit and ratio summaries the benchmarks assert on, so the ``report``
subcommand and the benchmark suite agree on the statistics.
"""

from collections import defaultdict
from typing import Any, Dict, Iterable, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from repro.analysis.scaling import (
    PowerLawFit,
    RatioSummary,
    fit_power_law,
    summarize_ratios,
)


def _metric(record: Mapping[str, Any], name: str) -> Optional[float]:
    value = record.get("metrics", {}).get(name)
    return None if value is None else float(value)


def _mean(values: Sequence[float]) -> Optional[float]:
    return sum(values) / len(values) if values else None


class AggregateRow(NamedTuple):
    """Per-(scenario, network, backend, placement, algorithm) summary
    statistics."""

    scenario: str
    algorithm: str
    jobs: int
    mean_weight: Optional[float]
    mean_rounds: Optional[float]
    max_rounds: Optional[float]
    mean_ratio: Optional[float]
    max_ratio: Optional[float]
    total_wall_time: float
    network: str = "reliable"
    backend: str = "reference"
    placement: str = "uniform"


def group_records(
    records: Iterable[Mapping[str, Any]],
    by: Tuple[str, ...] = ("scenario", "algorithm"),
) -> Dict[Tuple[Any, ...], List[Mapping[str, Any]]]:
    """Group records by the given top-level fields (sorted group keys)."""
    groups: Dict[Tuple[Any, ...], List[Mapping[str, Any]]] = defaultdict(list)
    for record in records:
        groups[tuple(record.get(field) for field in by)].append(record)
    return dict(sorted(groups.items(), key=lambda item: repr(item[0])))


def _network_name(record: Mapping[str, Any]) -> str:
    """Grouping key: stamped on v2+ records, ``reliable`` for v1 rows
    and runner-free records."""
    name = record.get("network_model")
    if name is None:
        name = record.get("network", {}).get("model", "reliable")
    return name


def _backend_name(record: Mapping[str, Any]) -> str:
    """Grouping key: stamped on v3 records, ``reference`` for older rows
    and runner-free records."""
    name = record.get("backend_name")
    if name is None:
        name = record.get("backend", {}).get("name", "reference")
    return name


def _placement_name(record: Mapping[str, Any]) -> str:
    """Grouping key: stamped on v4 records, ``uniform`` for older rows
    and runner-free records."""
    return record.get("placement", "uniform")


def aggregate_records(
    records: Iterable[Mapping[str, Any]],
) -> List[AggregateRow]:
    """One :class:`AggregateRow` per (scenario, network, backend,
    placement, algorithm) group."""
    rows = []
    groups = defaultdict(list)
    for record in records:
        key = (
            record.get("scenario"),
            _network_name(record),
            _backend_name(record),
            _placement_name(record),
            record.get("algorithm"),
        )
        groups[key].append(record)
    for (scenario, network, backend, placement, algorithm), group in sorted(
        groups.items(), key=lambda item: repr(item[0])
    ):
        weights = [w for r in group if (w := _metric(r, "weight")) is not None]
        rounds = [x for r in group if (x := _metric(r, "rounds")) is not None]
        ratios = [x for r in group if (x := _metric(r, "ratio")) is not None]
        walls = [x for r in group if (x := _metric(r, "wall_time")) is not None]
        rows.append(
            AggregateRow(
                scenario=scenario,
                algorithm=algorithm,
                jobs=len(group),
                mean_weight=_mean(weights),
                mean_rounds=_mean(rounds),
                max_rounds=max(rounds) if rounds else None,
                mean_ratio=_mean(ratios),
                max_ratio=max(ratios) if ratios else None,
                total_wall_time=sum(walls),
                network=network,
                backend=backend,
                placement=placement,
            )
        )
    return rows


def ratio_summary(records: Iterable[Mapping[str, Any]]) -> RatioSummary:
    """A :class:`RatioSummary` over every record carrying a ratio."""
    ratios = [x for r in records if (x := _metric(r, "ratio")) is not None]
    return summarize_ratios(ratios)


def scaling_fit(
    records: Iterable[Mapping[str, Any]],
    x_metric: str = "n",
    y_metric: str = "rounds",
) -> Optional[PowerLawFit]:
    """Fit ``y ≈ c·x^a`` over a group's records, or None when the data is
    degenerate (fewer than two distinct positive x values)."""
    pairs = []
    for record in records:
        x, y = _metric(record, x_metric), _metric(record, y_metric)
        if x is not None and y is not None and x > 0 and y > 0:
            pairs.append((x, y))
    if len(pairs) < 2 or len({x for x, _ in pairs}) < 2:
        return None
    xs, ys = zip(*pairs)
    return fit_power_law(xs, ys)
