"""Sidecar key index over an append-only JSONL result store.

The JSONL file stays the single source of truth — append-only,
greppable, mergeable by concatenation. This module maintains a sqlite
sidecar next to it (``<store>.jsonl.idx``) mapping each cache key to
the **byte offset and length of its first row**, so ``keys()`` and
key lookups become O(log n) B-tree probes plus one seek-read instead
of a full-file parse (measured in ``benchmarks/bench_e21_store.py``).

Invariants:

* **The index is disposable.** Deleting the sidecar loses nothing;
  the next reader rebuilds it from the JSONL. Nothing ever reads the
  sidecar as data — only as an accelerator.
* **Staleness is detected, never trusted away.** The sidecar records
  how many bytes of the store it has indexed plus a content
  fingerprint of that region (head + tail sample hashes). On every
  sync: growth beyond the indexed region is absorbed incrementally
  (only new bytes are parsed); a shrink or a fingerprint mismatch —
  the file was rewritten, not appended — triggers a full rebuild.
* **Torn tails are invisible.** A concurrent writer's in-flight row
  (no trailing newline yet, or an unparseable terminated fragment)
  is never indexed; the indexed region always ends on a complete row
  boundary, so readers see a consistent prefix of the store
  (``tests/test_store_concurrency.py``).
* **First occurrence wins.** Append-only stores can accumulate
  duplicate keys (two processes racing the same job); the index keeps
  the earliest row, matching the scan-order ``setdefault`` the runner
  has always used.
* **Multi-process safe.** Sync runs inside one ``BEGIN IMMEDIATE``
  transaction that re-checks the meta row it planned against and
  retries if another process synced first; sqlite's own locking (5 s
  busy timeout) serializes the writers.
"""

import hashlib
import json
import os
import sqlite3
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

#: Bytes hashed from each end of the indexed region for the fingerprint.
_SAMPLE_BYTES = 4096

#: sqlite variable cap is 999 by default; chunk IN (...) queries well under.
_IN_CHUNK = 500

_DDL = """
CREATE TABLE IF NOT EXISTS entries (
    key    TEXT PRIMARY KEY,
    offset INTEGER NOT NULL,
    length INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS meta (
    id            INTEGER PRIMARY KEY CHECK (id = 1),
    indexed_bytes INTEGER NOT NULL,
    rows          INTEGER NOT NULL,
    fingerprint   TEXT NOT NULL
);
"""


class IndexUnavailableError(RuntimeError):
    """The sidecar cannot be opened/written; callers fall back to scans."""


def scan_rows(
    path: Path, start: int = 0
) -> Iterator[Tuple[int, int, Dict[str, Any]]]:
    """Yield ``(offset, length, row)`` for every complete JSONL row.

    Tolerant of a concurrent appender: an unterminated final line (a
    row mid-write) is skipped, as is a terminated-but-unparseable tail
    fragment — both belong to the in-flight suffix and will be read
    once complete. An unparseable line *followed by more complete
    rows* is real corruption and raises ``ValueError``.
    """
    if not path.exists():
        return
    pending: Optional[Tuple[int, int, str]] = None
    with path.open("rb") as handle:
        handle.seek(start)
        offset = start
        for raw in handle:
            length = len(raw)
            if not raw.endswith(b"\n"):
                break  # torn tail: a writer is mid-row
            line = raw.strip()
            if line:
                if pending is not None:
                    # The previous bad line was not the tail after all.
                    raise ValueError(
                        f"{path}: unparseable row at byte {pending[0]}"
                    )
                try:
                    row = json.loads(line)
                except json.JSONDecodeError:
                    pending = (offset, length, "bad")
                    offset += length
                    continue
                yield offset, length, row
            offset += length


def complete_region_end(path: Path, start: int = 0) -> int:
    """Byte offset just past the last complete row at or after ``start``."""
    end = start
    for offset, length, _ in scan_rows(path, start):
        end = offset + length
    return end


class StoreIndex:
    """The sqlite sidecar for one store file (see module docstring)."""

    def __init__(
        self,
        store_path: os.PathLike,
        sidecar: Optional[os.PathLike] = None,
        metrics: Optional[Any] = None,
    ) -> None:
        self.store_path = Path(store_path)
        self.sidecar = (
            Path(sidecar)
            if sidecar is not None
            else Path(str(self.store_path) + ".idx")
        )
        self.metrics = metrics
        self._conn: Optional[sqlite3.Connection] = None

    # -- plumbing --------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        if self._conn is None:
            try:
                self.sidecar.parent.mkdir(parents=True, exist_ok=True)
                conn = sqlite3.connect(self.sidecar, timeout=5.0)
                conn.executescript(_DDL)
                conn.commit()
            except (sqlite3.Error, OSError) as exc:
                raise IndexUnavailableError(
                    f"cannot open store index {self.sidecar}: {exc}"
                ) from exc
            self._conn = conn
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None and amount:
            self.metrics.counter(name).inc(amount)

    def _meta(self, conn: sqlite3.Connection) -> Tuple[int, int, str]:
        row = conn.execute(
            "SELECT indexed_bytes, rows, fingerprint FROM meta WHERE id = 1"
        ).fetchone()
        return (0, 0, "") if row is None else (int(row[0]), int(row[1]), row[2])

    def _fingerprint(self, region_end: int) -> str:
        """Content fingerprint of the store's first ``region_end`` bytes:
        region length + head and tail samples. Append-only growth keeps
        it stable; any rewrite of the region changes it."""
        if region_end <= 0:
            return "empty"
        digest = hashlib.sha256()
        digest.update(str(region_end).encode("ascii"))
        with self.store_path.open("rb") as handle:
            digest.update(handle.read(min(region_end, _SAMPLE_BYTES)))
            tail_start = max(0, region_end - _SAMPLE_BYTES)
            handle.seek(tail_start)
            digest.update(handle.read(region_end - tail_start))
        return digest.hexdigest()

    # -- synchronization -------------------------------------------------

    def sync(self, verify: bool = False, force_rebuild: bool = False) -> None:
        """Bring the sidecar up to date with the store file.

        Growth is absorbed incrementally (only bytes past the indexed
        region are parsed). ``verify=True`` additionally checks the
        indexed region's content fingerprint (a same-size rewrite is
        otherwise invisible to the cheap size probe); a mismatch — or
        a shrink, or ``force_rebuild`` — wipes and re-indexes from
        byte 0.
        """
        conn = self._connect()
        for _ in range(8):
            base_bytes, base_rows, stored_fp = self._meta(conn)
            size = (
                self.store_path.stat().st_size
                if self.store_path.exists()
                else 0
            )
            rebuild = force_rebuild or size < base_bytes
            if not rebuild and verify and base_bytes > 0:
                rebuild = self._fingerprint(base_bytes) != stored_fp
            if not rebuild and size == base_bytes:
                return  # fresh
            start = 0 if rebuild else base_bytes
            entries: List[Tuple[str, int, int]] = []
            new_rows = 0
            end = start
            for offset, length, row in scan_rows(self.store_path, start):
                key = row.get("key")
                if isinstance(key, str):
                    entries.append((key, offset, length))
                new_rows += 1
                end = offset + length
            if not rebuild and end == start:
                return  # only a torn tail past the indexed region
            try:
                conn.execute("BEGIN IMMEDIATE")
            except sqlite3.OperationalError as exc:
                raise IndexUnavailableError(
                    f"store index {self.sidecar} is locked: {exc}"
                ) from exc
            try:
                current = self._meta(conn)
                if (current[0], current[1]) != (base_bytes, base_rows):
                    conn.rollback()  # another process synced first; replan
                    continue
                if rebuild:
                    conn.execute("DELETE FROM entries")
                    base_rows = 0
                conn.executemany(
                    "INSERT OR IGNORE INTO entries (key, offset, length) "
                    "VALUES (?, ?, ?)",
                    entries,
                )
                conn.execute(
                    "INSERT INTO meta (id, indexed_bytes, rows, fingerprint) "
                    "VALUES (1, ?, ?, ?) "
                    "ON CONFLICT (id) DO UPDATE SET indexed_bytes = ?, "
                    "rows = ?, fingerprint = ?",
                    (end, base_rows + new_rows, self._fingerprint(end)) * 2,
                )
                conn.commit()
            except BaseException:
                conn.rollback()
                raise
            if rebuild:
                self._count("engine.store.index.rebuilds")
            self._count("engine.store.index.synced_rows", new_rows)
            return
        raise IndexUnavailableError(
            f"store index {self.sidecar}: sync kept losing the meta race"
        )

    def rebuild(self) -> None:
        """Wipe and re-index the whole store (``repro store reindex``)."""
        self.sync(force_rebuild=True)

    # -- queries ---------------------------------------------------------

    def keys(self) -> Set[str]:
        conn = self._connect()
        return {row[0] for row in conn.execute("SELECT key FROM entries")}

    def lookup(self, key: str) -> Optional[Tuple[int, int]]:
        """``(offset, length)`` of the first row for ``key``, if indexed."""
        row = self._connect().execute(
            "SELECT offset, length FROM entries WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else (int(row[0]), int(row[1]))

    def lookup_many(self, keys: List[str]) -> List[Tuple[int, int]]:
        """Offsets for every indexed key in ``keys``, in file order."""
        conn = self._connect()
        spans: List[Tuple[int, int]] = []
        for i in range(0, len(keys), _IN_CHUNK):
            chunk = keys[i:i + _IN_CHUNK]
            marks = ",".join("?" * len(chunk))
            spans.extend(
                (int(row[0]), int(row[1]))
                for row in conn.execute(
                    f"SELECT offset, length FROM entries WHERE key IN ({marks})",
                    chunk,
                )
            )
        spans.sort()
        return spans

    def row_count(self) -> int:
        """Total complete rows in the indexed region (duplicates included)."""
        return self._meta(self._connect())[1]

    def distinct_keys(self) -> int:
        return int(
            self._connect().execute("SELECT COUNT(*) FROM entries").fetchone()[0]
        )

    def indexed_bytes(self) -> int:
        """End of the indexed region (always a complete-row boundary)."""
        return self._meta(self._connect())[0]

    def status(self) -> Dict[str, Any]:
        """Read-only staleness report for ``repro store inspect``."""
        if not self.sidecar.exists():
            return {"state": "missing", "indexed_bytes": 0, "rows": 0,
                    "keys": 0}
        conn = self._connect()
        indexed, rows, fingerprint = self._meta(conn)
        size = self.store_path.stat().st_size if self.store_path.exists() else 0
        if size < indexed:
            state = "stale-rewritten"
        elif indexed > 0 and self._fingerprint(indexed) != fingerprint:
            state = "stale-rewritten"
        elif size > indexed and complete_region_end(self.store_path, indexed) > indexed:
            state = "stale-behind"
        else:
            state = "fresh"
        return {
            "state": state,
            "indexed_bytes": indexed,
            "rows": rows,
            "keys": self.distinct_keys(),
        }
