"""Deterministic store construction + lookup measurement for E21.

Shared between ``benchmarks/bench_e21_store.py`` (which commits
``BENCH_store.json``) and the ``repro bench check`` regression gate
(:mod:`repro.telemetry.benchcheck`), the same way
:mod:`repro.serve.loadgen` backs E19/E20: both sides build the exact
same synthetic store and run the exact same lookup mix, so the
committed ``rows`` / ``lookups`` columns are deterministic and the
gate can compare them exactly.

The synthetic rows are shaped like real v5 records (identity fields,
64-hex content key, a metrics dict) so parse cost — the thing a scan
pays and the index doesn't — is realistic.
"""

import hashlib
import random
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional

from repro.engine.store import SCHEMA_VERSION, ResultStore

#: The two lookup modes an entry's ``backend`` column names.
STORE_MODES = ("scan", "indexed")

#: Default lookups timed per entry (the gate passes it via workload).
DEFAULT_LOOKUPS = 16

#: Rows per append batch while building (keeps peak memory flat).
_BUILD_BATCH = 2000


def synth_key(index: int, seed: int) -> str:
    """The 64-hex cache key of synthetic row ``index`` (deterministic)."""
    return hashlib.sha256(f"e21|{seed}|{index}".encode("ascii")).hexdigest()


def synth_records(
    count: int, seed: int = 0
) -> Iterator[Dict[str, Any]]:
    """``count`` realistic v5-shaped records, deterministically."""
    rng = random.Random(seed)
    for index in range(count):
        yield {
            "key": synth_key(index, seed),
            "scenario": f"e21-synth-{index % 7}",
            "family": "gnp",
            "family_params": {"n": 64 + index % 192, "p": 0.35},
            "k": 2 + index % 4,
            "component_size": 2,
            "algorithm": ("moat", "distributed", "sublinear")[index % 3],
            "algo_params": {},
            "seed_index": index % 5,
            "exact": False,
            "placement": "uniform",
            "network": {"model": "reliable", "params": {}},
            "network_model": "reliable",
            "backend": {"name": "reference", "params": {}},
            "backend_name": "reference",
            "schema": SCHEMA_VERSION,
            "metrics": {
                "n": 64 + index % 192,
                "m": 200 + index % 800,
                "t": 2 + index % 4,
                "weight": rng.randint(10, 4000),
                "rounds": rng.randint(8, 300),
                "messages": rng.randint(100, 100000),
                "wall_time": rng.random(),
            },
        }


def build_store(path: Path, rows: int, seed: int = 0) -> None:
    """Write ``rows`` synthetic records to a fresh store at ``path``."""
    store = ResultStore(path, index=False)  # plain appends, no sidecar yet
    batch: List[Dict[str, Any]] = []
    for record in synth_records(rows, seed):
        batch.append(record)
        if len(batch) >= _BUILD_BATCH:
            store.append(batch)
            batch = []
    if batch:
        store.append(batch)


def lookup_indices(rows: int, lookups: int, seed: int) -> List[int]:
    """Which row indices each mode looks up (same for both, spread
    across the file so scans pay a representative traversal)."""
    rng = random.Random((seed << 8) ^ rows)
    return [rng.randrange(rows) for _ in range(lookups)]


def measure_mode(
    rows: int,
    mode: str,
    lookups: int = DEFAULT_LOOKUPS,
    seed: int = 0,
    path: Optional[Path] = None,
) -> Dict[str, Any]:
    """One BENCH_store entry: ``lookups`` key fetches against a
    ``rows``-row store in ``mode`` (``scan`` or ``indexed``).

    ``scan`` opens the store with the index disabled: every lookup is
    the linear parse-until-found the store historically paid.
    ``indexed`` builds the sidecar first (reported separately as
    ``build_seconds``; a one-time cost amortized over every later
    process) and then times pure index probes + seek-reads. Each
    lookup constructs a fresh :class:`ResultStore` so no in-process
    state carries over — the timed work is exactly what a new reader
    pays.
    """
    if mode not in STORE_MODES:
        raise ValueError(f"unknown store mode {mode!r}; one of {STORE_MODES}")
    owned: Optional[tempfile.TemporaryDirectory] = None
    if path is None:
        owned = tempfile.TemporaryDirectory(prefix="repro-e21-")
        path = Path(owned.name) / f"store-{rows}.jsonl"
    try:
        if not path.exists():
            build_store(path, rows, seed)
        keys = [
            synth_key(index, seed)
            for index in lookup_indices(rows, lookups, seed)
        ]
        build_seconds = 0.0
        if mode == "indexed":
            started = time.perf_counter()
            ResultStore(path).refresh()  # build/sync the sidecar once
            build_seconds = time.perf_counter() - started
        found = 0
        started = time.perf_counter()
        for key in keys:
            store = ResultStore(path, index=(mode == "indexed"))
            record = store.lookup(key)
            if record is not None and record["key"] == key:
                found += 1
        seconds = time.perf_counter() - started
        return {
            "backend": mode,
            "n": rows,
            "rows": rows,
            "lookups": len(keys),
            "found": found,
            "seconds": seconds,
            "per_lookup_ms": seconds / len(keys) * 1000 if keys else 0.0,
            "build_seconds": build_seconds,
        }
    finally:
        if owned is not None:
            owned.cleanup()
