"""Experiment engine: scenario registry, batch runner, and result store.

The engine turns the one-off sweep loops of ``benchmarks/`` into a
first-class subsystem:

* :mod:`repro.engine.algorithms` — the algorithm registry (the single
  source of truth shared by the CLI, benchmarks, and the engine).
* :mod:`repro.engine.registry` — graph families and named
  :class:`ScenarioSpec` definitions combining a family, terminal
  placement, algorithms, and a parameter grid.
* :mod:`repro.engine.jobs` — spec expansion into content-hashed,
  independently seeded :class:`Job` records.
* :mod:`repro.engine.runner` — parallel execution across worker
  processes with per-job metric collection.
* :mod:`repro.engine.suites` — curated, named suites of scenarios
  (``smoke``, ``adversity``, ``scaling``, ``nightly``) expanded through
  the same runner/store stack.
* :mod:`repro.engine.store` — append-only JSONL result store with
  content-hash caching (re-running a spec skips computed rows).
* :mod:`repro.engine.migration` — the declarative schema-migration
  chain (one :class:`MigrationStep` per version bump, validated
  gapless at import time) every store read goes through.
* :mod:`repro.engine.index` — the sqlite sidecar key index that makes
  store lookups O(log n) seek-reads while the JSONL stays the
  append-only source of truth.
* :mod:`repro.engine.aggregate` — grouping and statistics feeding
  :mod:`repro.analysis.scaling`.
* :mod:`repro.engine.report` — text report rendering for stores.

Scenario specs carry a **network axis** (:mod:`repro.netmodel`) and a
**backend axis** (:mod:`repro.simbackend`): each job is the cross
product of graph family × algorithm × network condition × execution
engine, and every non-default condition/engine hashes to its own
result-store cache key (the clean defaults keep earlier-schema keys).
For the run-accepting solvers the backend additionally selects the
ledger engine (:func:`repro.perf.make_ledger_run`) — wall time changes,
results never do — and a spec's ``profile`` flag rides a
:class:`repro.perf.PhaseProfiler` along, landing per-phase breakdowns
on the records (schema v5).

**Invariant: cache keys are append-only.** Every axis added to
:class:`Job` omits its default value from the identity hash, so rows
written by any earlier schema keep satisfying today's default-valued
jobs; breaking this silently cold-starts every existing store.
"""

from repro.engine.algorithms import ALGORITHMS, AlgorithmSpec
from repro.engine.aggregate import AggregateRow, aggregate_records, ratio_summary
from repro.engine.jobs import Job, content_hash, expand_grid, expand_jobs
from repro.engine.registry import (
    GRAPH_FAMILIES,
    REGISTRY,
    GraphFamily,
    ScenarioRegistry,
    ScenarioSpec,
)
from repro.engine.index import StoreIndex
from repro.engine.migration import (
    CHAIN,
    SCHEMA_VERSION,
    MigrationChain,
    MigrationError,
    MigrationStep,
    build_chain,
)
from repro.engine.report import render_report
from repro.engine.runner import SweepStats, build_instance, execute_job, run_spec, run_suite, stderr_log
from repro.engine.store import ResultStore
from repro.engine.suites import SUITES, SuiteRegistry, SuiteSpec, expand_suites

__all__ = [
    "ALGORITHMS",
    "AlgorithmSpec",
    "AggregateRow",
    "aggregate_records",
    "ratio_summary",
    "Job",
    "content_hash",
    "expand_grid",
    "expand_jobs",
    "GRAPH_FAMILIES",
    "REGISTRY",
    "GraphFamily",
    "ScenarioRegistry",
    "ScenarioSpec",
    "render_report",
    "SweepStats",
    "build_instance",
    "execute_job",
    "run_spec",
    "run_suite",
    "stderr_log",
    "ResultStore",
    "StoreIndex",
    "CHAIN",
    "SCHEMA_VERSION",
    "MigrationChain",
    "MigrationError",
    "MigrationStep",
    "build_chain",
    "SUITES",
    "SuiteRegistry",
    "SuiteSpec",
    "expand_suites",
]
