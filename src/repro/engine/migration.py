"""Declarative schema migration for stored result rows.

Every row the :class:`~repro.engine.store.ResultStore` reads back is
normalized to the current schema in memory by an ordered chain of
:class:`MigrationStep` objects — one step per version bump, each a
plain ``row -> row`` function. The chain replaces the hand-rolled
``setdefault`` pile that used to live inside the store: a new schema
axis is one registered step, not another conditional scattered across
store code.

Design rules the chain enforces (at registration time, not read time):

* **Gapless**: step *i* migrates exactly ``v_i -> v_i + 1``; the chain
  must cover every version from :data:`BASE_VERSION` up to the target
  (:data:`SCHEMA_VERSION` for the production chain in :data:`CHAIN`).
  A hole or an out-of-order registration raises :class:`MigrationError`
  immediately, so a half-wired chain can never ship.
* **In-memory only**: migration never rewrites the file. Rows keep the
  ``schema`` stamp they were written with (``repro store migrate`` is
  the explicit opt-in rewrite); steps fill the fields their version
  introduced with the historical defaults, so old rows keep their
  cache keys — default-valued jobs hash identically (see
  :meth:`repro.engine.jobs.Job.identity`).
* **Idempotent**: every step uses ``setdefault`` semantics, so
  migrating an already-current row is a no-op and re-migrating is safe
  (pinned by ``tests/test_store_properties.py``).

Version history (the steps below are the executable form of this):

* **v1** no network condition.
* **v2** rows carry ``network`` (canonical spec dict) and
  ``network_model`` (model name, the grouping field).
* **v3** rows additionally carry ``backend`` (canonical spec dict) and
  ``backend_name`` (engine name, the grouping field).
* **v4** rows carry ``placement`` (terminal-placement strategy name).
* **v5** profiled jobs carry a ``profile`` field (per-phase rounds /
  messages / bits / wall-time,
  :meth:`repro.perf.PhaseProfiler.to_dict`); unprofiled records simply
  lack it, so the step is a no-op.
"""

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List

#: The current result-row schema. Bumping it requires registering the
#: matching :class:`MigrationStep` below — :func:`build_chain` raises at
#: import time otherwise.
SCHEMA_VERSION = 5

#: Rows written before the ``schema`` stamp existed are treated as v1.
BASE_VERSION = 1

_RELIABLE = {"model": "reliable", "params": {}}
_REFERENCE = {"name": "reference", "params": {}}


class MigrationError(ValueError):
    """A migration chain is mis-registered (gap, overlap, wrong target)."""


@dataclass(frozen=True)
class MigrationStep:
    """One version bump: ``fn`` normalizes a ``from_version`` row to
    ``to_version`` shape, mutating and returning the row.

    Steps must be *idempotent* (``setdefault`` semantics): the chain
    applies every step at or above a row's declared version, so a step
    may see rows that already carry its fields (hand-merged stores,
    rows appended without a stamp).
    """

    from_version: int
    to_version: int
    fn: Callable[[Dict[str, Any]], Dict[str, Any]]
    description: str = ""

    def __post_init__(self) -> None:
        if self.to_version != self.from_version + 1:
            raise MigrationError(
                f"step {self.from_version}->{self.to_version} skips versions; "
                "each step must bump by exactly one"
            )


@dataclass
class MigrationChain:
    """An ordered, gapless ``base -> head`` chain of steps.

    ``add`` validates contiguity at registration time; ``validate``
    checks the chain reaches an exact target version; ``migrate``
    applies the suffix of steps a row still needs.
    """

    base_version: int = BASE_VERSION
    steps: List[MigrationStep] = field(default_factory=list)

    @property
    def head(self) -> int:
        """The version the chain currently migrates up to."""
        return self.steps[-1].to_version if self.steps else self.base_version

    def add(self, step: MigrationStep) -> "MigrationChain":
        """Register the next step; it must start exactly at :attr:`head`."""
        if step.from_version != self.head:
            raise MigrationError(
                f"step {step.from_version}->{step.to_version} does not extend "
                f"the chain (head is v{self.head}); chains must be gapless"
            )
        self.steps.append(step)
        return self

    def step(
        self, from_version: int, to_version: int, description: str = ""
    ) -> Callable[[Callable[[Dict[str, Any]], Dict[str, Any]]], Callable]:
        """Decorator form of :meth:`add` (the registration idiom below)."""

        def register(fn: Callable[[Dict[str, Any]], Dict[str, Any]]):
            self.add(MigrationStep(from_version, to_version, fn, description))
            return fn

        return register

    def validate(self, target: int) -> "MigrationChain":
        """Assert the chain covers exactly ``base -> target``."""
        if self.head != target:
            raise MigrationError(
                f"migration chain stops at v{self.head}, schema is at "
                f"v{target}; register the missing step(s)"
            )
        return self

    def row_version(self, row: Dict[str, Any]) -> int:
        """The schema version a stored row claims (unstamped rows are
        pre-stamp history: :data:`BASE_VERSION`)."""
        try:
            version = int(row.get("schema", self.base_version))
        except (TypeError, ValueError):
            return self.base_version
        return max(version, self.base_version)

    def migrate(self, row: Dict[str, Any]) -> Dict[str, Any]:
        """Normalize ``row`` to the chain's head version, in memory.

        Applies every step at or above the row's declared version (so a
        mis-stamped row still normalizes — steps are idempotent). The
        ``schema`` field is left exactly as stored: migration describes
        how to *read* history, not permission to rewrite it.
        """
        version = self.row_version(row)
        for step in self.steps:
            if step.from_version >= version:
                row = step.fn(row)
        return row


def build_chain() -> MigrationChain:
    """The production chain, freshly built (tests extend copies of it).

    Returns a validated ``v1 -> SCHEMA_VERSION`` chain. Registering a
    v6 axis means adding one ``@chain.step(5, 6)`` function here and
    bumping :data:`SCHEMA_VERSION` — nothing in the store changes.
    """
    chain = MigrationChain()

    @chain.step(1, 2, "network condition axis (network / network_model)")
    def _v1_to_v2(row: Dict[str, Any]) -> Dict[str, Any]:
        if "network" not in row:
            row["network"] = dict(_RELIABLE, params={})
        if "network_model" not in row:
            row["network_model"] = row["network"].get("model", "reliable")
        return row

    @chain.step(2, 3, "execution backend axis (backend / backend_name)")
    def _v2_to_v3(row: Dict[str, Any]) -> Dict[str, Any]:
        if "backend" not in row:
            row["backend"] = dict(_REFERENCE, params={})
        if "backend_name" not in row:
            row["backend_name"] = row["backend"].get("name", "reference")
        return row

    @chain.step(3, 4, "terminal-placement axis (placement)")
    def _v3_to_v4(row: Dict[str, Any]) -> Dict[str, Any]:
        if "placement" not in row:
            row["placement"] = "uniform"
        return row

    @chain.step(4, 5, "optional per-phase profile payload (no defaults)")
    def _v4_to_v5(row: Dict[str, Any]) -> Dict[str, Any]:
        # Unprofiled rows simply lack the field; nothing to fill.
        return row

    return chain.validate(SCHEMA_VERSION)


#: The chain every store read goes through. Import-time validation: a
#: SCHEMA_VERSION bump without its step fails here, not in production.
CHAIN = build_chain()
