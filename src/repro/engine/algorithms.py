"""The algorithm registry — one table shared by the CLI, engine, and benchmarks.

Each entry wraps a solver behind the uniform signature
``run(instance, rng, **params) -> result`` where ``result`` exposes at least
``solution`` (a :class:`~repro.model.solution.ForestSolution`) and optionally
``rounds`` / ``run`` (a :class:`~repro.congest.run.CongestRun` ledger).

Tunable solver parameters (e.g. Algorithm 2's ε) are passed as keyword
arguments. Fractional parameters travel as strings ("1/10") so job records
stay JSON-serializable and exactly reproducible; factories convert them with
:class:`fractions.Fraction`.
"""

import random
from fractions import Fraction
from typing import Any, Callable, Dict, Mapping, NamedTuple, Optional, Union

from repro.baselines import khan_steiner_forest, spanner_steiner_forest
from repro.core import (
    distributed_moat_growing,
    moat_growing,
    rounded_moat_growing,
    sublinear_moat_growing,
)
from repro.core.rounded import num_growth_phases
from repro.model.instance import SteinerForestInstance
from repro.randomized import randomized_steiner_forest

EpsParam = Union[int, float, str, Fraction]


def _eps(value: EpsParam) -> Fraction:
    """Parse an ε parameter; strings like "1/10" come from JSON job records."""
    if isinstance(value, str):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(str(value))
    return Fraction(value)


class AlgorithmSpec(NamedTuple):
    """A registered solver.

    Attributes:
        name: registry key.
        run: ``(instance, rng, **params) -> result`` adapter.
        randomized: whether the result depends on the supplied rng.
        extra_metrics: optional ``result -> dict`` hook contributing
            algorithm-specific columns to job records.
        accepts_run: the adapter takes a ``run=`` keyword — the solver
            charges a caller-supplied :class:`~repro.congest.run.
            CongestRun`, which is how the engine threads the ledger-level
            backend fast path (:func:`repro.perf.make_ledger_run`) and
            the phase profiler into the paper's pipeline.
        accepts_profiler: the adapter takes a ``profiler=`` keyword —
            for centralized solvers with no ledger, profiled via
            wall-time spans.
        description: one-line summary for ``--list`` output.
    """

    name: str
    run: Callable[..., Any]
    randomized: bool = False
    extra_metrics: Optional[Callable[[Any], Dict[str, Any]]] = None
    accepts_run: bool = False
    accepts_profiler: bool = False
    description: str = ""


def _run_moat(
    inst: SteinerForestInstance, rng: random.Random, profiler: Any = None
) -> Any:
    return moat_growing(inst, profiler=profiler)


def _run_rounded(
    inst: SteinerForestInstance,
    rng: random.Random,
    eps: EpsParam = "1/2",
    profiler: Any = None,
) -> Any:
    return rounded_moat_growing(inst, _eps(eps), profiler=profiler)


def _run_distributed(
    inst: SteinerForestInstance, rng: random.Random, run: Any = None
) -> Any:
    return distributed_moat_growing(inst, run=run)


def _run_sublinear(
    inst: SteinerForestInstance,
    rng: random.Random,
    eps: EpsParam = "1/2",
    run: Any = None,
) -> Any:
    return sublinear_moat_growing(inst, _eps(eps), run=run)


def _run_randomized(inst: SteinerForestInstance, rng: random.Random) -> Any:
    return randomized_steiner_forest(inst, rng=rng)


def _run_khan(inst: SteinerForestInstance, rng: random.Random) -> Any:
    return khan_steiner_forest(inst, rng=rng)


def _run_spanner(inst: SteinerForestInstance, rng: random.Random) -> Any:
    return spanner_steiner_forest(inst)


ALGORITHMS: Mapping[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in (
        AlgorithmSpec(
            "moat",
            _run_moat,
            accepts_profiler=True,
            description="centralized Algorithm 1 (2-approx, Theorem 4.1)",
        ),
        AlgorithmSpec(
            "rounded",
            _run_rounded,
            extra_metrics=lambda result: {
                "growth_phases": num_growth_phases(result)
            },
            accepts_profiler=True,
            description="Algorithm 2, rounded radii ((2+ε)-approx)",
        ),
        AlgorithmSpec(
            "distributed",
            _run_distributed,
            accepts_run=True,
            description="Section 4.1 distributed emulation (O(ks+t) rounds)",
        ),
        AlgorithmSpec(
            "sublinear",
            _run_sublinear,
            accepts_run=True,
            description="Section 4.2 variant (Õ(sk+√min{st,n}) rounds)",
        ),
        AlgorithmSpec(
            "randomized",
            _run_randomized,
            randomized=True,
            description="Section 5 randomized embedding algorithm",
        ),
        AlgorithmSpec(
            "khan",
            _run_khan,
            randomized=True,
            description="[14] baseline (tree-embedding Steiner forest)",
        ),
        AlgorithmSpec(
            "spanner",
            _run_spanner,
            description="spanner-based baseline",
        ),
    )
}
