"""Graph families and the named scenario registry.

A :class:`ScenarioSpec` declaratively combines a graph family from
:mod:`repro.workloads.generators`, terminal placement, a set of registered
algorithms, and a parameter grid. Specs are pure data (JSON round-trippable)
so they can live in files for the ``batch`` subcommand and hash stably for
the result store's cache keys.
"""

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, NamedTuple, Tuple

from repro.engine.algorithms import ALGORITHMS
from repro.model.graph import WeightedGraph
from repro.netmodel import NETWORK_MODELS, build_network_model, normalize_network
from repro.simbackend import BACKENDS, build_backend, normalize_backend
from repro.workloads import (
    TERMINAL_PLACEMENTS,
    broom_graph,
    caterpillar_graph,
    clustered_geometric_graph,
    grid_graph,
    powerlaw_graph,
    random_connected_graph,
    random_geometric_graph,
    random_regular_graph,
    ring_of_blobs,
    smallworld_graph,
    torus_graph,
)


class GraphFamily(NamedTuple):
    """A named graph generator: ``build(rng, **params) -> WeightedGraph``."""

    name: str
    build: Callable[..., WeightedGraph]
    description: str = ""


def _build_gnp(
    rng: random.Random, n: int = 16, p: float = 0.35, max_weight: int = 20
) -> WeightedGraph:
    return random_connected_graph(n, p, rng, max_weight=max_weight)


def _build_geometric(
    rng: random.Random, n: int = 16, radius: float = 0.4, weight_scale: int = 100
) -> WeightedGraph:
    return random_geometric_graph(n, radius, rng, weight_scale=weight_scale)


def _build_grid(
    rng: random.Random, rows: int = 4, cols: int = 4, max_weight: int = 10
) -> WeightedGraph:
    return grid_graph(rows, cols, rng, max_weight=max_weight)


def _build_ring(
    rng: random.Random,
    num_blobs: int = 3,
    blob_size: int = 3,
    path_weight: int = 1,
    blob_weight: int = 3,
) -> WeightedGraph:
    return ring_of_blobs(
        num_blobs, blob_size, rng,
        path_weight=path_weight, blob_weight=blob_weight,
    )


def _build_powerlaw(
    rng: random.Random, n: int = 16, m_attach: int = 2, max_weight: int = 20
) -> WeightedGraph:
    return powerlaw_graph(n, m_attach, rng, max_weight=max_weight)


def _build_smallworld(
    rng: random.Random,
    n: int = 16,
    k_nearest: int = 4,
    rewire_p: float = 0.2,
    max_weight: int = 20,
) -> WeightedGraph:
    return smallworld_graph(
        n, k_nearest, rewire_p, rng, max_weight=max_weight
    )


def _build_regular(
    rng: random.Random, n: int = 16, degree: int = 3, max_weight: int = 20
) -> WeightedGraph:
    return random_regular_graph(n, degree, rng, max_weight=max_weight)


def _build_torus(
    rng: random.Random, rows: int = 4, cols: int = 4, max_weight: int = 10
) -> WeightedGraph:
    return torus_graph(rows, cols, rng, max_weight=max_weight)


def _build_caterpillar(
    rng: random.Random, spine: int = 5, legs: int = 2, max_weight: int = 10
) -> WeightedGraph:
    return caterpillar_graph(spine, legs, rng, max_weight=max_weight)


def _build_broom(
    rng: random.Random, handle: int = 6, bristles: int = 4, max_weight: int = 10
) -> WeightedGraph:
    return broom_graph(handle, bristles, rng, max_weight=max_weight)


def _build_cluster_geo(
    rng: random.Random,
    n: int = 16,
    clusters: int = 3,
    spread: float = 0.08,
    radius: float = 0.22,
    weight_scale: int = 100,
) -> WeightedGraph:
    return clustered_geometric_graph(
        n, clusters, rng,
        spread=spread, radius=radius, weight_scale=weight_scale,
    )


GRAPH_FAMILIES: Mapping[str, GraphFamily] = {
    fam.name: fam
    for fam in (
        GraphFamily("gnp", _build_gnp, "G(n,p) with connectivity fallback"),
        GraphFamily("geometric", _build_geometric, "random geometric graph"),
        GraphFamily("grid", _build_grid, "rows × cols grid"),
        GraphFamily("ring", _build_ring, "ring of cliques (controllable s)"),
        GraphFamily(
            "powerlaw", _build_powerlaw,
            "Barabási–Albert power-law (hub congestion)",
        ),
        GraphFamily(
            "smallworld", _build_smallworld,
            "Watts–Strogatz small-world (shortcuts vs locality)",
        ),
        GraphFamily(
            "regular", _build_regular,
            "random-regular expander (no hubs, no locality)",
        ),
        GraphFamily(
            "torus", _build_torus,
            "periodic grid (s ≈ √n, vertex-transitive)",
        ),
        GraphFamily(
            "caterpillar", _build_caterpillar,
            "caterpillar tree (s linear in spine)",
        ),
        GraphFamily(
            "broom", _build_broom,
            "broom tree (long handle into one star)",
        ),
        GraphFamily(
            "cluster_geo", _build_cluster_geo,
            "clustered geometric (strong locality)",
        ),
    )
}

#: Grid keys routed to terminal placement rather than the graph builder.
#: ``placement`` selects a :data:`repro.workloads.TERMINAL_PLACEMENTS`
#: strategy and — like any grid key — sweeps when given as a list.
PLACEMENT_KEYS = ("k", "component_size", "placement")


def normalize_networks(network: Any) -> Tuple[Dict[str, Any], ...]:
    """Normalize a spec's network axis to a tuple of canonical spec dicts.

    Accepts one network shorthand or a list/tuple of them (the sweep
    axis); validates model names against the netmodel registry so bad
    specs fail at construction time, not mid-sweep.
    """
    entries = network if isinstance(network, (list, tuple)) else [network]
    if not entries:
        entries = [None]
    specs = [normalize_network(entry) for entry in entries]
    unknown = [s["model"] for s in specs if s["model"] not in NETWORK_MODELS]
    if unknown:
        raise ValueError(
            f"unknown network models {unknown}; "
            f"choose from {sorted(NETWORK_MODELS)}"
        )
    for spec in specs:
        # Instantiate once so bad parameters surface here (ValueError),
        # not as a crashed worker halfway through a sweep.
        build_network_model(spec)
    return tuple(specs)


def normalize_backends(backend: Any) -> Tuple[Dict[str, Any], ...]:
    """Normalize a spec's backend axis to a tuple of canonical spec dicts.

    Accepts one backend shorthand or a list/tuple of them (the sweep
    axis); validates engine names against the simbackend registry so bad
    specs fail at construction time, not mid-sweep.
    """
    entries = backend if isinstance(backend, (list, tuple)) else [backend]
    if not entries:
        entries = [None]
    specs = [normalize_backend(entry) for entry in entries]
    unknown = [s["name"] for s in specs if s["name"] not in BACKENDS]
    if unknown:
        raise ValueError(
            f"unknown simulation backends {unknown}; "
            f"choose from {sorted(BACKENDS)}"
        )
    for spec in specs:
        # Instantiate once so bad parameters surface here (ValueError),
        # not as a crashed worker halfway through a sweep.
        build_backend(spec)
    return tuple(specs)


@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative experiment scenario.

    Attributes:
        name: registry key; also stamped on every result record.
        family: a :data:`GRAPH_FAMILIES` key.
        algorithms: registered algorithm names to run on each instance.
        grid: parameter grid. List/tuple values are swept (cartesian
            product), scalars are fixed. The reserved keys ``k`` and
            ``component_size`` control terminal placement; all others are
            passed to the family's graph builder.
        algo_grid: per-algorithm keyword grid (e.g. ``{"eps": ["1/10",
            "1/2"]}``), swept the same way.
        network: network condition(s) to cross the scenario with — a
            model name, a ``{"model", "params"}`` spec, or a list of
            either to sweep. Normalized to a tuple of canonical spec
            dicts; defaults to the clean ``reliable`` channel.
        backend: simulation backend(s) to cross the scenario with — an
            engine name, a ``{"name", "params"}`` spec, or a list of
            either to sweep. Normalized like the network axis; defaults
            to the ``reference`` engine.
        seeds: number of independent repetitions per grid point.
        exact: whether to also compute the exact optimum (exponential
            time — keep instances small) and record the ratio.
        profile: collect phase-level profiles (see :mod:`repro.perf`)
            on every job record; the ``repro profile`` subcommand sets
            this on a copy of a registered scenario. Profiled jobs hash
            to their own cache keys (the default False is omitted from
            job identities, so existing stores are untouched).
        description: one-line summary for ``--list`` output.
    """

    name: str
    family: str
    algorithms: Tuple[str, ...]
    grid: Mapping[str, Any] = field(default_factory=dict)
    algo_grid: Mapping[str, Any] = field(default_factory=dict)
    network: Any = "reliable"
    backend: Any = "reference"
    seeds: int = 3
    exact: bool = False
    profile: bool = False
    description: str = ""

    def __post_init__(self) -> None:
        if self.family not in GRAPH_FAMILIES:
            raise ValueError(
                f"unknown graph family {self.family!r}; "
                f"choose from {sorted(GRAPH_FAMILIES)}"
            )
        unknown = [a for a in self.algorithms if a not in ALGORITHMS]
        if unknown:
            raise ValueError(
                f"unknown algorithms {unknown}; "
                f"choose from {sorted(ALGORITHMS)}"
            )
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")
        placements = self.grid.get("placement", ())
        if not isinstance(placements, (list, tuple)):
            placements = (placements,)
        unknown = [p for p in placements if p not in TERMINAL_PLACEMENTS]
        if unknown:
            raise ValueError(
                f"unknown terminal placements {unknown}; "
                f"choose from {sorted(TERMINAL_PLACEMENTS)}"
            )
        object.__setattr__(self, "algorithms", tuple(self.algorithms))
        object.__setattr__(self, "grid", dict(self.grid))
        object.__setattr__(self, "algo_grid", dict(self.algo_grid))
        object.__setattr__(
            self, "network", normalize_networks(self.network)
        )
        object.__setattr__(
            self, "backend", normalize_backends(self.backend)
        )

    @property
    def network_names(self) -> Tuple[str, ...]:
        """The model names of the scenario's network axis (for ``--list``)."""
        return tuple(spec["model"] for spec in self.network)

    @property
    def backend_names(self) -> Tuple[str, ...]:
        """The engine names of the scenario's backend axis (for ``--list``)."""
        return tuple(spec["name"] for spec in self.backend)

    # -- (de)serialization for spec files and hashing --------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able spec (the ``batch`` file format; fully round-trips)."""
        return {
            "name": self.name,
            "family": self.family,
            "algorithms": list(self.algorithms),
            "grid": dict(self.grid),
            "algo_grid": dict(self.algo_grid),
            "network": [
                {"model": spec["model"], "params": dict(spec["params"])}
                for spec in self.network
            ],
            "backend": [
                {"name": spec["name"], "params": dict(spec["params"])}
                for spec in self.backend
            ],
            "seeds": self.seeds,
            "exact": self.exact,
            "profile": self.profile,
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Build a spec from a ``batch``-file dict (missing keys default).

        Raises:
            ValueError: unknown family/algorithm/placement/network/backend.
        """
        return cls(
            name=data["name"],
            family=data["family"],
            algorithms=tuple(data["algorithms"]),
            grid=dict(data.get("grid", {})),
            algo_grid=dict(data.get("algo_grid", {})),
            network=data.get("network", "reliable"),
            backend=data.get("backend", "reference"),
            seeds=int(data.get("seeds", 3)),
            exact=bool(data.get("exact", False)),
            profile=bool(data.get("profile", False)),
            description=str(data.get("description", "")),
        )


class ScenarioRegistry:
    """Named scenario specs; the ``sweep`` subcommand runs these."""

    def __init__(self) -> None:
        """An empty registry; populate with :meth:`register`."""
        self._specs: Dict[str, ScenarioSpec] = {}

    def register(self, spec: ScenarioSpec) -> ScenarioSpec:
        """Add a spec under its name; raises ValueError on duplicates."""
        if spec.name in self._specs:
            raise ValueError(f"scenario {spec.name!r} already registered")
        self._specs[spec.name] = spec
        return spec

    def get(self, name: str) -> ScenarioSpec:
        """The spec registered under ``name``; KeyError names the choices."""
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; choose from {sorted(self._specs)}"
            ) from None

    def names(self) -> List[str]:
        """All registered scenario names, sorted."""
        return sorted(self._specs)

    def specs(self, names: Iterable[str] = ()) -> List[ScenarioSpec]:
        """The named specs, or every registered spec when none are named."""
        wanted = list(names)
        if not wanted:
            return [self._specs[n] for n in self.names()]
        return [self.get(n) for n in wanted]

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)


#: The built-in scenarios. Kept small enough that the full default sweep
#: finishes in seconds; they cover three graph families and six algorithms,
#: so one `repro sweep` exercises every regime the paper distinguishes.
REGISTRY = ScenarioRegistry()

REGISTRY.register(
    ScenarioSpec(
        name="gnp-core",
        family="gnp",
        algorithms=("moat", "rounded", "distributed", "spanner"),
        grid={"n": [12, 16], "p": 0.3, "k": 2, "component_size": 2},
        seeds=2,
        description="dense random graphs: the paper's main algorithms vs baselines",
    )
)

REGISTRY.register(
    ScenarioSpec(
        name="grid-rounds",
        family="grid",
        algorithms=("distributed", "sublinear"),
        grid={"rows": [3, 4], "cols": 3, "k": 2, "component_size": 2},
        seeds=2,
        description="grids (s ≈ √n): Section 4.1 vs Section 4.2 round counts",
    )
)

REGISTRY.register(
    ScenarioSpec(
        name="ring-diameter",
        family="ring",
        algorithms=("distributed", "randomized"),
        grid={"num_blobs": [3, 4], "blob_size": 3, "k": 2, "component_size": 2},
        seeds=2,
        description="ring-of-blobs: sweeping shortest-path diameter s",
    )
)

REGISTRY.register(
    ScenarioSpec(
        name="powerlaw-hubs",
        family="powerlaw",
        algorithms=("distributed", "sublinear"),
        grid={
            "n": [16, 24], "m_attach": 2,
            "k": 2, "component_size": 2, "placement": "hub_spoke",
        },
        seeds=2,
        description="power-law hubs: skewed degrees, demands through one hub",
    )
)

REGISTRY.register(
    ScenarioSpec(
        name="smallworld-far",
        family="smallworld",
        algorithms=("distributed", "randomized"),
        grid={
            "n": [16, 24], "k_nearest": 4, "rewire_p": 0.2,
            "k": 2, "component_size": 2, "placement": "far_pairs",
        },
        seeds=2,
        description="small-world shortcuts vs maximally distant demands",
    )
)

REGISTRY.register(
    ScenarioSpec(
        name="torus-local",
        family="torus",
        algorithms=("distributed", "sublinear"),
        grid={
            "rows": [3, 4], "cols": 4,
            "k": 2, "component_size": 2, "placement": "clustered",
        },
        seeds=2,
        description="torus (s ≈ √n) with clustered demands: small-moat regime",
    )
)

REGISTRY.register(
    ScenarioSpec(
        name="trees-sparse",
        family="caterpillar",
        algorithms=("moat", "distributed"),
        grid={"spine": [4, 6], "legs": 2, "k": 2, "component_size": 2},
        seeds=2,
        description="caterpillar trees: s linear in spine, unique paths",
    )
)

REGISTRY.register(
    ScenarioSpec(
        name="expander-placements",
        family="regular",
        algorithms=("distributed", "spanner"),
        grid={
            "n": [12, 16], "degree": 3, "k": 2, "component_size": 2,
            "placement": ["uniform", "far_pairs"],
        },
        seeds=2,
        description="random-regular expander crossed with two placements",
    )
)

REGISTRY.register(
    ScenarioSpec(
        name="cluster-geo",
        family="cluster_geo",
        algorithms=("moat", "distributed"),
        grid={
            "n": [16], "clusters": 3,
            "k": 2, "component_size": 2, "placement": "clustered",
        },
        seeds=2,
        description="clustered geometric: intra-cluster merges, long bridges",
    )
)

REGISTRY.register(
    ScenarioSpec(
        name="gnp-adversity",
        family="gnp",
        algorithms=("distributed",),
        grid={"n": [12, 16], "p": 0.3, "k": 2, "component_size": 2},
        network=[
            "reliable",
            {"model": "delay", "params": {"max_delay": 3}},
            {"model": "lossy", "params": {"drop_p": 0.1, "retransmit": 2}},
        ],
        seeds=2,
        description="one scenario × three network conditions (netmodel sweep)",
    )
)
