"""Spec expansion: parameter grids → content-hashed, seeded job records.

A :class:`Job` is the unit of work the runner executes and the store caches.
Its identity — and therefore its cache key — is the canonical JSON of its
full configuration, so re-running an unchanged spec re-derives the same keys
and skips every already-computed row.

Seeding discipline: each job derives independent ``random.Random`` streams
from SHA-256 of its identity, namespaced per use ("instance" vs
"algorithm"). The instance stream deliberately excludes the algorithm and
its parameters, so every algorithm in a scenario sees the *same* graph and
terminal placement for a given grid point and seed index — cross-algorithm
comparisons compare like with like, as the CLI's ``compare`` does.
"""

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Tuple

from repro.engine.registry import PLACEMENT_KEYS, ScenarioSpec
from repro.netmodel import is_default_network, normalize_network
from repro.simbackend import is_default_backend, normalize_backend
from repro.workloads import DEFAULT_PLACEMENT, TERMINAL_PLACEMENTS


def canonical_json(value: Any) -> str:
    """Deterministic JSON used for hashing (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def content_hash(value: Any) -> str:
    """SHA-256 hex digest of the canonical JSON of ``value``."""
    return hashlib.sha256(canonical_json(value).encode("utf-8")).hexdigest()


def derive_seed(value: Any, namespace: str) -> int:
    """A 63-bit seed from the canonical JSON of ``value``, per namespace."""
    digest = hashlib.sha256(
        f"{namespace}|{canonical_json(value)}".encode("utf-8")
    ).digest()
    return int.from_bytes(digest[:8], "big") >> 1


def expand_grid(grid: Mapping[str, Any]) -> List[Dict[str, Any]]:
    """Cartesian product of a grid: list/tuple values sweep, scalars fix.

    ``{"n": [8, 12], "p": 0.3}`` → ``[{"n": 8, "p": 0.3}, {"n": 12, "p": 0.3}]``.
    Keys expand in sorted order so the product order is deterministic.
    """
    if not grid:
        return [{}]
    keys = sorted(grid)
    axes = [
        list(grid[k]) if isinstance(grid[k], (list, tuple)) else [grid[k]]
        for k in keys
    ]
    return [dict(zip(keys, combo)) for combo in itertools.product(*axes)]


@dataclass(frozen=True)
class Job:
    """One fully resolved experiment row.

    Attributes:
        scenario: owning scenario name (stamped on records).
        family: graph family key.
        family_params: resolved builder parameters (scalars only).
        k / component_size: terminal placement.
        placement: terminal-placement strategy (a
            :data:`repro.workloads.TERMINAL_PLACEMENTS` key). The
            default ``uniform`` strategy is *omitted* from
            :meth:`identity` and the placement seed, so
            pre-placement-axis stores keep their cache keys and every
            uniform-placement job re-derives the exact instances of
            earlier schema versions; each other strategy hashes to its
            own key.
        algorithm: registered algorithm name.
        algo_params: resolved solver keyword arguments.
        network: canonical network-condition spec (see
            :func:`repro.netmodel.normalize_network`). The clean default
            is *omitted* from :meth:`identity`, so default-network jobs
            keep the exact cache keys and derived seeds of schema-v1
            stores; every non-default condition hashes to its own key.
        backend: canonical simulation-backend spec (see
            :func:`repro.simbackend.normalize_backend`). Mirrors the
            network axis: the default ``reference`` engine is *omitted*
            from :meth:`identity` (schema-v2 cache keys unchanged), and
            every non-default engine hashes to its own key.
        seed_index: repetition index within the spec.
        exact: whether to compute the exact optimum and ratio.
        profile: collect a phase-level profile (rounds / messages /
            wall-time per phase; see :mod:`repro.perf`) on the record.
            ``False`` — the default — is *omitted* from :meth:`identity`,
            so unprofiled jobs keep the exact cache keys of schema v1–v4
            stores; a profiled job hashes to its own key (its record
            carries the extra ``profile`` payload). Profiling never
            changes the computation: the algorithm seed ignores the
            flag, and the test suite pins result equality.
    """

    scenario: str
    family: str
    family_params: Mapping[str, Any]
    k: int
    component_size: int
    algorithm: str
    placement: str = DEFAULT_PLACEMENT
    algo_params: Mapping[str, Any] = field(default_factory=dict)
    network: Mapping[str, Any] = field(
        default_factory=lambda: normalize_network(None)
    )
    backend: Mapping[str, Any] = field(
        default_factory=lambda: normalize_backend(None)
    )
    seed_index: int = 0
    exact: bool = False
    profile: bool = False

    def __post_init__(self) -> None:
        if self.placement not in TERMINAL_PLACEMENTS:
            raise ValueError(
                f"unknown terminal placement {self.placement!r}; "
                f"choose from {sorted(TERMINAL_PLACEMENTS)}"
            )
        object.__setattr__(self, "network", normalize_network(self.network))
        object.__setattr__(self, "backend", normalize_backend(self.backend))

    def identity(self) -> Dict[str, Any]:
        """The full configuration that defines this job's cache key."""
        ident = {
            "scenario": self.scenario,
            "family": self.family,
            "family_params": dict(self.family_params),
            "k": self.k,
            "component_size": self.component_size,
            "algorithm": self.algorithm,
            "algo_params": dict(self.algo_params),
            "seed_index": self.seed_index,
            "exact": self.exact,
        }
        if self.profile:
            ident["profile"] = True
        if self.placement != DEFAULT_PLACEMENT:
            ident["placement"] = self.placement
        if not is_default_network(self.network):
            ident["network"] = {
                "model": self.network["model"],
                "params": dict(self.network["params"]),
            }
        if not is_default_backend(self.backend):
            ident["backend"] = {
                "name": self.backend["name"],
                "params": dict(self.backend["params"]),
            }
        return ident

    def instance_identity(self) -> Dict[str, Any]:
        """The sub-configuration that defines the instance (graph +
        placement) — algorithm-independent by design (see module docstring).
        The graph additionally ignores placement, so sweeps over ``k`` or
        ``component_size`` re-place terminals on the *same* graph."""
        return {
            "family": self.family,
            "family_params": dict(self.family_params),
            "seed_index": self.seed_index,
        }

    @property
    def key(self) -> str:
        """Content-hash cache key for the result store."""
        return content_hash(self.identity())

    def graph_seed(self) -> int:
        """RNG seed for the graph builder (algorithm-independent)."""
        return derive_seed(self.instance_identity(), "graph")

    def placement_seed(self) -> int:
        """RNG seed for terminal placement (algorithm-independent)."""
        placement = dict(
            self.instance_identity(),
            k=self.k,
            component_size=self.component_size,
        )
        # The default strategy is omitted so uniform-placement jobs
        # re-derive the exact terminal sets of pre-placement-axis runs.
        if self.placement != DEFAULT_PLACEMENT:
            placement["placement"] = self.placement
        return derive_seed(placement, "placement")

    def algorithm_seed(self) -> int:
        """RNG seed for the solver's coin flips."""
        # Deliberately network-, backend- and profile-independent:
        # neither the channel, the execution engine, nor observation may
        # change the algorithm's coin flips, so cross-axis comparisons
        # of a randomized algorithm compare identical executions.
        ident = self.identity()
        ident.pop("network", None)
        ident.pop("backend", None)
        ident.pop("profile", None)
        return derive_seed(ident, "algorithm")

    def to_dict(self) -> Dict[str, Any]:
        """The JSON payload sent to pool workers (the identity dict)."""
        return self.identity()

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Job":
        """Rebuild a job from a stored identity dict (defaults filled)."""
        return cls(
            scenario=data["scenario"],
            family=data["family"],
            family_params=dict(data["family_params"]),
            k=int(data["k"]),
            component_size=int(data["component_size"]),
            algorithm=data["algorithm"],
            placement=data.get("placement", DEFAULT_PLACEMENT),
            algo_params=dict(data.get("algo_params", {})),
            network=normalize_network(data.get("network")),
            backend=normalize_backend(data.get("backend")),
            seed_index=int(data.get("seed_index", 0)),
            exact=bool(data.get("exact", False)),
            profile=bool(data.get("profile", False)),
        )


def _split_placement(
    params: Mapping[str, Any]
) -> Tuple[Dict[str, Any], int, int, str]:
    family_params = {
        name: value for name, value in params.items()
        if name not in PLACEMENT_KEYS
    }
    return (
        family_params,
        int(params.get("k", 2)),
        int(params.get("component_size", 2)),
        str(params.get("placement", DEFAULT_PLACEMENT)),
    )


def iter_jobs(spec: ScenarioSpec) -> Iterator[Job]:
    """Expand a spec into jobs: grid × network × backend × algo_grid ×
    algorithms × seeds."""
    for params in expand_grid(spec.grid):
        family_params, k, component_size, placement = _split_placement(params)
        for network in spec.network:
            for backend in spec.backend:
                for algo_params in expand_grid(spec.algo_grid):
                    for algorithm in spec.algorithms:
                        for seed_index in range(spec.seeds):
                            yield Job(
                                scenario=spec.name,
                                family=spec.family,
                                family_params=family_params,
                                k=k,
                                component_size=component_size,
                                algorithm=algorithm,
                                placement=placement,
                                algo_params=algo_params,
                                network=network,
                                backend=backend,
                                seed_index=seed_index,
                                exact=spec.exact,
                                profile=spec.profile,
                            )


def expand_jobs(spec: ScenarioSpec) -> List[Job]:
    """Materialized :func:`iter_jobs` (deterministic order)."""
    return list(iter_jobs(spec))
