"""Equivalence transforms between problem representations (Lemmas 2.3, 2.4).

Two instances over the same weighted graph are *equivalent* when they admit
exactly the same set of feasible outputs. The paper shows:

* Lemma 2.3 — any DSF-CR instance can be turned into an equivalent DSF-IC
  instance (in O(D + t) rounds distributively; this module provides the
  centralized semantics, :func:`requests_to_components`).
* Lemma 2.4 — any DSF-IC instance can be made *minimal* (no singleton input
  components) in O(D + k) rounds; see :func:`minimalize_instance`.

The distributed, round-accounted counterparts live in
:mod:`repro.congest.transforms` and produce identical outputs.
"""

from typing import Dict, Hashable

from repro.model.instance import (
    ConnectionRequestInstance,
    SteinerForestInstance,
)
from repro.model.graph import Node
from repro.util import UnionFind


def requests_to_components(
    instance: ConnectionRequestInstance,
) -> SteinerForestInstance:
    """Convert a DSF-CR instance into an equivalent DSF-IC instance.

    By transitivity of connectivity, a feasible edge set must connect every
    connected component of the demand graph; conversely, connecting each such
    component satisfies all requests. Each component of the demand graph thus
    becomes an input component, labelled (as in the paper's proof) by the
    smallest identifier it contains.
    """
    uf = UnionFind()
    for u, v in instance.demand_pairs():
        uf.union(u, v)
    labels: Dict[Node, Hashable] = {}
    for group in uf.sets():
        label = min(group, key=repr)
        for v in group:
            labels[v] = label
    return SteinerForestInstance(instance.graph, labels)


def minimalize_instance(
    instance: SteinerForestInstance,
) -> SteinerForestInstance:
    """Drop singleton input components (Lemma 2.4).

    A component with a single terminal imposes no constraint; the resulting
    instance is *minimal* in the sense of Definition 2.2 and equivalent to
    the input.
    """
    components = instance.components
    labels = {
        v: label
        for v, label in instance.labels.items()
        if len(components[label]) >= 2
    }
    return SteinerForestInstance(instance.graph, labels)


def components_to_requests(
    instance: SteinerForestInstance,
) -> ConnectionRequestInstance:
    """Convert DSF-IC to an equivalent DSF-CR instance.

    Each terminal requests a connection to every other terminal of its input
    component (a clique of demands; a path of demands would be equivalent but
    the clique matches Definition 2.1 most directly).
    """
    components = instance.components
    requests: Dict[Node, set] = {}
    for component in components.values():
        for v in component:
            others = set(component) - {v}
            if others:
                requests[v] = others
    return ConnectionRequestInstance(instance.graph, requests)
