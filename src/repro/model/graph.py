"""Weighted undirected graphs and the metrics used by the paper.

The CONGEST model of Section 2 assumes a connected graph ``G = (V, E, W)``
with positive, polynomially bounded integer weights. Three graph parameters
drive all running-time bounds:

* ``D``  — the *unweighted* diameter (max hop distance),
* ``WD`` — the *weighted* diameter (max weighted distance),
* ``s``  — the *shortest-path diameter*: the maximum over node pairs of the
  minimum number of hops among all least-weight paths between the pair.

This module provides :class:`WeightedGraph`, a small immutable adjacency
structure with deterministic shortest-path computations (ties between
least-weight paths are broken first by hop count, then lexicographically by
predecessor identifier, mirroring the paper's "different paths have different
weight, ties broken lexicographically" convention), plus weighted balls with
fractionally contained edges as used by moat growing.
"""

import heapq
from fractions import Fraction
from types import MappingProxyType
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

import networkx as nx

from repro.exceptions import GraphValidationError

Node = Hashable
Edge = Tuple[Node, Node]
WeightedEdge = Tuple[Node, Node, int]


def canonical_edge(u: Node, v: Node) -> Edge:
    """Return the canonical (sorted) representation of the undirected edge."""
    return (u, v) if repr(u) <= repr(v) else (v, u)


class Ball:
    """A weighted ball ``B_G(v, r)`` with fractionally contained edges.

    Following Section 2 of the paper, the ball of radius ``r`` around ``v``
    contains every node at weighted distance at most ``r`` from ``v`` and, for
    an edge ``{w, u}`` with ``w`` inside the ball, the fraction
    ``(r - wd(v, w)) / W(w, u)`` of the edge closest to ``w``.

    Attributes:
        center: the ball's center node.
        radius: the (possibly fractional) radius.
        nodes: the set of nodes inside the ball.
        edge_fractions: mapping from canonical edge to the fraction of the
            edge's weight contained in the ball, as a ``Fraction`` in [0, 1].
    """

    __slots__ = ("center", "radius", "nodes", "edge_fractions")

    def __init__(
        self,
        center: Node,
        radius: Fraction,
        nodes: FrozenSet[Node],
        edge_fractions: Mapping[Edge, Fraction],
    ) -> None:
        self.center = center
        self.radius = radius
        self.nodes = nodes
        self.edge_fractions = dict(edge_fractions)

    def contains_node(self, v: Node) -> bool:
        return v in self.nodes

    def covered_weight(self) -> Fraction:
        """Total edge weight (counting fractions) inside the ball."""
        return sum(self.edge_fractions.values(), Fraction(0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Ball(center={self.center!r}, radius={self.radius}, "
            f"|nodes|={len(self.nodes)})"
        )


class WeightedGraph:
    """An undirected, connected graph with positive integer edge weights.

    Nodes may be arbitrary hashable, mutually comparable values; the test
    suite and generators use integers, matching the paper's O(log n)-bit
    identifiers. The structure is immutable after construction, which lets
    expensive metrics (``D``, ``WD``, ``s``, all-pairs distances) be cached.
    """

    def __init__(
        self,
        nodes: Iterable[Node],
        edges: Iterable[WeightedEdge],
        validate: bool = True,
    ) -> None:
        self._adj: Dict[Node, Dict[Node, int]] = {v: {} for v in nodes}
        for u, v, w in edges:
            if u == v:
                raise GraphValidationError(f"self-loop on node {u!r}")
            if u not in self._adj or v not in self._adj:
                raise GraphValidationError(
                    f"edge ({u!r}, {v!r}) references unknown node"
                )
            if v in self._adj[u] and self._adj[u][v] != w:
                raise GraphValidationError(
                    f"conflicting weights for edge ({u!r}, {v!r})"
                )
            self._adj[u][v] = w
            self._adj[v][u] = w
        self._nodes: Tuple[Node, ...] = tuple(
            sorted(self._adj, key=repr)
        )
        self._apd_cache: Optional[Dict[Node, Dict[Node, int]]] = None
        self._hops_cache: Dict[Node, Dict[Node, int]] = {}
        self._metric_cache: Dict[str, int] = {}
        if validate:
            self.validate()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edges(
        cls, edges: Iterable[WeightedEdge], validate: bool = True
    ) -> "WeightedGraph":
        """Build a graph whose node set is implied by the edge list."""
        edges = list(edges)
        nodes = {u for u, _, _ in edges} | {v for _, v, _ in edges}
        return cls(nodes, edges, validate=validate)

    @classmethod
    def from_networkx(cls, graph: nx.Graph, weight: str = "weight") -> "WeightedGraph":
        """Build from a networkx graph; missing weights default to 1."""
        edges = [
            (u, v, int(data.get(weight, 1)))
            for u, v, data in graph.edges(data=True)
        ]
        return cls(graph.nodes(), edges)

    def to_networkx(self) -> nx.Graph:
        """Export to a networkx graph with a ``weight`` attribute."""
        graph = nx.Graph()
        graph.add_nodes_from(self._nodes)
        for u, v, w in self.edges():
            graph.add_edge(u, v, weight=w)
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------

    @property
    def nodes(self) -> Tuple[Node, ...]:
        """All nodes, in deterministic (sorted) order."""
        return self._nodes

    @property
    def num_nodes(self) -> int:
        return len(self._nodes)

    @property
    def num_edges(self) -> int:
        return sum(len(nbrs) for nbrs in self._adj.values()) // 2

    def edges(self) -> List[WeightedEdge]:
        """All edges as (u, v, weight) with canonical endpoint order."""
        seen: Set[Edge] = set()
        result: List[WeightedEdge] = []
        for u in self._nodes:
            for v, w in self._adj[u].items():
                edge = canonical_edge(u, v)
                if edge not in seen:
                    seen.add(edge)
                    result.append((edge[0], edge[1], w))
        return result

    def edge_set(self) -> FrozenSet[Edge]:
        """All edges as a frozen set of canonical pairs."""
        return frozenset(canonical_edge(u, v) for u, v, _ in self.edges())

    def has_node(self, v: Node) -> bool:
        return v in self._adj

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Node) -> Tuple[Node, ...]:
        """Neighbors of ``v`` in deterministic order."""
        return tuple(sorted(self._adj[v], key=repr))

    def adjacency(self, v: Node) -> Mapping[Node, int]:
        """The neighbor → weight mapping of ``v``, unsorted.

        A read-only view of the internal adjacency, for topology
        compilers that impose their own order (sorting here would
        redo per-call what they do once); everything else should use
        :meth:`neighbors`, whose order is the deterministic contract.
        """
        return MappingProxyType(self._adj[v])

    def degree(self, v: Node) -> int:
        return len(self._adj[v])

    def weight(self, u: Node, v: Node) -> int:
        """Weight of the edge {u, v}; raises KeyError if absent."""
        return self._adj[u][v]

    def total_weight(self) -> int:
        """Sum of all edge weights."""
        return sum(w for _, _, w in self.edges())

    def edge_weight_sum(self, edges: Iterable[Edge]) -> int:
        """Total weight of the given edge set."""
        return sum(self._adj[u][v] for u, v in edges)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check the Section 2 model assumptions.

        Raises GraphValidationError if the graph is empty, has non-positive
        or non-integer weights, or is disconnected.
        """
        if not self._nodes:
            raise GraphValidationError("graph has no nodes")
        for u, v, w in self.edges():
            if not isinstance(w, int) or isinstance(w, bool):
                raise GraphValidationError(
                    f"edge ({u!r}, {v!r}) has non-integer weight {w!r}"
                )
            if w <= 0:
                raise GraphValidationError(
                    f"edge ({u!r}, {v!r}) has non-positive weight {w}"
                )
        if not self.is_connected():
            raise GraphValidationError("graph is not connected")

    def is_connected(self) -> bool:
        """Whether the graph is connected (single component)."""
        if not self._nodes:
            return False
        seen = {self._nodes[0]}
        stack = [self._nodes[0]]
        while stack:
            u = stack.pop()
            for v in self._adj[u]:
                if v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == len(self._nodes)

    # ------------------------------------------------------------------
    # Shortest paths (deterministic tie-breaking)
    # ------------------------------------------------------------------

    def dijkstra(
        self, source: Node
    ) -> Tuple[Dict[Node, int], Dict[Node, Optional[Node]]]:
        """Single-source shortest paths with deterministic tie-breaking.

        Among least-weight paths, prefers fewer hops, then the
        lexicographically smallest predecessor. Returns (distances, parents);
        ``parents[source] is None``.
        """
        dist: Dict[Node, int] = {source: 0}
        hops: Dict[Node, int] = {source: 0}
        parent: Dict[Node, Optional[Node]] = {source: None}
        # Heap entries: (dist, hops, repr(node), node) — repr gives a total
        # order over mixed node types while staying deterministic for ints.
        heap: List[Tuple[int, int, str, Node]] = [(0, 0, repr(source), source)]
        done: Set[Node] = set()
        while heap:
            d, h, _, u = heapq.heappop(heap)
            if u in done:
                continue
            done.add(u)
            for v, w in self._adj[u].items():
                cand = (d + w, h + 1, repr(u))
                best = (
                    dist.get(v),
                    hops.get(v),
                    repr(parent.get(v)),
                )
                if v not in dist or cand < best:
                    dist[v] = d + w
                    hops[v] = h + 1
                    parent[v] = u
                    heapq.heappush(heap, (d + w, h + 1, repr(v), v))
        return dist, parent

    def distance(self, u: Node, v: Node) -> int:
        """Weighted distance wd(u, v)."""
        return self.all_pairs_distances()[u][v]

    def shortest_path(self, u: Node, v: Node) -> List[Node]:
        """A deterministic least-weight path from ``u`` to ``v`` (node list)."""
        _, parent = self.dijkstra(u)
        if v not in parent:
            raise GraphValidationError(f"{v!r} unreachable from {u!r}")
        path = [v]
        while path[-1] != u:
            nxt = parent[path[-1]]
            assert nxt is not None
            path.append(nxt)
        path.reverse()
        return path

    @staticmethod
    def path_edges(path: Sequence[Node]) -> List[Edge]:
        """Canonical edge list of a node path."""
        return [canonical_edge(a, b) for a, b in zip(path, path[1:])]

    def path_weight(self, path: Sequence[Node]) -> int:
        """Total weight of a node path."""
        return sum(self._adj[a][b] for a, b in zip(path, path[1:]))

    def all_pairs_distances(self) -> Dict[Node, Dict[Node, int]]:
        """All-pairs weighted distances (cached)."""
        if self._apd_cache is None:
            self._apd_cache = {
                v: self.dijkstra(v)[0] for v in self._nodes
            }
        return self._apd_cache

    def min_hop_shortest_path_hops(self, source: Node) -> Dict[Node, int]:
        """For each node, the min hop count among least-weight paths from
        ``source`` (cached per source).

        This is the inner quantity of the shortest-path diameter ``s``.
        """
        if source in self._hops_cache:
            return self._hops_cache[source]
        dist, _ = self.dijkstra(source)
        # DP over the shortest-path DAG in order of increasing distance.
        hops: Dict[Node, int] = {source: 0}
        for v in sorted(
            self._nodes, key=lambda x: (dist[x], repr(x))
        ):
            if v == source:
                continue
            best = None
            for u, w in self._adj[v].items():
                if dist[u] + w == dist[v] and u in hops:
                    cand = hops[u] + 1
                    if best is None or cand < best:
                        best = cand
            assert best is not None, "shortest-path DAG must be connected"
            hops[v] = best
        self._hops_cache[source] = hops
        return hops

    # ------------------------------------------------------------------
    # Paper metrics
    # ------------------------------------------------------------------

    def unweighted_diameter(self) -> int:
        """D — the hop diameter of the graph (cached)."""
        if "D" not in self._metric_cache:
            best = 0
            for source in self._nodes:
                level = {source: 0}
                frontier = [source]
                depth = 0
                while frontier:
                    depth += 1
                    nxt = []
                    for u in frontier:
                        for v in self._adj[u]:
                            if v not in level:
                                level[v] = depth
                                nxt.append(v)
                    frontier = nxt
                best = max(best, max(level.values()))
            self._metric_cache["D"] = best
        return self._metric_cache["D"]

    def weighted_diameter(self) -> int:
        """WD — the maximum weighted distance between any node pair (cached)."""
        if "WD" not in self._metric_cache:
            apd = self.all_pairs_distances()
            self._metric_cache["WD"] = max(
                max(row.values()) for row in apd.values()
            )
        return self._metric_cache["WD"]

    def shortest_path_diameter(self) -> int:
        """s — max over pairs of min hops among least-weight paths (cached)."""
        if "s" not in self._metric_cache:
            best = 0
            for source in self._nodes:
                hops = self.min_hop_shortest_path_hops(source)
                best = max(best, max(hops.values()))
            self._metric_cache["s"] = best
        return self._metric_cache["s"]

    # ------------------------------------------------------------------
    # Weighted balls (moat geometry)
    # ------------------------------------------------------------------

    def ball(self, center: Node, radius: Fraction) -> Ball:
        """The weighted ball ``B_G(center, radius)`` with fractional edges.

        See Section 2 of the paper: an edge {w, u} with ``w`` inside the ball
        contributes the fraction of its weight covered by the remaining
        radius at ``w`` (from both endpoints if both are inside).
        """
        radius = Fraction(radius)
        dist, _ = self.dijkstra(center)
        nodes = frozenset(v for v, d in dist.items() if d <= radius)
        edge_fractions: Dict[Edge, Fraction] = {}
        for u, v, w in self.edges():
            covered = Fraction(0)
            if u in nodes:
                covered += min(Fraction(w), radius - dist[u])
            if v in nodes:
                covered += min(Fraction(w), radius - dist[v])
            covered = min(covered, Fraction(w))
            if covered > 0:
                edge_fractions[canonical_edge(u, v)] = covered / w
        return Ball(center, radius, nodes, edge_fractions)

    # ------------------------------------------------------------------

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeightedGraph(n={self.num_nodes}, m={self.num_edges})"
