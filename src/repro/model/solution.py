"""Forest solutions: feasibility, weight, and minimal subforests.

The output of every algorithm in the paper is an edge set ``F ⊆ E`` such that
all terminals of each input component are connected by ``F``. This module
provides :class:`ForestSolution` for checking those guarantees, measuring
weight, and extracting the inclusion-minimal feasible subforest (the final
pruning step of Algorithms 1/2 and Appendix F.3).
"""

from typing import Dict, FrozenSet, Iterable, List, Set

from repro.exceptions import InfeasibleSolutionError
from repro.model.graph import Edge, Node, WeightedGraph, canonical_edge
from repro.model.instance import ConnectionRequestInstance, SteinerForestInstance
from repro.util import UnionFind


class ForestSolution:
    """An edge set proposed as a Steiner forest solution.

    The class is agnostic about which algorithm produced the edges; it only
    knows the graph. Feasibility is checked against a given instance.
    """

    def __init__(self, graph: WeightedGraph, edges: Iterable[Edge]) -> None:
        self.graph = graph
        canon: Set[Edge] = set()
        for u, v in edges:
            if not graph.has_edge(u, v):
                raise InfeasibleSolutionError(
                    f"solution contains non-edge ({u!r}, {v!r})"
                )
            canon.add(canonical_edge(u, v))
        self.edges: FrozenSet[Edge] = frozenset(canon)

    # ------------------------------------------------------------------

    @property
    def weight(self) -> int:
        """W(F) — total weight of the selected edges."""
        return self.graph.edge_weight_sum(self.edges)

    def is_forest(self) -> bool:
        """Whether (V, F) is acyclic."""
        uf = UnionFind()
        for u, v in sorted(self.edges, key=repr):
            if not uf.union(u, v):
                return False
        return True

    def components(self) -> List[FrozenSet[Node]]:
        """Connected components of (V, F) restricted to touched nodes."""
        uf = UnionFind()
        for u, v in self.edges:
            uf.union(u, v)
        groups: Dict[Node, Set[Node]] = {}
        for u, v in self.edges:
            for x in (u, v):
                groups.setdefault(uf.find(x), set()).add(x)
        return [frozenset(g) for g in groups.values()]

    def _component_finder(self) -> UnionFind:
        uf = UnionFind(self.graph.nodes)
        for u, v in self.edges:
            uf.union(u, v)
        return uf

    def connects(self, u: Node, v: Node) -> bool:
        """Whether ``F`` connects nodes ``u`` and ``v``."""
        return self._component_finder().connected(u, v)

    # ------------------------------------------------------------------

    def is_feasible(self, instance) -> bool:
        """Whether the solution satisfies all of ``instance``'s demands.

        Accepts either a :class:`SteinerForestInstance` or a
        :class:`ConnectionRequestInstance`.
        """
        uf = self._component_finder()
        for u, v in _demand_pairs(instance):
            if not uf.connected(u, v):
                return False
        return True

    def assert_feasible(self, instance) -> None:
        """Raise InfeasibleSolutionError if some demand is unsatisfied."""
        uf = self._component_finder()
        for u, v in _demand_pairs(instance):
            if not uf.connected(u, v):
                raise InfeasibleSolutionError(
                    f"terminals {u!r} and {v!r} are not connected"
                )

    # ------------------------------------------------------------------

    def minimal_subforest(self, instance) -> "ForestSolution":
        """The inclusion-minimal subset of ``F`` that still solves
        ``instance``.

        Mirrors the final line of Algorithms 1 and 2 ("return minimal
        feasible subset of F"). Requires ``F`` to be feasible. If ``F``
        contains cycles, a spanning forest of ``F`` is used first (any
        feasible edge set admits a feasible spanning forest of no larger
        weight, since edge weights are positive).

        An edge of a tree is needed iff it lies on the tree path of some
        demand pair; equivalently, iff removing it separates two terminals
        of the same demand group. We keep exactly the union over demand
        groups of the minimal subtree spanning each group (the sets ``T_λ``
        of Definition G.6, here inside the solution forest).
        """
        self.assert_feasible(instance)

        # Reduce to a spanning forest of (V, F), preferring light edges so
        # the pruned result is never heavier than necessary.
        uf = UnionFind(self.graph.nodes)
        forest: Set[Edge] = set()
        adj: Dict[Node, Set[Node]] = {}
        for u, v in sorted(
            self.edges, key=lambda e: (self.graph.weight(*e), repr(e))
        ):
            if uf.union(u, v):
                forest.add(canonical_edge(u, v))
                adj.setdefault(u, set()).add(v)
                adj.setdefault(v, set()).add(u)

        groups = _demand_groups(instance)
        kept: Set[Edge] = set()
        # Root every tree of the forest once; for each demand group, an edge
        # (child, parent) is needed iff the child's subtree contains some but
        # not all of the group's terminals in that tree.
        visited: Set[Node] = set()
        for root in sorted(adj, key=repr):
            if root in visited:
                continue
            # Iterative DFS producing a post-order and parent pointers.
            parent: Dict[Node, Node] = {}
            order: List[Node] = []
            stack = [root]
            visited.add(root)
            while stack:
                u = stack.pop()
                order.append(u)
                for v in adj[u]:
                    if v not in visited:
                        visited.add(v)
                        parent[v] = u
                        stack.append(v)
            tree_nodes = set(order)
            for group in groups:
                members = group & tree_nodes
                if len(members) < 2:
                    continue
                # Subtree counts of group terminals via reverse DFS order.
                count: Dict[Node, int] = {
                    v: (1 if v in members else 0) for v in order
                }
                for v in reversed(order):
                    if v in parent:
                        count[parent[v]] += count[v]
                total = len(members)
                for v in order:
                    if v in parent and 0 < count[v] < total:
                        kept.add(canonical_edge(v, parent[v]))
        return ForestSolution(self.graph, kept)

    # ------------------------------------------------------------------

    def union(self, other: "ForestSolution") -> "ForestSolution":
        """Edge-set union of two solutions on the same graph."""
        if other.graph is not self.graph:
            raise InfeasibleSolutionError(
                "cannot union solutions over different graphs"
            )
        return ForestSolution(self.graph, self.edges | other.edges)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ForestSolution(|F|={len(self.edges)}, W={self.weight})"


def _demand_pairs(instance) -> List:
    if isinstance(instance, SteinerForestInstance):
        return instance.component_pairs()
    if isinstance(instance, ConnectionRequestInstance):
        return instance.demand_pairs()
    raise TypeError(f"unsupported instance type {type(instance)!r}")


def _demand_groups(instance) -> List[FrozenSet[Node]]:
    """Terminal groups that must each be connected.

    For DSF-IC these are the input components; for DSF-CR they are the
    connected components of the demand graph (transitivity of connectivity
    makes this equivalent, cf. Lemma 2.3).
    """
    if isinstance(instance, SteinerForestInstance):
        return [c for c in instance.components.values() if len(c) >= 2]
    uf = UnionFind()
    for u, v in _demand_pairs(instance):
        uf.union(u, v)
    return [frozenset(s) for s in uf.sets() if len(s) >= 2]
