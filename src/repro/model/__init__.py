"""Problem model: weighted graphs, Steiner forest instances, and solutions.

This package implements the objects defined in Section 2 of Lenzen &
Patt-Shamir (PODC 2014): the weighted network graph with its metrics
(unweighted diameter ``D``, weighted diameter ``WD``, shortest-path diameter
``s``), the two input representations of the distributed Steiner forest
problem (DSF-IC with input components, Definition 2.2, and DSF-CR with
connection requests, Definition 2.1), and forest solutions with feasibility
checking.
"""

from repro.model.graph import Ball, WeightedGraph
from repro.model.instance import (
    ConnectionRequestInstance,
    SteinerForestInstance,
)
from repro.model.solution import ForestSolution
from repro.model.transforms import (
    minimalize_instance,
    requests_to_components,
)

__all__ = [
    "Ball",
    "WeightedGraph",
    "SteinerForestInstance",
    "ConnectionRequestInstance",
    "ForestSolution",
    "requests_to_components",
    "minimalize_instance",
]
