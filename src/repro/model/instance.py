"""Steiner forest problem instances (Definitions 2.1 and 2.2).

Two input representations are supported, matching the paper:

* :class:`SteinerForestInstance` — DSF-IC, *input components*: each terminal
  ``v`` carries a label ``λ(v)``; all terminals sharing a label must end up in
  the same connected component of the output forest.
* :class:`ConnectionRequestInstance` — DSF-CR, *connection requests*: each
  node ``v`` holds a request set ``R_v ⊆ V``; for every ``w ∈ R_v`` the output
  must connect ``v`` and ``w``.

Both can be converted into one another without changing the set of feasible
outputs (Lemmas 2.3 and 2.4); see :mod:`repro.model.transforms`.
"""

from typing import (
    AbstractSet,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Mapping,
    Tuple,
)

from repro.exceptions import InstanceValidationError
from repro.model.graph import Node, WeightedGraph

Label = Hashable


class SteinerForestInstance:
    """A DSF-IC instance: a weighted graph plus a terminal labelling.

    Args:
        graph: the underlying CONGEST network.
        labels: mapping from terminal node to its component label λ(v).
            Nodes absent from the mapping are non-terminals (λ(v) = ⊥).

    The paper's parameters are exposed as properties: ``terminals`` (T),
    ``num_terminals`` (t), ``components`` (the C_λ), ``num_components`` (k).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        labels: Mapping[Node, Label],
        validate: bool = True,
    ) -> None:
        self.graph = graph
        self._labels: Dict[Node, Label] = dict(labels)
        if validate:
            self.validate()

    # ------------------------------------------------------------------

    def validate(self) -> None:
        """Check that every labelled node exists and labels are not None."""
        for v, label in self._labels.items():
            if not self.graph.has_node(v):
                raise InstanceValidationError(
                    f"terminal {v!r} is not a node of the graph"
                )
            if label is None:
                raise InstanceValidationError(
                    f"terminal {v!r} has label None (use absence for ⊥)"
                )

    # ------------------------------------------------------------------

    def label(self, v: Node) -> Label:
        """λ(v), or None for non-terminals."""
        return self._labels.get(v)

    @property
    def labels(self) -> Dict[Node, Label]:
        """A copy of the terminal→label mapping."""
        return dict(self._labels)

    @property
    def terminals(self) -> FrozenSet[Node]:
        """T — the set of labelled nodes."""
        return frozenset(self._labels)

    @property
    def num_terminals(self) -> int:
        """t = |T|."""
        return len(self._labels)

    @property
    def components(self) -> Dict[Label, FrozenSet[Node]]:
        """The input components C_λ keyed by label."""
        result: Dict[Label, set] = {}
        for v, label in self._labels.items():
            result.setdefault(label, set()).add(v)
        return {label: frozenset(nodes) for label, nodes in result.items()}

    @property
    def num_components(self) -> int:
        """k = |Λ|."""
        return len(set(self._labels.values()))

    def is_minimal(self) -> bool:
        """Whether no input component is a singleton (Definition 2.2)."""
        return all(len(c) >= 2 for c in self.components.values())

    def is_trivial(self) -> bool:
        """Whether the empty edge set is feasible (no component with ≥2)."""
        return all(len(c) <= 1 for c in self.components.values())

    def component_pairs(self) -> List[Tuple[Node, Node]]:
        """All unordered terminal pairs that must be connected."""
        pairs = []
        for component in self.components.values():
            members = sorted(component, key=repr)
            for i, u in enumerate(members):
                for v in members[i + 1:]:
                    pairs.append((u, v))
        return pairs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SteinerForestInstance(n={self.graph.num_nodes}, "
            f"t={self.num_terminals}, k={self.num_components})"
        )


class ConnectionRequestInstance:
    """A DSF-CR instance: a weighted graph plus per-node request sets.

    Args:
        graph: the underlying CONGEST network.
        requests: mapping from node ``v`` to the set ``R_v`` of nodes it must
            be connected to. Requests need not be symmetric (the paper's
            reduction in Lemma 3.1 uses asymmetric ones); feasibility treats
            ``w ∈ R_v`` as the undirected demand {v, w}.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        requests: Mapping[Node, AbstractSet[Node]],
        validate: bool = True,
    ) -> None:
        self.graph = graph
        self._requests: Dict[Node, FrozenSet[Node]] = {
            v: frozenset(targets)
            for v, targets in requests.items()
            if targets
        }
        if validate:
            self.validate()

    def validate(self) -> None:
        for v, targets in self._requests.items():
            if not self.graph.has_node(v):
                raise InstanceValidationError(
                    f"requesting node {v!r} is not a node of the graph"
                )
            for w in targets:
                if not self.graph.has_node(w):
                    raise InstanceValidationError(
                        f"request target {w!r} is not a node of the graph"
                    )
                if w == v:
                    raise InstanceValidationError(
                        f"node {v!r} requests connection to itself"
                    )

    # ------------------------------------------------------------------

    def requests_of(self, v: Node) -> FrozenSet[Node]:
        """R_v (empty frozenset for nodes with no requests)."""
        return self._requests.get(v, frozenset())

    @property
    def requests(self) -> Dict[Node, FrozenSet[Node]]:
        """A copy of the node→requests mapping."""
        return dict(self._requests)

    def demand_pairs(self) -> List[Tuple[Node, Node]]:
        """All undirected demand pairs {v, w} implied by the requests."""
        pairs = set()
        for v, targets in self._requests.items():
            for w in targets:
                pairs.add((v, w) if repr(v) <= repr(w) else (w, v))
        return sorted(pairs, key=repr)

    @property
    def terminals(self) -> FrozenSet[Node]:
        """T — nodes appearing in any request, as source or target."""
        result = set(self._requests)
        for targets in self._requests.values():
            result |= targets
        return frozenset(result)

    @property
    def num_terminals(self) -> int:
        """t = |T|."""
        return len(self.terminals)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConnectionRequestInstance(n={self.graph.num_nodes}, "
            f"t={self.num_terminals}, "
            f"demands={len(self.demand_pairs())})"
        )


def instance_from_components(
    graph: WeightedGraph, components: Iterable[Iterable[Node]]
) -> SteinerForestInstance:
    """Convenience constructor: label the i-th component with label ``i``."""
    labels: Dict[Node, Label] = {}
    for index, component in enumerate(components):
        for v in component:
            if v in labels:
                raise InstanceValidationError(
                    f"node {v!r} appears in two input components"
                )
            labels[v] = index
    return SteinerForestInstance(graph, labels)
