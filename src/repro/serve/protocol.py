"""The solver service's wire protocol: newline-delimited JSON frames.

One message per line, UTF-8, ``\\n``-terminated — the same framing as
the result store and every telemetry stream, so a captured conversation
is greppable and replayable with the stock JSONL tooling. Every frame
is a JSON object with a ``type`` field; request/response pairs correlate
through a client-chosen ``id`` echoed back verbatim.

Conversation shape::

    client                                server
    ------                                ------
    {"type":"hello","protocol":1}   ->
                                    <-    {"type":"welcome","protocol":1,...}
    {"type":"submit","id":"r1",
     "spec":{...},"stream":true}    ->
                                    <-    {"type":"event","id":"r1",...}   (0+)
                                    <-    {"type":"result","id":"r1",...}
    {"type":"ping","id":"r2"}       ->
                                    <-    {"type":"pong","id":"r2",...}
    {"type":"metrics","id":"r3"}    ->
                                    <-    {"type":"metrics","id":"r3",
                                           "metrics":{...}}
    {"type":"bye"}                  ->    (connection closes)

``metrics`` returns the server's full
:meth:`~repro.telemetry.MetricsRegistry.snapshot` — counters, gauges,
and bucketed latency histograms — which is what ``repro metrics`` and
``repro top`` scrape. The frame is additive, so the protocol version
stays at 1: a v1 server that predates it answers with a recoverable
``bad-request`` error and the conversation continues.

The handshake is mandatory: the first client frame must be ``hello``
carrying :data:`PROTOCOL_VERSION`; any mismatch is answered with a
structured ``error`` (code ``protocol-mismatch``) and the connection is
closed, so old clients fail loudly instead of misparsing newer frames.

Errors are always structured frames (:func:`error_frame`): a ``code``
from :data:`ERROR_CODES` plus a human-readable ``message``. A malformed
line (bad JSON, missing ``type``) gets ``code="malformed"`` and the
conversation continues — NDJSON framing resynchronizes at the next
newline — while frames exceeding :data:`MAX_FRAME_BYTES` are fatal to
the connection (the stream offset is no longer trustworthy).
"""

import json
from typing import Any, Dict, Optional

#: Version of the wire protocol; bump on incompatible frame changes.
#: The handshake rejects mismatches on both sides.
PROTOCOL_VERSION = 1

#: Hard per-frame size cap (a full sweep result set rides in one frame).
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Structured error codes a server may answer with.
E_MALFORMED = "malformed"          # unparseable frame / missing fields
E_PROTOCOL = "protocol-mismatch"   # handshake version disagreement
E_BAD_REQUEST = "bad-request"      # well-formed frame, invalid payload
E_OVERLOADED = "overloaded"        # admission queue full, retry later
E_RATE_LIMITED = "rate-limited"    # per-client request cap exceeded
E_SHUTDOWN = "server-shutdown"     # daemon is draining, not accepting
E_JOB_FAILED = "job-failed"        # a submitted job raised / crashed

ERROR_CODES = (
    E_MALFORMED,
    E_PROTOCOL,
    E_BAD_REQUEST,
    E_OVERLOADED,
    E_RATE_LIMITED,
    E_SHUTDOWN,
    E_JOB_FAILED,
)

#: Frame types a client may send.
CLIENT_FRAMES = ("hello", "submit", "ping", "stats", "metrics", "bye")


class ProtocolError(Exception):
    """A frame violated the wire protocol.

    Attributes:
        code: one of :data:`ERROR_CODES` (what the server answers with).
        fatal: whether the connection can continue after the error
            (malformed JSON on a complete line is recoverable; a frame
            that overflowed the size cap is not).
    """

    def __init__(self, code: str, message: str, fatal: bool = False) -> None:
        super().__init__(message)
        self.code = code
        self.fatal = fatal


def encode_frame(message: Dict[str, Any]) -> bytes:
    """One wire frame: canonical JSON plus the newline terminator."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one received line into a frame dict.

    Raises:
        ProtocolError: not JSON, not an object, or missing ``type``.
    """
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(
            E_MALFORMED,
            f"frame of {len(line)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap",
            fatal=True,
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(E_MALFORMED, f"unparseable frame: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            E_MALFORMED, f"frame must be a JSON object, got {type(message).__name__}"
        )
    if "type" not in message:
        raise ProtocolError(E_MALFORMED, "frame has no 'type' field")
    return message


# -- frame constructors (kept together so both sides agree on shape) ----

def hello_frame(client: str = "", protocol: int = PROTOCOL_VERSION) -> Dict[str, Any]:
    """The client's opening handshake frame."""
    return {"type": "hello", "protocol": protocol, "client": client}


def welcome_frame(
    server: str, run_id: str, protocol: int = PROTOCOL_VERSION, **extra: Any
) -> Dict[str, Any]:
    """The server's handshake acceptance."""
    frame = {
        "type": "welcome",
        "protocol": protocol,
        "server": server,
        "run_id": run_id,
    }
    frame.update(extra)
    return frame


def submit_frame(
    request_id: str,
    spec: Optional[Dict[str, Any]] = None,
    scenario: Optional[str] = None,
    stream: bool = False,
) -> Dict[str, Any]:
    """A job-submission request: a full ScenarioSpec dict, or the name
    of a scenario registered on the server."""
    frame: Dict[str, Any] = {
        "type": "submit", "id": request_id, "stream": bool(stream),
    }
    if spec is not None:
        frame["spec"] = spec
    if scenario is not None:
        frame["scenario"] = scenario
    return frame


def ping_frame(request_id: str) -> Dict[str, Any]:
    return {"type": "ping", "id": request_id}


def stats_frame(request_id: str) -> Dict[str, Any]:
    return {"type": "stats", "id": request_id}


def metrics_frame(request_id: str) -> Dict[str, Any]:
    """Request the server's full metrics-registry snapshot."""
    return {"type": "metrics", "id": request_id}


def bye_frame() -> Dict[str, Any]:
    return {"type": "bye"}


def event_frame(request_id: str, event: Dict[str, Any]) -> Dict[str, Any]:
    """One streamed telemetry event scoped to a submit request."""
    return {"type": "event", "id": request_id, "event": event}


def result_frame(
    request_id: str,
    records: Any,
    executed: int,
    cached: int,
    shared: int,
) -> Dict[str, Any]:
    """The terminal success frame of a submit request."""
    return {
        "type": "result",
        "id": request_id,
        "records": records,
        "executed": executed,
        "cached": cached,
        "shared": shared,
    }


def error_frame(
    code: str, message: str, request_id: Optional[str] = None
) -> Dict[str, Any]:
    """A structured error; scoped to a request when ``request_id`` is set."""
    frame: Dict[str, Any] = {"type": "error", "code": code, "message": message}
    if request_id is not None:
        frame["id"] = request_id
    return frame
