"""Solver-as-a-service: the ``repro serve`` daemon and its client.

The package splits along the transport boundary:

* :mod:`repro.serve.protocol` — the newline-delimited JSON wire format
  (versioned handshake, frame constructors, structured error codes);
* :mod:`repro.serve.service` — the transport-independent core: one warm
  :class:`~concurrent.futures.ProcessPoolExecutor`, the shared result
  cache, cross-client request dedup, bounded admission, crash recovery;
* :mod:`repro.serve.server` — the asyncio socket front-end (unix or
  TCP) with per-connection rate caps and ordered streaming writes;
* :mod:`repro.serve.client` — the blocking :class:`ServeClient` library
  behind ``repro submit`` / ``repro ping`` / ``repro metrics``;
* :mod:`repro.serve.top` — the ANSI live dashboard (``repro top``)
  polling the daemon's ``metrics`` frame;
* :mod:`repro.serve.loadgen` — shared load-generation used by the
  committed benchmarks (``BENCH_serve.json``, ``BENCH_observe.json``),
  the ``repro bench check`` gate, and the CI smoke harnesses
  (:mod:`repro.serve.smoke`, :mod:`repro.serve.obsmoke`).
"""

from repro.serve.client import ServeClient, ServeClientError, SubmitResult
from repro.serve.protocol import MAX_FRAME_BYTES, PROTOCOL_VERSION, ProtocolError
from repro.serve.server import ServeServer, TokenBucket
from repro.serve.service import (
    BadRequestError,
    OverloadedError,
    ServiceError,
    ShuttingDownError,
    SolverService,
    SubmitOutcome,
    strip_volatile,
)
from repro.serve.top import format_top, run_top

__all__ = [
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "BadRequestError",
    "OverloadedError",
    "ProtocolError",
    "ServeClient",
    "ServeClientError",
    "ServeServer",
    "ServiceError",
    "ShuttingDownError",
    "SolverService",
    "SubmitOutcome",
    "SubmitResult",
    "TokenBucket",
    "format_top",
    "run_top",
    "strip_volatile",
]
