"""The ``repro serve`` daemon: an asyncio socket front-end on the service.

One :class:`ServeServer` listens on a unix socket (the default — CI and
local use) or a TCP port, speaks the newline-delimited JSON protocol of
:mod:`repro.serve.protocol`, and multiplexes every connection onto one
shared :class:`~repro.serve.service.SolverService` (one warm pool, one
cache, cross-client dedup).

Per-connection discipline:

* **handshake first** — the opening frame must be ``hello`` with the
  matching protocol version, or the connection is answered with a
  structured ``protocol-mismatch`` error and closed;
* **rate caps** — a token bucket per connection (``rate`` requests/s,
  ``burst`` capacity); a submit over the cap gets ``rate-limited`` but
  keeps the connection;
* **ordered writes** — all outbound frames go through one per-connection
  queue drained by a single writer task, so a request's streamed events
  always precede its result frame regardless of task interleaving;
* **graceful shutdown** — :meth:`ServeServer.shutdown` stops accepting,
  rejects new submits with ``server-shutdown``, waits for in-flight
  jobs to finish and their results to be delivered, then closes.

The handler is transport-agnostic (anything with the
``StreamReader``/``StreamWriter`` surface), which is how the protocol
tests drive golden conversations through an in-memory transport without
opening sockets.
"""

import asyncio
import time
from typing import Any, Dict, Optional

from repro.serve import protocol
from repro.serve.service import (
    BadRequestError,
    OverloadedError,
    ShuttingDownError,
    SolverService,
)

#: Default per-connection rate cap: requests per second / bucket size.
DEFAULT_RATE = 100.0
DEFAULT_BURST = 200.0


class TokenBucket:
    """Classic token bucket; ``clock`` injectable for deterministic tests."""

    def __init__(self, rate: float, burst: float, clock=time.monotonic) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()

    def take(self, tokens: float = 1.0) -> bool:
        """Consume ``tokens`` if available; False means rate-limited."""
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now
        if self._tokens >= tokens:
            self._tokens -= tokens
            return True
        return False


class ServeServer:
    """The protocol front-end over one shared :class:`SolverService`."""

    def __init__(
        self,
        service: SolverService,
        rate: float = DEFAULT_RATE,
        burst: float = DEFAULT_BURST,
        clock=time.monotonic,
        name: str = "repro-serve",
        store_refresh: float = 0.0,
    ) -> None:
        self.service = service
        self.rate = rate
        self.burst = burst
        self.name = name
        self.store_refresh = store_refresh
        self._clock = clock
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections = 0
        self._shutting_down = False
        self._started = clock()

    # -- listening -------------------------------------------------------

    async def start_unix(self, path: str) -> None:
        self._server = await asyncio.start_unix_server(
            self.handle_connection, path=path,
            limit=protocol.MAX_FRAME_BYTES,
        )

    async def start_tcp(self, host: str, port: int) -> None:
        self._server = await asyncio.start_server(
            self.handle_connection, host=host, port=port,
            limit=protocol.MAX_FRAME_BYTES,
        )

    async def serve_until(self, stop: asyncio.Event) -> None:
        """Serve until ``stop`` is set, then shut down gracefully.

        With ``store_refresh > 0`` a background task calls
        :meth:`SolverService.refresh_store` on that cadence, so rows
        appended to the shared store by other processes (CLI sweeps,
        sibling daemons) become cache hits without a restart.
        """
        refresher: Optional[asyncio.Task] = None
        if self.store_refresh > 0 and self.service.store is not None:
            refresher = asyncio.create_task(
                self._store_refresh_loop(self.store_refresh)
            )
        try:
            async with self._server:
                await self._server.start_serving()
                await stop.wait()
                await self.shutdown()
        finally:
            if refresher is not None:
                refresher.cancel()
                try:
                    await refresher
                except asyncio.CancelledError:
                    pass

    async def _store_refresh_loop(self, interval: float) -> None:
        while True:
            await asyncio.sleep(interval)
            self.service.refresh_store()

    async def shutdown(self) -> None:
        """Graceful shutdown: stop accepting, drain running jobs."""
        self._shutting_down = True
        if self._server is not None:
            self._server.close()
        # Draining waits for every admitted job; handler tasks deliver
        # their result frames before the connections close.
        await self.service.drain()
        await self.service.close(drain=False)
        if self._server is not None:
            await self._server.wait_closed()

    # -- the per-connection protocol loop --------------------------------

    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: Any
    ) -> None:
        """Run one connection to completion (public: tests drive this
        directly with in-memory reader/writer pairs)."""
        self._connections += 1
        self._emit("client_connect", connections=self._connections)
        outbound: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._drain_outbound(outbound, writer))
        bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
        requests: set = set()
        try:
            if not await self._handshake(reader, outbound):
                return
            while True:
                try:
                    frame = await self._read_frame(reader)
                except protocol.ProtocolError as exc:
                    outbound.put_nowait(
                        protocol.error_frame(exc.code, str(exc))
                    )
                    if exc.fatal:
                        return
                    continue
                if frame is None or frame.get("type") == "bye":
                    return
                kind = frame.get("type")
                if kind == "ping":
                    outbound.put_nowait(self._pong(frame))
                elif kind == "stats":
                    outbound.put_nowait(self._stats(frame))
                elif kind == "metrics":
                    outbound.put_nowait(self._metrics(frame))
                elif kind == "submit":
                    request_id = str(frame.get("id", ""))
                    if not bucket.take():
                        self._count("serve.rate_limited")
                        outbound.put_nowait(protocol.error_frame(
                            protocol.E_RATE_LIMITED,
                            f"per-client cap of {self.rate:g} requests/s "
                            "exceeded; slow down",
                            request_id,
                        ))
                        continue
                    task = asyncio.create_task(
                        self._handle_submit(frame, request_id, outbound)
                    )
                    requests.add(task)
                    task.add_done_callback(requests.discard)
                else:
                    outbound.put_nowait(protocol.error_frame(
                        protocol.E_BAD_REQUEST,
                        f"unknown frame type {kind!r}; "
                        f"expected one of {list(protocol.CLIENT_FRAMES)}",
                        frame.get("id"),
                    ))
        finally:
            if requests:
                await asyncio.gather(*requests, return_exceptions=True)
            await outbound.join()
            writer_task.cancel()
            self._connections -= 1
            self._emit("client_disconnect", connections=self._connections)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _handshake(
        self, reader: asyncio.StreamReader, outbound: asyncio.Queue
    ) -> bool:
        try:
            frame = await self._read_frame(reader)
        except protocol.ProtocolError as exc:
            outbound.put_nowait(protocol.error_frame(exc.code, str(exc)))
            return False
        if frame is None:
            return False
        if frame.get("type") != "hello":
            outbound.put_nowait(protocol.error_frame(
                protocol.E_PROTOCOL,
                f"expected a 'hello' handshake, got {frame.get('type')!r}",
            ))
            return False
        version = frame.get("protocol")
        if version != protocol.PROTOCOL_VERSION:
            outbound.put_nowait(protocol.error_frame(
                protocol.E_PROTOCOL,
                f"protocol version {version!r} unsupported; "
                f"server speaks {protocol.PROTOCOL_VERSION}",
            ))
            return False
        run_id = (
            self.service.telemetry.run_id
            if self.service.telemetry is not None else ""
        )
        outbound.put_nowait(protocol.welcome_frame(
            server=self.name,
            run_id=run_id,
            workers=self.service.max_workers,
            cached_keys=len(self.service._hot),
        ))
        return True

    async def _read_frame(
        self, reader: asyncio.StreamReader
    ) -> Optional[Dict[str, Any]]:
        """One frame off the wire; None on clean EOF.

        An overlong line surfaces as a *fatal* ProtocolError — after a
        ``LimitOverrunError`` the stream offset is mid-frame, so there
        is no safe way to keep parsing.
        """
        try:
            line = await reader.readline()
        except (asyncio.LimitOverrunError, ValueError) as exc:
            raise protocol.ProtocolError(
                protocol.E_MALFORMED,
                f"frame exceeds the {protocol.MAX_FRAME_BYTES}-byte cap",
                fatal=True,
            ) from exc
        if not line:
            return None
        if line.strip() == b"":
            # Blank lines are tolerated keep-alives, like everywhere
            # else in the repo's JSONL surfaces.
            return await self._read_frame(reader)
        return protocol.decode_frame(line)

    async def _handle_submit(
        self,
        frame: Dict[str, Any],
        request_id: str,
        outbound: asyncio.Queue,
    ) -> None:
        if self._shutting_down or self.service.draining:
            outbound.put_nowait(protocol.error_frame(
                protocol.E_SHUTDOWN,
                "server is draining; resubmit to the next instance",
                request_id,
            ))
            return
        try:
            spec = self.service.resolve_spec(frame)
        except BadRequestError as exc:
            outbound.put_nowait(protocol.error_frame(
                protocol.E_BAD_REQUEST, str(exc), request_id
            ))
            return
        on_event = None
        if frame.get("stream"):
            # The telemetry-bus bridge: stamped events from the service
            # go straight onto this connection, scoped to the request.
            def on_event(event: Dict[str, Any]) -> None:
                outbound.put_nowait(protocol.event_frame(request_id, event))
        try:
            outcome = await self.service.submit(spec, on_event=on_event)
        except OverloadedError as exc:
            self._count("serve.overloaded")
            outbound.put_nowait(protocol.error_frame(
                protocol.E_OVERLOADED, str(exc), request_id
            ))
            return
        except ShuttingDownError as exc:
            outbound.put_nowait(protocol.error_frame(
                protocol.E_SHUTDOWN, str(exc), request_id
            ))
            return
        except Exception as exc:  # job execution failed
            outbound.put_nowait(protocol.error_frame(
                protocol.E_JOB_FAILED, repr(exc), request_id
            ))
            return
        outbound.put_nowait(protocol.result_frame(
            request_id,
            records=outcome.records,
            executed=outcome.executed,
            cached=outcome.cached,
            shared=outcome.shared,
        ))

    # -- small replies ---------------------------------------------------

    def _pong(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "type": "pong",
            "id": frame.get("id"),
            "server": self.name,
            "uptime": round(self._clock() - self._started, 3),
            "draining": self.service.draining,
        }

    def _stats(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "type": "stats",
            "id": frame.get("id"),
            "server": self.name,
            "connections": self._connections,
            "cached_keys": len(self.service._hot),
            "pending": self.service._pending,
            **self.service.stats.to_dict(),
        }

    def _metrics(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        """The full registry snapshot — what ``repro metrics`` scrapes."""
        return {
            "type": "metrics",
            "id": frame.get("id"),
            "server": self.name,
            "uptime": round(self._clock() - self._started, 3),
            "run_id": (
                self.service.telemetry.run_id
                if self.service.telemetry is not None else ""
            ),
            "metrics": self.service.metrics.snapshot(),
        }

    # -- plumbing --------------------------------------------------------

    async def _drain_outbound(
        self, outbound: asyncio.Queue, writer: Any
    ) -> None:
        """The single writer task: strict FIFO frame delivery."""
        while True:
            message = await outbound.get()
            try:
                writer.write(protocol.encode_frame(message))
                await writer.drain()
            except (ConnectionError, OSError):
                # Client went away; keep consuming so handlers finish.
                pass
            finally:
                outbound.task_done()

    def _emit(self, kind: str, **fields: Any) -> None:
        if self.service.telemetry is not None:
            self.service.telemetry.emit(kind, **fields)

    def _count(self, name: str) -> None:
        self.service.metrics.counter(name).inc()
