"""The solver core behind the daemon: warm pool, cache, dedup, admission.

:class:`SolverService` is transport-independent — the socket server in
:mod:`repro.serve.server` and the in-memory transport the protocol
tests drive both sit on top of it. It owns:

* one :class:`~repro.engine.store.ResultStore` (the shared cache every
  client benefits from) plus an in-memory ``key → record`` hot map so a
  cache hit never re-reads the file;
* one warm :class:`~concurrent.futures.ProcessPoolExecutor` shared by
  every connection — the whole point of the daemon: clients pay
  microseconds of socket round-trip instead of a cold interpreter;
* **request deduplication**: an in-flight ``key → Future`` table, so two
  clients asking for the same cache key share one computation;
* an **admission queue**: a bounded pending-job count (reject with
  ``overloaded`` beyond it) and a semaphore capping how many jobs sit
  in the pool at once — the rest wait their turn in arrival order;
* crash containment: a worker that dies mid-job surfaces as a
  structured ``job_end``/``status=failed`` telemetry event with the
  cause, the pool is rebuilt, and the job is retried once (the runner's
  :data:`~repro.engine.runner.MAX_JOB_ATTEMPTS` discipline).

**Invariant (pinned in tests/test_serve.py): served results are
byte-identical to direct engine runs.** The service executes the exact
:func:`~repro.engine.runner.execute_job` the batch runner uses, on the
exact :class:`~repro.engine.jobs.Job` identities a direct
:func:`~repro.engine.runner.run_spec` would expand — same cache keys,
same stored rows; only the ``wall_time`` metric (a measurement, not a
result) differs run to run (see :func:`strip_volatile`).
"""

import asyncio
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from repro.engine.jobs import Job, expand_jobs
from repro.engine.registry import REGISTRY, ScenarioSpec
from repro.engine.runner import MAX_JOB_ATTEMPTS, execute_job
from repro.engine.store import ResultStore
from repro.telemetry import MetricsRegistry

#: Per-request event callback: receives stamped telemetry event dicts.
EventCallback = Optional[Callable[[Dict[str, Any]], None]]


class ServiceError(Exception):
    """Base class for structured service rejections."""


class OverloadedError(ServiceError):
    """The admission queue is full; the client should retry later."""


class ShuttingDownError(ServiceError):
    """The daemon is draining and accepts no new work."""


class BadRequestError(ServiceError):
    """The submit payload does not resolve to a runnable spec."""


def _warm_worker() -> bool:
    """Pool warm-up task: fork/spawn the worker and pay the imports."""
    import repro.engine.runner  # noqa: F401 (the import is the point)

    return True


def strip_volatile(record: Mapping[str, Any]) -> Dict[str, Any]:
    """A record with measurement-only fields removed, for equality
    pins between served and directly computed results.

    Drops every ``wall_time`` (and profile ``wall``/``seconds``) value
    recursively; everything else — cache key, configuration, logical
    metrics — is part of the deterministic result and survives.
    """
    volatile = {"wall_time", "wall", "seconds", "wall_seconds"}

    def clean(value: Any) -> Any:
        if isinstance(value, dict):
            return {
                key: clean(inner)
                for key, inner in value.items()
                if key not in volatile
            }
        if isinstance(value, list):
            return [clean(inner) for inner in value]
        return value

    return clean(dict(record))


class ServiceStats:
    """Live read-only view of the service's lifetime counters.

    Historically a plain dataclass of ints; the counters now live in
    the service's :class:`~repro.telemetry.MetricsRegistry` (so the
    daemon's ``metrics`` frame, Prometheus exposition, and the
    telemetry snapshot all read the same instruments), and this class
    keeps the old attribute surface — ``stats.executed``,
    ``stats.to_dict()`` — as properties over the registry.
    """

    #: legacy field name → registry counter backing it.
    FIELDS = {
        "requests": "serve.requests",
        "jobs": "serve.jobs",
        "executed": "serve.executed",
        "cache_hits": "serve.cache.hit",
        "deduped": "serve.dedup.shared",
        "failed": "serve.failed",
        "pool_rebuilds": "serve.pool.rebuilds",
    }

    def __init__(self, metrics: Optional[MetricsRegistry] = None) -> None:
        self._metrics = metrics if metrics is not None else MetricsRegistry()

    def __getattr__(self, name: str) -> int:
        try:
            counter = self.FIELDS[name]
        except KeyError:
            raise AttributeError(name) from None
        return self._metrics.counter(counter).value

    def to_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.FIELDS}


@dataclass
class SubmitOutcome:
    """What one submit request produced."""

    records: List[Dict[str, Any]] = field(default_factory=list)
    executed: int = 0
    cached: int = 0
    shared: int = 0


class SolverService:
    """The warm, shared solver behind every connection.

    Args:
        store: the shared result store (``None`` runs cache-in-memory
            only — results are still deduplicated and served to every
            client, but nothing persists).
        max_workers: pool size (default: ``os.cpu_count()``).
        max_inflight: jobs allowed inside the pool at once (default:
            pool size — queued admissions wait on a semaphore).
        max_pending: admission bound — total jobs admitted but not yet
            finished; a submit that would exceed it is rejected with
            :class:`OverloadedError` rather than queued without bound.
        telemetry: optional :class:`~repro.telemetry.Telemetry` bus;
            job-lifecycle events are emitted there *and* handed to the
            per-request callback, so a streaming client sees the same
            stamped envelopes the daemon's own stream records.
        worker: the job executor (worker-process entry point);
            overridable for tests. Defaults to the engine's
            :func:`~repro.engine.runner.execute_job`.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        max_workers: Optional[int] = None,
        max_inflight: Optional[int] = None,
        max_pending: int = 1024,
        telemetry: Optional[Any] = None,
        worker: Callable[..., Dict[str, Any]] = execute_job,
    ) -> None:
        self.store = store
        self.max_workers = max_workers or os.cpu_count() or 1
        self.max_inflight = max_inflight or self.max_workers
        self.max_pending = max_pending
        self.telemetry = telemetry
        # One registry backs stats, the metrics protocol frame, and the
        # telemetry snapshot: the bus's own registry when attached, a
        # private one otherwise (metrics are always on, events are not).
        self.metrics: MetricsRegistry = (
            telemetry.metrics if telemetry is not None else MetricsRegistry()
        )
        self.stats = ServiceStats(self.metrics)
        self._worker = worker
        self._executing = 0
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_generation = 0
        self._pool_lock: Optional[asyncio.Lock] = None
        self._slots: Optional[asyncio.Semaphore] = None
        self._inflight: Dict[str, asyncio.Future] = {}
        self._pending = 0
        self._hot: Dict[str, Dict[str, Any]] = {}
        self._store_offset = 0
        self._draining = False
        self._idle: Optional[asyncio.Event] = None

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        """Create and warm the pool, load the store's cache keys."""
        self._pool_lock = asyncio.Lock()
        self._slots = asyncio.Semaphore(self.max_inflight)
        self._idle = asyncio.Event()
        self._idle.set()
        if self.store is not None:
            self.store.bind_metrics(self.metrics)
            self._absorb_store_rows()
        self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        loop = asyncio.get_running_loop()
        # Pay worker startup now, not on the first request.
        await asyncio.gather(*(
            loop.run_in_executor(self._pool, _warm_worker)
            for _ in range(self.max_workers)
        ))
        self.metrics.gauge("serve.queue.pending").set(0)
        self.metrics.gauge("serve.inflight").set(0)
        self._emit(None, "serve_start",
                   workers=self.max_workers,
                   max_inflight=self.max_inflight,
                   max_pending=self.max_pending,
                   cached_keys=len(self._hot))

    async def drain(self) -> None:
        """Stop admitting work and wait for every in-flight job."""
        self._draining = True
        if self._idle is not None:
            await self._idle.wait()

    async def close(self, drain: bool = True) -> None:
        """Drain (optionally), then shut the pool down (idempotent)."""
        if drain:
            await self.drain()
        self._draining = True
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._emit(None, "serve_end", **self.stats.to_dict())

    @property
    def draining(self) -> bool:
        return self._draining

    # -- store refresh ---------------------------------------------------

    def _absorb_store_rows(self) -> int:
        """Stream rows past the hot-map watermark into the hot map.

        The store's streaming :meth:`~repro.engine.store.ResultStore.scan`
        yields byte offsets, so startup and every later refresh parse
        only bytes the hot map has not seen — never the whole file
        twice. Rows the daemon computed itself come back here too (it
        appends them); ``setdefault`` keeps the in-memory original.
        """
        added = 0
        for offset, length, record in self.store.scan(self._store_offset):
            self._hot.setdefault(record["key"], record)
            self._store_offset = offset + length
            added += 1
        return added

    def refresh_store(self) -> int:
        """Pick up rows appended by *other* processes; returns how many.

        A CLI sweep appending to the daemon's store becomes visible —
        and therefore a cache hit — after this runs (pinned by
        ``tests/test_serve.py``). Wired to a cadence via ``repro serve
        --store-refresh SECONDS``. If the store file was rewritten
        rather than appended (offline ``repro store migrate``), the
        watermark resets and the hot map re-absorbs from byte 0.
        """
        if self.store is None:
            return 0
        self.store.refresh()
        if self.store.tail_offset() < self._store_offset:
            self._store_offset = 0
        added = self._absorb_store_rows()
        if added:
            self.metrics.counter("serve.store.rows_refreshed").inc(added)
            self._emit(
                None, "store_refresh",
                rows=added, cached_keys=len(self._hot),
            )
        return added

    # -- request resolution ----------------------------------------------

    def resolve_spec(self, frame: Mapping[str, Any]) -> ScenarioSpec:
        """Turn a submit frame into a spec: registered name or full dict.

        Raises:
            BadRequestError: neither given, unknown name, invalid spec.
        """
        name = frame.get("scenario")
        payload = frame.get("spec")
        if name is not None:
            try:
                return REGISTRY.get(str(name))
            except KeyError as exc:
                raise BadRequestError(str(exc.args[0])) from exc
        if payload is None:
            raise BadRequestError(
                "submit needs a 'spec' object or a registered 'scenario' name"
            )
        try:
            return ScenarioSpec.from_dict(payload)
        except (KeyError, TypeError, ValueError) as exc:
            raise BadRequestError(f"invalid spec: {exc}") from exc

    # -- the request path ------------------------------------------------

    async def submit(
        self, spec: ScenarioSpec, on_event: EventCallback = None
    ) -> SubmitOutcome:
        """Serve one ScenarioSpec-shaped request.

        Expands the spec exactly like the batch runner, answers cache
        hits from the hot map, deduplicates against in-flight identical
        jobs, and schedules the rest on the warm pool. Returns the full
        record set in job order (the same contract as
        :meth:`~repro.engine.runner.run_spec`).
        """
        if self._draining:
            raise ShuttingDownError("server is draining; try again later")
        self.metrics.counter("serve.requests").inc()
        jobs = expand_jobs(spec)
        self.metrics.counter("serve.jobs").inc(len(jobs))
        misses = [
            job for job in jobs
            if job.key not in self._hot and job.key not in self._inflight
        ]
        if self._pending + len(misses) > self.max_pending:
            raise OverloadedError(
                f"admission queue full ({self._pending} pending, "
                f"{len(misses)} new jobs over the {self.max_pending} cap)"
            )
        outcome = SubmitOutcome()
        started = time.perf_counter()
        results = await asyncio.gather(*(
            self._run_job(job, on_event, outcome, done=index + 1,
                          total=len(jobs))
            for index, job in enumerate(jobs)
        ))
        self.metrics.histogram("serve.request.seconds").observe(
            time.perf_counter() - started
        )
        outcome.records = list(results)
        return outcome

    async def _run_job(
        self,
        job: Job,
        on_event: EventCallback,
        outcome: SubmitOutcome,
        done: int,
        total: int,
    ) -> Dict[str, Any]:
        key = job.key
        started = time.perf_counter()
        hit = self._hot.get(key)
        if hit is not None:
            self.metrics.counter("serve.cache.hit").inc()
            self._job_event(on_event, "job_cached", job, status="cached",
                            done=done, total=total)
            outcome.cached += 1
            self._observe_job("hit", started)
            return hit
        shared = self._inflight.get(key)
        if shared is not None:
            # Another client is already computing this exact key: share.
            self.metrics.counter("serve.dedup.shared").inc()
            self._job_event(on_event, "job_deduped", job, status="shared",
                            done=done, total=total)
            record = await asyncio.shield(shared)
            outcome.shared += 1
            self._observe_job("dedup", started)
            return record
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._pending += 1
        self.metrics.gauge("serve.queue.pending").set(self._pending)
        self._idle.clear()
        self.metrics.counter("serve.admitted").inc()
        self._job_event(on_event, "job_queued", job, status="queued",
                        done=done, total=total)
        try:
            async with _slot(self._slots):
                self._executing += 1
                self.metrics.gauge("serve.inflight").set(self._executing)
                self._job_event(on_event, "job_start", job, status="running",
                                done=done, total=total)
                try:
                    record = await self._execute_with_retry(
                        job, on_event, done=done, total=total
                    )
                finally:
                    self._executing -= 1
                    self.metrics.gauge("serve.inflight").set(self._executing)
            if self.store is not None:
                self.store.append([record])
                self.metrics.counter("serve.store.rows_written").inc()
            self._hot[key] = record
            self.metrics.counter("serve.executed").inc()
            self._job_event(
                on_event, "job_end", job, status="completed",
                done=done, total=total,
                wall_time=record["metrics"].get("wall_time", 0.0),
            )
            outcome.executed += 1
            self._observe_job("executed", started)
            future.set_result(record)
            return record
        except BaseException as exc:
            self.metrics.counter("serve.failed").inc()
            self._observe_job("failed", started)
            future.set_exception(exc)
            # Dedup awaiters consume the exception; nobody else should
            # trip "exception never retrieved" if none are waiting.
            future.exception()
            raise
        finally:
            self._inflight.pop(key, None)
            self._pending -= 1
            self.metrics.gauge("serve.queue.pending").set(self._pending)
            if self._pending == 0:
                self._idle.set()

    async def _execute_with_retry(
        self, job: Job, on_event: EventCallback, done: int, total: int
    ) -> Dict[str, Any]:
        """Run one job on the pool, surviving one worker crash."""
        loop = asyncio.get_running_loop()
        payload = job.to_dict()
        for attempt in range(1, MAX_JOB_ATTEMPTS + 1):
            generation = self._pool_generation
            try:
                return await loop.run_in_executor(
                    self._pool, self._worker, payload
                )
            except BrokenProcessPool as exc:
                # The worker running (or queued next to) this job died.
                # Surface it structurally, heal the pool, retry once.
                self.metrics.counter("serve.worker_crash").inc()
                self._job_event(
                    on_event, "job_end", job, status="failed",
                    done=done, total=total,
                    error=repr(exc),
                    attempt=attempt,
                    will_retry=attempt < MAX_JOB_ATTEMPTS,
                )
                await self._rebuild_pool(generation)
                if attempt >= MAX_JOB_ATTEMPTS:
                    raise
        raise AssertionError("unreachable")  # pragma: no cover

    async def _rebuild_pool(self, seen_generation: int) -> None:
        """Replace a broken pool exactly once per crash generation."""
        async with self._pool_lock:
            if self._pool_generation != seen_generation:
                return  # another coroutine already rebuilt it
            broken = self._pool
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
            self._pool_generation += 1
            self.metrics.counter("serve.pool.rebuilds").inc()
            self._emit(None, "pool_rebuilt",
                       generation=self._pool_generation)
            if broken is not None:
                broken.shutdown(wait=False, cancel_futures=True)

    # -- telemetry plumbing ----------------------------------------------

    def _emit(self, on_event: EventCallback, kind: str, **fields: Any) -> None:
        """One event: stamped on the bus when attached, then streamed to
        the request's subscriber — the bridge from the PR 6 telemetry
        bus onto a connection."""
        if self.telemetry is not None:
            event = self.telemetry.emit(kind, **fields)
        else:
            event = dict(fields, event=kind)
        if on_event is not None:
            on_event(event)

    def _job_event(
        self,
        on_event: EventCallback,
        kind: str,
        job: Job,
        status: str,
        done: int,
        total: int,
        **fields: Any,
    ) -> None:
        self._emit(
            on_event, kind,
            status=status,
            scenario=job.scenario,
            algorithm=job.algorithm,
            key=job.key,
            done=done,
            total=total,
            **fields,
        )

    def _observe_job(self, outcome: str, started: float) -> None:
        """Per-job latency into the outcome-split histogram family."""
        self.metrics.histogram(f"serve.job.{outcome}.seconds").observe(
            time.perf_counter() - started
        )


class _slot:
    """``async with`` adapter over a semaphore (readable call sites)."""

    def __init__(self, semaphore: asyncio.Semaphore) -> None:
        self._semaphore = semaphore

    async def __aenter__(self) -> None:
        await self._semaphore.acquire()

    async def __aexit__(self, *exc_info: Any) -> None:
        self._semaphore.release()
