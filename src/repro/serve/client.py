"""``ServeClient``: the blocking client library for the solver daemon.

A thin, dependency-free socket client speaking the protocol of
:mod:`repro.serve.protocol`. It backs the ``repro submit`` / ``repro
ping`` subcommands, the load benchmark's client processes, and the CI
smoke harness — anything that wants warm-pool results without paying a
cold interpreter.

Usage::

    with ServeClient(socket_path="serve.sock") as client:
        client.ping()
        outcome = client.submit(scenario="gnp-core", stream=True,
                                on_event=print)
        for record in outcome.records:
            ...

The client is deliberately synchronous: callers are CLI commands and
benchmark workers whose whole request fits one round-trip; concurrency
comes from running many clients, which is exactly what the daemon's
shared pool and dedup are for.
"""

import socket
from typing import Any, Callable, Dict, List, Optional

from repro.serve import protocol


class ServeClientError(Exception):
    """A structured error frame from the server (or a transport failure).

    Attributes:
        code: the server's error code (one of
            :data:`repro.serve.protocol.ERROR_CODES`), or ``transport``
            for connection-level failures.
    """

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class SubmitResult:
    """What one submit returned: records plus serve-side accounting."""

    def __init__(self, frame: Dict[str, Any]) -> None:
        self.records: List[Dict[str, Any]] = list(frame.get("records", []))
        self.executed: int = int(frame.get("executed", 0))
        self.cached: int = int(frame.get("cached", 0))
        self.shared: int = int(frame.get("shared", 0))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SubmitResult(records={len(self.records)}, "
            f"executed={self.executed}, cached={self.cached}, "
            f"shared={self.shared})"
        )


class ServeClient:
    """A blocking connection to a ``repro serve`` daemon.

    Args:
        socket_path: unix socket to connect to (the common case).
        host / port: TCP endpoint (used when ``socket_path`` is None).
        name: client identity sent in the handshake (shows up in the
            server's telemetry).
        timeout: per-operation socket timeout in seconds; submits of
            cold sweeps can take a while, so the default is generous.
    """

    def __init__(
        self,
        socket_path: Optional[str] = None,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        name: str = "repro-client",
        timeout: float = 600.0,
    ) -> None:
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.name = name
        self.timeout = timeout
        self.server_info: Dict[str, Any] = {}
        self._sock: Optional[socket.socket] = None
        self._reader = None
        self._next_id = 0

    # -- connection ------------------------------------------------------

    def connect(self) -> Dict[str, Any]:
        """Dial and handshake; returns the server's welcome payload."""
        if self._sock is not None:
            return self.server_info
        try:
            if self.socket_path is not None:
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(self.timeout)
                sock.connect(str(self.socket_path))
            elif self.port is not None:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.timeout
                )
            else:
                raise ServeClientError(
                    "transport", "need a socket_path or a host/port"
                )
        except OSError as exc:
            raise ServeClientError(
                "transport", f"cannot connect to the daemon: {exc}"
            ) from exc
        self._sock = sock
        self._reader = sock.makefile("rb")
        self._send(protocol.hello_frame(client=self.name))
        frame = self._recv()
        if frame.get("type") == "error":
            self.close()
            raise ServeClientError(frame.get("code", "?"), frame.get("message", ""))
        if frame.get("type") != "welcome":
            self.close()
            raise ServeClientError(
                "transport", f"expected 'welcome', got {frame.get('type')!r}"
            )
        self.server_info = frame
        return frame

    def close(self) -> None:
        """Send ``bye`` (best effort) and release the socket (idempotent)."""
        if self._sock is None:
            return
        try:
            self._send(protocol.bye_frame())
        except (OSError, ServeClientError):  # pragma: no cover
            pass
        try:
            self._reader.close()
            self._sock.close()
        finally:
            self._sock = None
            self._reader = None

    def __enter__(self) -> "ServeClient":
        self.connect()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- requests --------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        """Round-trip liveness probe; returns the pong payload."""
        request_id = self._request_id()
        self._send(protocol.ping_frame(request_id))
        return self._await_reply(request_id, "pong")

    def stats(self) -> Dict[str, Any]:
        """The server's live counters (requests, hits, dedup, pool)."""
        request_id = self._request_id()
        self._send(protocol.stats_frame(request_id))
        return self._await_reply(request_id, "stats")

    def metrics(self) -> Dict[str, Any]:
        """The server's full metrics-registry snapshot (the frame
        behind ``repro metrics`` and ``repro top``)."""
        request_id = self._request_id()
        self._send(protocol.metrics_frame(request_id))
        return self._await_reply(request_id, "metrics")

    def submit(
        self,
        spec: Optional[Dict[str, Any]] = None,
        scenario: Optional[str] = None,
        stream: bool = False,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> SubmitResult:
        """Submit one ScenarioSpec-shaped request and await its result.

        Pass a full spec dict (``ScenarioSpec.to_dict`` shape) or the
        name of a scenario registered on the server. With ``stream``
        set, job-lifecycle telemetry events arrive as they happen and
        are handed to ``on_event``.
        """
        request_id = self._request_id()
        self._send(protocol.submit_frame(
            request_id, spec=spec, scenario=scenario,
            stream=stream or on_event is not None,
        ))
        frame = self._await_reply(request_id, "result", on_event=on_event)
        return SubmitResult(frame)

    # -- wire plumbing ---------------------------------------------------

    def _request_id(self) -> str:
        self._next_id += 1
        return f"c{self._next_id}"

    def _send(self, frame: Dict[str, Any]) -> None:
        if self._sock is None:
            self.connect()
        try:
            self._sock.sendall(protocol.encode_frame(frame))
        except OSError as exc:
            raise ServeClientError(
                "transport", f"send failed: {exc}"
            ) from exc

    def _recv(self) -> Dict[str, Any]:
        try:
            line = self._reader.readline()
        except OSError as exc:
            raise ServeClientError(
                "transport", f"receive failed: {exc}"
            ) from exc
        if not line:
            raise ServeClientError(
                "transport", "server closed the connection"
            )
        try:
            return protocol.decode_frame(line)
        except protocol.ProtocolError as exc:
            raise ServeClientError(exc.code, str(exc)) from exc

    def _await_reply(
        self,
        request_id: str,
        terminal: str,
        on_event: Optional[Callable[[Dict[str, Any]], None]] = None,
    ) -> Dict[str, Any]:
        """Read frames until the request's terminal frame arrives.

        Streamed ``event`` frames for this request go to ``on_event``;
        an ``error`` frame for this request raises
        :class:`ServeClientError`.
        """
        while True:
            frame = self._recv()
            kind = frame.get("type")
            frame_id = frame.get("id")
            if kind == "event" and frame_id == request_id:
                if on_event is not None:
                    on_event(frame.get("event", {}))
                continue
            if kind == "error" and frame_id in (request_id, None):
                raise ServeClientError(
                    frame.get("code", "?"), frame.get("message", "")
                )
            if kind == terminal and frame_id == request_id:
                return frame
            # Frames for other requests on a shared connection are not
            # expected from this synchronous client; ignore defensively.
