"""``repro top``: a curses-free ANSI live dashboard over a daemon.

Polls a running ``repro serve`` daemon's ``metrics`` frame at an
interval and renders a single-screen text dashboard: request and job
throughput (as deltas/sec since the last poll), cache hit ratio,
inflight/pending gauges, latency quantiles from the bucketed
histograms, and the pool-rebuild count. Rendering is plain ANSI
(clear-screen + home, no curses, no terminal size games) so it works in
any terminal, over ssh, and inside CI logs; pure functions do all the
formatting, so tests never need a TTY.
"""

import time
from typing import Any, Dict, List, Mapping, Optional

from repro.serve.client import ServeClient, ServeClientError

#: ANSI clear-screen + cursor-home; the whole "live" mechanism.
CLEAR = "\x1b[2J\x1b[H"

#: Counters shown in the throughput block, in display order.
_RATE_ROWS = (
    ("serve.requests", "requests"),
    ("serve.jobs", "jobs"),
    ("serve.cache.hit", "cache hits"),
    ("serve.dedup.shared", "deduped"),
    ("serve.executed", "executed"),
    ("serve.failed", "failed"),
)

#: Latency histograms shown, in display order.
_LATENCY_ROWS = (
    ("serve.request.seconds", "request"),
    ("serve.job.hit.seconds", "job:hit"),
    ("serve.job.dedup.seconds", "job:dedup"),
    ("serve.job.executed.seconds", "job:executed"),
    ("serve.job.failed.seconds", "job:failed"),
)


def _seconds(value: Optional[float]) -> str:
    """A latency in engineer-friendly units (µs/ms/s)."""
    if value is None:
        return "—"
    if value < 1e-3:
        return f"{value * 1e6:.0f}µs"
    if value < 1.0:
        return f"{value * 1e3:.2f}ms"
    return f"{value:.3f}s"


def format_top(
    current: Mapping[str, Any],
    previous: Optional[Mapping[str, Any]] = None,
    elapsed: Optional[float] = None,
) -> str:
    """One dashboard screen from a ``metrics`` frame (and the previous
    poll's frame for deltas). Pure: no I/O, no clock.

    ``current``/``previous`` are metrics *frames* (``server``/``uptime``
    /``run_id`` plus the ``metrics`` snapshot), as returned by
    :meth:`repro.serve.client.ServeClient.metrics`.
    """
    snapshot = current.get("metrics") or {}
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    histograms = snapshot.get("histograms") or {}
    prev_counters = (
        (previous.get("metrics") or {}).get("counters") or {}
    ) if previous else {}

    lines: List[str] = []
    uptime = current.get("uptime")
    lines.append(
        f"repro top — {current.get('server', '?')}"
        + (f" · up {uptime:.0f}s" if isinstance(uptime, (int, float)) else "")
        + (f" · run {current.get('run_id')}" if current.get("run_id") else "")
    )
    requests = counters.get("serve.requests", 0)
    hits = counters.get("serve.cache.hit", 0)
    jobs = counters.get("serve.jobs", 0)
    ratio = f"{hits / jobs:6.1%}" if jobs else "     —"
    lines.append(
        f"inflight {gauges.get('serve.inflight', 0):>4}   "
        f"pending {gauges.get('serve.queue.pending', 0):>4}   "
        f"hit ratio {ratio}   "
        f"pool rebuilds {counters.get('serve.pool.rebuilds', 0)}"
    )
    lines.append("")
    lines.append(f"{'counter':<14} {'total':>10} {'delta':>8} {'per sec':>9}")
    for name, label in _RATE_ROWS:
        total = counters.get(name, 0)
        if previous is not None:
            delta = total - prev_counters.get(name, 0)
            rate = (
                f"{delta / elapsed:9.1f}" if elapsed and elapsed > 0
                else f"{'—':>9}"
            )
            lines.append(f"{label:<14} {total:>10} {delta:>+8} {rate}")
        else:
            lines.append(f"{label:<14} {total:>10} {'—':>8} {'—':>9}")
    lines.append("")
    lines.append(
        f"{'latency':<14} {'count':>8} {'p50':>10} {'p95':>10} "
        f"{'p99':>10} {'max':>10}"
    )
    for name, label in _LATENCY_ROWS:
        hist = histograms.get(name)
        if not hist or not hist.get("count"):
            continue
        lines.append(
            f"{label:<14} {hist['count']:>8} "
            f"{_seconds(hist.get('p50')):>10} "
            f"{_seconds(hist.get('p95')):>10} "
            f"{_seconds(hist.get('p99')):>10} "
            f"{_seconds(hist.get('max')):>10}"
        )
    if not requests and not jobs:
        lines.append("")
        lines.append("(no requests served yet)")
    return "\n".join(lines) + "\n"


def run_top(
    socket_path: Optional[str] = None,
    host: str = "127.0.0.1",
    port: Optional[int] = None,
    interval: float = 2.0,
    count: int = 0,
    stream=None,
    clock=time.monotonic,
    sleep=time.sleep,
) -> int:
    """The polling loop behind ``repro top``.

    Polls every ``interval`` seconds; ``count`` caps the number of
    screens (0 = until interrupted). Returns a process exit code.
    """
    import sys

    out = stream if stream is not None else sys.stdout
    previous: Optional[Dict[str, Any]] = None
    prev_at: Optional[float] = None
    rendered = 0
    try:
        with ServeClient(
            socket_path=socket_path, host=host, port=port, name="repro-top"
        ) as client:
            while True:
                frame = client.metrics()
                now = clock()
                elapsed = now - prev_at if prev_at is not None else None
                screen = format_top(frame, previous, elapsed)
                out.write(CLEAR + screen)
                out.flush()
                previous, prev_at = frame, now
                rendered += 1
                if count and rendered >= count:
                    return 0
                sleep(interval)
    except KeyboardInterrupt:
        out.write("\n")
        return 0
    except ServeClientError as exc:
        print(f"repro top: {exc}", file=sys.stderr)
        return 1
