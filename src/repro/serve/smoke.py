"""The serve-smoke harness behind CI's serve-smoke job.

``python -m repro.serve.smoke`` is self-contained end-to-end coverage
of the daemon as deployed, not as unit-tested:

1. launches ``repro serve`` as a real subprocess on a unix socket,
   with a result store and a telemetry JSONL stream;
2. fires a mixed hit/miss/dedup batch from **4 concurrent client
   processes** (shared specs pre-warmed for hits, shared cold specs for
   cross-client dedup, per-client unique specs for guaranteed misses);
3. checks the daemon's answers are **byte-identical** to direct
   in-process engine runs of the same specs (modulo the ``wall_time``
   measurement — see :func:`repro.serve.service.strip_volatile`);
4. checks streamed job-lifecycle events arrived on a streaming client;
5. shuts down gracefully (SIGTERM) and requires exit code 0;
6. verifies the telemetry stream bookends (``serve_start`` /
   ``serve_end``) and leaves it as the CI artifact.

Exit code 0 means every check passed; any failure raises with a
diagnosable message.
"""

import argparse
import json
import multiprocessing
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, List

from repro.engine.jobs import expand_jobs
from repro.engine.registry import ScenarioSpec
from repro.engine.runner import execute_job
from repro.serve.client import ServeClient
from repro.serve.loadgen import launch_daemon, single_job_spec, stop_daemon
from repro.serve.service import strip_volatile

CLIENTS = 4


def _smoke_client(socket_path, specs, stream, results) -> None:
    """One smoke client process: submit every spec, report stripped
    records and the streamed-event count for verification."""
    events: List[Dict[str, Any]] = []
    with ServeClient(socket_path=socket_path, name="smoke-client") as client:
        out = []
        for spec in specs:
            outcome = client.submit(
                spec=spec,
                stream=stream,
                on_event=events.append if stream else None,
            )
            out.append({
                "spec": spec["name"],
                "records": [strip_volatile(r) for r in outcome.records],
                "executed": outcome.executed,
                "cached": outcome.cached,
                "shared": outcome.shared,
            })
    results.put({"submits": out, "events": len(events), "stream": stream})


def _direct_records(spec_dict: Dict[str, Any]) -> List[Dict[str, Any]]:
    """The ground truth: the same spec run directly through the engine's
    worker entry point, no daemon involved."""
    spec = ScenarioSpec.from_dict(spec_dict)
    return [
        strip_volatile(execute_job(job.to_dict()))
        for job in expand_jobs(spec)
    ]


def run_smoke(artifact_dir: Path) -> Dict[str, Any]:
    artifact_dir.mkdir(parents=True, exist_ok=True)
    telemetry_path = artifact_dir / "serve-telemetry.jsonl"
    # Specs: 2 pre-warmed (hits for everyone), 2 shared-cold (one client
    # computes, the rest dedup onto it), 2 unique per client (misses).
    warm_specs = [single_job_spec(f"smoke-warm-{i}") for i in range(2)]
    shared_specs = [single_job_spec(f"smoke-shared-{i}") for i in range(2)]
    batches = []
    for client_index in range(CLIENTS):
        batch = list(warm_specs) + list(shared_specs)
        batch += [
            single_job_spec(f"smoke-solo-c{client_index}-{i}")
            for i in range(2)
        ]
        batches.append(batch)

    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        socket_path = Path(tmp) / "serve.sock"
        store_path = Path(tmp) / "store.jsonl"
        daemon = launch_daemon(
            socket_path, store_path, workers=2, telemetry=telemetry_path
        )
        try:
            with ServeClient(socket_path=str(socket_path)) as client:
                pong = client.ping()
                assert pong.get("type") == "pong", pong
                for spec in warm_specs:
                    client.submit(spec=spec)
            results: multiprocessing.Queue = multiprocessing.Queue()
            processes = [
                multiprocessing.Process(
                    target=_smoke_client,
                    args=(str(socket_path), batch, index == 0, results),
                )
                for index, batch in enumerate(batches)
            ]
            for process in processes:
                process.start()
            reports = [results.get() for _ in processes]
            for process in processes:
                process.join()
                if process.exitcode != 0:
                    raise RuntimeError(
                        f"smoke client exited {process.exitcode}"
                    )
        finally:
            code = stop_daemon(daemon)
        if code != 0:
            raise RuntimeError(f"daemon did not shut down cleanly: exit {code}")

        # Byte-identical pin: every served answer equals the direct run.
        expected: Dict[str, List[Dict[str, Any]]] = {}
        mismatches = 0
        checked = 0
        for report in reports:
            for submit in report["submits"]:
                name = submit["spec"]
                if name not in expected:
                    expected[name] = _direct_records(
                        single_job_spec(name)
                    )
                checked += 1
                if submit["records"] != expected[name]:
                    mismatches += 1
                    print(
                        f"MISMATCH for {name}:\n"
                        f"  served: {json.dumps(submit['records'], sort_keys=True)[:400]}\n"
                        f"  direct: {json.dumps(expected[name], sort_keys=True)[:400]}",
                        file=sys.stderr,
                    )
        if mismatches:
            raise RuntimeError(
                f"{mismatches}/{checked} served answers differ from "
                "direct engine runs"
            )

        # Accounting: warm specs were all hits; solo specs all executed.
        total = {"executed": 0, "cached": 0, "shared": 0}
        for report in reports:
            for submit in report["submits"]:
                for field in total:
                    total[field] += submit[field]
        hits = total["cached"]
        if hits < CLIENTS * len(warm_specs):
            raise RuntimeError(
                f"expected at least {CLIENTS * len(warm_specs)} cache "
                f"hits, saw {hits}"
            )
        # Shared-cold keys: exactly one client executed each; the rest
        # were served by dedup or (if they arrived later) the cache.
        if total["executed"] > CLIENTS * 2 + len(shared_specs):
            raise RuntimeError(
                f"dedup failed: {total['executed']} executions for "
                f"{CLIENTS * 2 + len(shared_specs)} distinct cold keys"
            )
        streamed = sum(r["events"] for r in reports if r["stream"])
        if streamed == 0:
            raise RuntimeError("streaming client saw no telemetry events")

        # The store holds each key exactly once despite 4 writers.
        keys = [
            json.loads(line)["key"]
            for line in store_path.read_text(encoding="utf-8").splitlines()
            if line.strip()
        ]
        if len(keys) != len(set(keys)):
            raise RuntimeError("store contains duplicate keys")

    kinds = [
        json.loads(line).get("event")
        for line in telemetry_path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    for bookend in ("serve_start", "serve_end"):
        if bookend not in kinds:
            raise RuntimeError(
                f"telemetry stream missing the {bookend!r} bookend"
            )
    return {
        "clients": CLIENTS,
        "submits": checked,
        "executed": total["executed"],
        "cached": total["cached"],
        "shared": total["shared"],
        "streamed_events": streamed,
        "telemetry_events": len(kinds),
        "store_keys": len(keys),
        "artifact": str(telemetry_path),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.smoke",
        description="end-to-end smoke test of the repro serve daemon",
    )
    parser.add_argument(
        "--artifact-dir",
        default="serve-smoke-artifacts",
        help="where to leave the daemon's telemetry stream "
        "(default: serve-smoke-artifacts/)",
    )
    args = parser.parse_args(argv)
    summary = run_smoke(Path(args.artifact_dir))
    print("serve-smoke: all checks passed")
    for key, value in summary.items():
        print(f"  {key:16s} {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
