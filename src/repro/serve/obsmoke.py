"""The observability-smoke harness behind CI's observability-smoke job.

``python -m repro.serve.obsmoke`` exercises the operator-facing
observability surface end-to-end, against a real daemon, through the
real CLI entry points — the way an operator would:

1. launches ``repro serve`` as a subprocess on a unix socket with the
   telemetry stream *and* the flight recorder attached;
2. drives a known request mix (3 distinct cold submits, then 2 warm
   re-submits) so every counter has one exact right answer;
3. scrapes ``repro metrics --json`` and ``--prom`` as subprocesses and
   checks the counters, the latency-histogram counts, and the
   Prometheus exposition shape against that mix;
4. renders two screens of ``repro top`` and requires a clean exit;
5. SIGTERM-drains the daemon, requires exit 0, and checks the drain
   flight dump is readable and ends with the final metrics snapshot
   and the ``run_end`` bookend (``repro flight show`` must render it);
6. renders the HTML run report from the captured telemetry stream.

Everything it writes (telemetry stream, flight dumps, metrics scrapes,
the HTML report) lands in the artifact directory for CI upload. Exit
code 0 means every check passed.
"""

import argparse
import json
import shutil
import subprocess
import sys
import tempfile
from pathlib import Path
from typing import Any, Dict, List

from repro.serve.client import ServeClient
from repro.serve.loadgen import (
    daemon_env,
    launch_daemon,
    single_job_spec,
    stop_daemon,
)
from repro.telemetry import latest_dump, read_events

#: The known request mix: COLD distinct cold submits, the first WARM of
#: them re-submitted once each. Everything below asserts against these.
COLD = 3
WARM = 2

#: Counters the mix pins exactly (requests = COLD + WARM, each cold
#: submit executes and persists one job, each warm one is a cache hit).
EXPECTED_COUNTERS = {
    "serve.requests": COLD + WARM,
    "serve.jobs": COLD + WARM,
    "serve.executed": COLD,
    "serve.cache.hit": WARM,
    "serve.store.rows_written": COLD,
}


def _cli(arguments: List[str], timeout: float = 60.0) -> subprocess.CompletedProcess:
    """Run one ``repro`` CLI subcommand the way an operator would."""
    return subprocess.run(
        [sys.executable, "-m", "repro", *arguments],
        env=daemon_env(),
        capture_output=True,
        text=True,
        timeout=timeout,
    )


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise RuntimeError(message)


def _check_metrics_json(raw: str) -> Dict[str, Any]:
    snapshot = json.loads(raw)
    counters = snapshot.get("counters", {})
    for name, expected in EXPECTED_COUNTERS.items():
        _check(
            counters.get(name) == expected,
            f"counter {name}: expected {expected}, scraped {counters.get(name)}",
        )
    histograms = snapshot.get("histograms", {})
    for name, expected in (
        ("serve.request.seconds", COLD + WARM),
        ("serve.job.executed.seconds", COLD),
        ("serve.job.hit.seconds", WARM),
    ):
        count = (histograms.get(name) or {}).get("count")
        _check(
            count == expected,
            f"histogram {name}: expected count {expected}, scraped {count}",
        )
    return snapshot


def _check_metrics_prom(text: str) -> None:
    total = COLD + WARM
    for needle in (
        "# TYPE repro_serve_requests_total counter",
        f"repro_serve_requests_total {total}",
        "# TYPE repro_serve_request_seconds histogram",
        f'repro_serve_request_seconds_bucket{{le="+Inf"}} {total}',
        f"repro_serve_request_seconds_count {total}",
        "# TYPE repro_serve_request_seconds_p99 gauge",
        "# TYPE repro_serve_inflight gauge",
    ):
        _check(needle in text, f"prometheus exposition missing {needle!r}")


def _check_flight_dump(flight_dir: Path) -> Path:
    dump = latest_dump(flight_dir)
    _check(dump is not None, f"no flight dump written under {flight_dir}")
    _check("drain" in dump.name, f"expected a drain dump, got {dump.name}")
    kinds = [event.get("event") for event in read_events(dump)]
    _check(bool(kinds), f"flight dump {dump.name} is empty")
    for bookend in ("serve_end", "metrics", "run_end"):
        _check(
            bookend in kinds[-4:],
            f"flight dump tail {kinds[-4:]} lacks {bookend!r}",
        )
    shown = _cli(["flight", "show", str(flight_dir), "--last", "5"])
    _check(
        shown.returncode == 0 and "run_end" in shown.stdout,
        f"repro flight show failed: rc={shown.returncode}\n{shown.stderr}",
    )
    return dump


def run_obsmoke(artifact_dir: Path) -> Dict[str, Any]:
    artifact_dir.mkdir(parents=True, exist_ok=True)
    telemetry_path = artifact_dir / "obs-telemetry.jsonl"
    flight_dir = artifact_dir / "flight"

    with tempfile.TemporaryDirectory(prefix="repro-obsmoke-") as tmp:
        socket_path = Path(tmp) / "serve.sock"
        store_path = Path(tmp) / "store.jsonl"
        daemon = launch_daemon(
            socket_path,
            store_path,
            workers=2,
            telemetry=telemetry_path,
            extra_args=("--quiet", "--flight-dir", str(flight_dir)),
        )
        try:
            # 2. The known mix: 3 cold submits, 2 warm re-submits.
            with ServeClient(socket_path=str(socket_path)) as client:
                specs = [single_job_spec(f"obsmoke-{i}") for i in range(COLD)]
                for spec in specs:
                    outcome = client.submit(spec=spec)
                    _check(
                        outcome.executed == 1,
                        f"cold submit of {spec['name']} was not executed",
                    )
                for spec in specs[:WARM]:
                    outcome = client.submit(spec=spec)
                    _check(
                        outcome.cached == 1,
                        f"warm submit of {spec['name']} was not a cache hit",
                    )

            # 3. Scrape the metrics frame through the real CLI.
            scraped_json = _cli(["metrics", "--socket", str(socket_path), "--json"])
            _check(
                scraped_json.returncode == 0,
                f"repro metrics --json failed: {scraped_json.stderr}",
            )
            (artifact_dir / "metrics.json").write_text(scraped_json.stdout)
            snapshot = _check_metrics_json(scraped_json.stdout)

            scraped_prom = _cli(["metrics", "--socket", str(socket_path), "--prom"])
            _check(
                scraped_prom.returncode == 0,
                f"repro metrics --prom failed: {scraped_prom.stderr}",
            )
            (artifact_dir / "metrics.prom").write_text(scraped_prom.stdout)
            _check_metrics_prom(scraped_prom.stdout)

            # 4. Two screens of the dashboard, then a clean exit.
            top = _cli(
                ["top", "--socket", str(socket_path),
                 "--count", "2", "--interval", "0.2"],
            )
            _check(
                top.returncode == 0,
                f"repro top exited {top.returncode}: {top.stderr}",
            )
            _check("hit ratio" in top.stdout, "repro top screen lacks the gauges line")
        finally:
            code = stop_daemon(daemon)
        _check(code == 0, f"daemon did not shut down cleanly: exit {code}")

    # 5. The SIGTERM drain must have left a readable flight dump.
    dump = _check_flight_dump(flight_dir)

    # 6. The HTML report renders from the captured stream.
    report_path = artifact_dir / "report.html"
    report = _cli(
        ["report", "--html", str(report_path), "--events", str(telemetry_path)]
    )
    _check(
        report.returncode == 0 and report_path.exists(),
        f"repro report --html failed: rc={report.returncode}\n{report.stderr}",
    )
    html = report_path.read_text(encoding="utf-8")
    _check("<!doctype html>" in html.lower(), "report is not a full HTML page")

    return {
        "requests": COLD + WARM,
        "executed": EXPECTED_COUNTERS["serve.executed"],
        "cache_hits": EXPECTED_COUNTERS["serve.cache.hit"],
        "histograms": len(snapshot.get("histograms", {})),
        "flight_dump": str(dump),
        "report": str(report_path),
        "artifact_dir": str(artifact_dir),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.serve.obsmoke",
        description="end-to-end smoke test of the observability surface",
    )
    parser.add_argument(
        "--artifact-dir",
        default="obs-smoke-artifacts",
        help="where to leave telemetry, flight dumps, scrapes, and the "
        "HTML report (default: obs-smoke-artifacts/)",
    )
    args = parser.parse_args(argv)
    artifact_dir = Path(args.artifact_dir)
    if artifact_dir.exists():
        shutil.rmtree(artifact_dir)
    summary = run_obsmoke(artifact_dir)
    print("obs-smoke: all checks passed")
    for key, value in summary.items():
        print(f"  {key:16s} {value}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
