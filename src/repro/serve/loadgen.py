"""Load generation against a ``repro serve`` daemon.

Shared by three consumers so they measure the same thing the same way:

* ``benchmarks/bench_e19_serve.py`` — the committed load benchmark
  (``BENCH_serve.json``: requests/sec at 0/50/100% cache-hit ratios,
  1 vs 8 concurrent clients, and the warm-hit vs cold-CLI latency gap);
* ``benchmarks/bench_e20_observe.py`` — the observability-overhead
  benchmark (``BENCH_observe.json``: warm-hit latency through an
  instrumented vs a detached daemon);
* the ``repro bench check`` gate's ``e19-serve`` and ``e20-observe``
  drivers, which re-measure committed entries;
* ``repro.serve.smoke`` and ``repro.serve.obsmoke`` (the CI smoke
  jobs), which reuse the daemon-launching and spec-building helpers.

Measurement design (determinism first): each request is a
**single-job** ScenarioSpec over a tiny fixed workload; the scenario
*name* carries a per-request suffix, and since the name is part of the
job identity, every distinct name is a distinct cache key. Warm
requests reuse names that were pre-submitted once (guaranteed hits —
the cache only grows), miss requests use names unique to one client
(guaranteed misses, no cross-client dedup races), so the ``hits``
column of every entry is exact and reproducible — the bench gate
compares it like the engine benches compare rounds.
"""

import json
import multiprocessing
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

import repro
from repro.serve.client import ServeClient, ServeClientError

#: The tiny per-request workload: one moat-growing job on G(12, 0.35).
#: Small enough that a miss costs ~1 ms of solver time — the benchmark
#: measures the *serving* layer, not the solver.
DEFAULT_WORKLOAD: Dict[str, Any] = {
    "family": "gnp",
    "n": 12,
    "p": 0.35,
    "k": 2,
    "component_size": 2,
    "algorithm": "moat",
}


def single_job_spec(name: str, workload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """A ScenarioSpec dict that expands to exactly one job."""
    w = dict(DEFAULT_WORKLOAD, **(workload or {}))
    return {
        "name": name,
        "family": w["family"],
        "algorithms": [w["algorithm"]],
        "grid": {
            key: w[key]
            for key in w
            if key not in ("family", "algorithm")
        },
        "seeds": 1,
    }


# -- daemon lifecycle ----------------------------------------------------

def daemon_env() -> Dict[str, str]:
    """A child environment whose PYTHONPATH can import this repro."""
    src_dir = str(Path(repro.__file__).resolve().parent.parent)
    env = dict(os.environ)
    existing = env.get("PYTHONPATH", "")
    if src_dir not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_dir + (os.pathsep + existing if existing else "")
        )
    return env


def launch_daemon(
    socket_path: Any,
    store_path: Optional[Any],
    workers: int = 2,
    telemetry: Optional[Any] = None,
    extra_args: Tuple[str, ...] = (),
    timeout: float = 30.0,
) -> subprocess.Popen:
    """Start ``repro serve`` as a subprocess and wait until it answers
    a ping; returns the process handle (terminate with
    :func:`stop_daemon`)."""
    command = [
        sys.executable, "-m", "repro", "serve",
        "--socket", str(socket_path),
        "--workers", str(workers),
    ]
    if store_path is None:
        command.append("--no-store")
    else:
        command += ["--store", str(store_path)]
    if telemetry is not None:
        command += ["--telemetry", str(telemetry)]
    command += list(extra_args)
    process = subprocess.Popen(
        command,
        env=daemon_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if process.poll() is not None:
            raise RuntimeError(
                f"daemon exited with {process.returncode} before listening"
            )
        try:
            with ServeClient(socket_path=str(socket_path), timeout=5.0) as client:
                client.ping()
            return process
        except ServeClientError:
            time.sleep(0.05)
    process.terminate()
    raise RuntimeError(f"daemon not answering pings after {timeout}s")


def stop_daemon(process: subprocess.Popen, timeout: float = 30.0) -> int:
    """Graceful SIGTERM shutdown; returns the exit code."""
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(timeout=timeout)
        except subprocess.TimeoutExpired:  # pragma: no cover - safety net
            process.kill()
            process.wait(timeout=timeout)
    return process.returncode


# -- client fleet --------------------------------------------------------

def _client_worker(socket_path, specs, barrier, results) -> None:
    """One benchmark client process: connect, sync on the barrier, fire
    every request sequentially, report totals."""
    with ServeClient(socket_path=socket_path, name="bench-client") as client:
        barrier.wait()
        executed = cached = shared = 0
        for spec in specs:
            outcome = client.submit(spec=spec)
            executed += outcome.executed
            cached += outcome.cached
            shared += outcome.shared
        results.put({"executed": executed, "cached": cached, "shared": shared})


def run_clients(
    socket_path: Any, per_client_specs: List[List[Dict[str, Any]]]
) -> Tuple[float, Dict[str, int]]:
    """Run one spec list per client process; returns (wall seconds of
    the request phase, summed serve-side accounting).

    All clients connect first and rendezvous on a barrier the parent
    also joins, so the timed window covers requests only — not process
    spawn or connection setup.
    """
    barrier = multiprocessing.Barrier(len(per_client_specs) + 1)
    results: multiprocessing.Queue = multiprocessing.Queue()
    processes = [
        multiprocessing.Process(
            target=_client_worker,
            args=(str(socket_path), specs, barrier, results),
        )
        for specs in per_client_specs
    ]
    for process in processes:
        process.start()
    barrier.wait()
    started = time.perf_counter()
    totals = {"executed": 0, "cached": 0, "shared": 0}
    for _ in processes:
        for key, value in results.get().items():
            totals[key] += value
    elapsed = time.perf_counter() - started
    for process in processes:
        process.join()
        if process.exitcode != 0:
            raise RuntimeError(f"benchmark client exited {process.exitcode}")
    return elapsed, totals


# -- one benchmark configuration ----------------------------------------

def config_label(hit_pct: int, clients: int) -> str:
    """The entry label encoding a configuration, e.g. ``hit50-c8``."""
    return f"hit{hit_pct}-c{clients}"


def parse_label(label: str) -> Tuple[int, int]:
    """Inverse of :func:`config_label` (used by the bench-check gate)."""
    hit_part, client_part = label.split("-c", 1)
    if not hit_part.startswith("hit"):
        raise ValueError(f"unparseable serve config label {label!r}")
    return int(hit_part[3:]), int(client_part)


def measure_config(
    workload: Dict[str, Any],
    per_client: int,
    label: str,
    nonce: str = "",
    daemon_workers: int = 2,
) -> Dict[str, Any]:
    """Measure one (hit-ratio × client-count) configuration against a
    fresh daemon; returns a BENCH_serve entry.

    ``nonce`` namespaces the request scenario names (pass something
    run-unique when sharing a store across measurements; a fresh
    temp store — the default here — doesn't need it).
    """
    hit_pct, clients = parse_label(label)
    warm_count = (per_client * hit_pct) // 100
    miss_count = per_client - warm_count
    warm_specs = [
        single_job_spec(f"warm{nonce}-{index}", workload)
        for index in range(warm_count)
    ]
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        socket_path = Path(tmp) / "serve.sock"
        store_path = Path(tmp) / "store.jsonl"
        daemon = launch_daemon(
            socket_path, store_path, workers=daemon_workers
        )
        try:
            if warm_specs:
                with ServeClient(socket_path=str(socket_path)) as client:
                    for spec in warm_specs:
                        client.submit(spec=spec)
            per_client_specs = []
            for client_index in range(clients):
                specs = list(warm_specs)
                specs += [
                    single_job_spec(
                        f"miss{nonce}-c{client_index}-{index}", workload
                    )
                    for index in range(miss_count)
                ]
                per_client_specs.append(specs)
            elapsed, totals = run_clients(socket_path, per_client_specs)
        finally:
            stop_daemon(daemon)
    requests = clients * per_client
    return {
        "n": per_client,
        "backend": label,
        "seconds": elapsed,
        "requests": requests,
        "hits": totals["cached"],
        "executed": totals["executed"],
        "shared": totals["shared"],
        "rps": requests / elapsed if elapsed > 0 else 0.0,
    }


# -- observability overhead (E20) ---------------------------------------

#: The two daemon configurations E20 compares. ``instrumented`` is the
#: recommended production setup (JSONL telemetry stream + flight
#: recorder attached); ``detached`` runs the same daemon with no sinks
#: at all (``--no-flight`` and no ``--telemetry``) — the metrics
#: registry itself is always on, so the delta is the cost of event
#: fan-out and durable sinks, which is exactly the overhead the
#: observability layer is allowed to add.
OBSERVE_MODES = ("instrumented", "detached")


def observe_extra_args(mode: str, tmp: Any) -> Tuple[str, ...]:
    """Extra ``repro serve`` flags for one E20 daemon configuration."""
    if mode == "instrumented":
        return (
            "--quiet",
            "--telemetry", str(Path(tmp) / "telemetry.jsonl"),
            "--flight-dir", str(Path(tmp) / "flight"),
        )
    if mode == "detached":
        return ("--quiet", "--no-flight")
    raise ValueError(f"unknown observe mode {mode!r}")


def measure_observe(
    workload: Dict[str, Any],
    requests: int,
    mode: str,
    daemon_workers: int = 1,
) -> Dict[str, Any]:
    """Measure warm-hit request latency through one daemon mode.

    One probe spec is pre-submitted once (computing and caching it),
    then ``requests`` identical submits are timed — every one a
    guaranteed cache hit, so the ``requests`` and ``hits`` columns are
    exact and the gate can compare them like the engine benches compare
    rounds. Returns a BENCH_observe entry.
    """
    spec = single_job_spec("observe-probe", workload)
    with tempfile.TemporaryDirectory(prefix="repro-serve-obs-") as tmp:
        socket_path = Path(tmp) / "serve.sock"
        store_path = Path(tmp) / "store.jsonl"
        daemon = launch_daemon(
            socket_path,
            store_path,
            workers=daemon_workers,
            extra_args=observe_extra_args(mode, tmp),
        )
        try:
            with ServeClient(socket_path=str(socket_path)) as client:
                client.submit(spec=spec)  # compute once; now a warm hit
                hits = 0
                started = time.perf_counter()
                for _ in range(requests):
                    outcome = client.submit(spec=spec)
                    hits += outcome.cached
                elapsed = time.perf_counter() - started
        finally:
            stop_daemon(daemon)
    return {
        "n": requests,
        "backend": mode,
        "seconds": elapsed,
        "requests": requests,
        "hits": hits,
        "rps": requests / elapsed if elapsed > 0 else 0.0,
    }


# -- warm-hit vs cold-CLI latency ---------------------------------------

def measure_latency(
    workload: Dict[str, Any], repeats: int = 10
) -> Dict[str, float]:
    """The headline comparison: the same cached single-job request
    served by the warm daemon vs a cold ``repro batch`` CLI process.

    Both paths answer from the cache; the CLI pays a fresh interpreter
    and imports every time — exactly what the daemon amortizes.
    """
    spec = single_job_spec("latency-probe", workload)
    with tempfile.TemporaryDirectory(prefix="repro-serve-lat-") as tmp:
        socket_path = Path(tmp) / "serve.sock"
        store_path = Path(tmp) / "store.jsonl"
        spec_file = Path(tmp) / "spec.json"
        spec_file.write_text(json.dumps(spec), encoding="utf-8")
        daemon = launch_daemon(socket_path, store_path, workers=1)
        try:
            with ServeClient(socket_path=str(socket_path)) as client:
                client.submit(spec=spec)  # compute once; now a warm hit
                warm = []
                for _ in range(repeats):
                    started = time.perf_counter()
                    outcome = client.submit(spec=spec)
                    warm.append(time.perf_counter() - started)
                    assert outcome.cached == 1
        finally:
            stop_daemon(daemon)
        command = [
            sys.executable, "-m", "repro", "batch", str(spec_file),
            "--store", str(store_path), "--serial", "--quiet",
        ]
        cold = []
        for _ in range(max(3, min(repeats, 5))):
            started = time.perf_counter()
            subprocess.run(
                command,
                env=daemon_env(),
                check=True,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
            cold.append(time.perf_counter() - started)
    warm_seconds = sorted(warm)[len(warm) // 2]
    cold_seconds = min(cold)
    return {
        "warm_hit_seconds": warm_seconds,
        "cold_cli_seconds": cold_seconds,
        "speedup": cold_seconds / warm_seconds if warm_seconds > 0 else 0.0,
    }
