"""Exact minimum Steiner tree via the Dreyfus–Wagner dynamic program.

``dp[S][v]`` is the minimum weight of a tree that spans terminal subset ``S``
plus the node ``v``. The recurrence alternates subset merges at a common
node with shortest-path relaxations:

    dp[S][v] = min( min_{∅≠T⊊S} dp[T][v] + dp[S∖T][v],
                    min_u dp[S][u] + wd(u, v) )

Runtime is O(3^t · n + 2^t · n²) for ``t`` terminals, practical up to about
t = 12 on the instance sizes used by the benchmark harness.
"""

import heapq
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.model.graph import Edge, Node, WeightedGraph, canonical_edge


def steiner_tree_cost(
    graph: WeightedGraph, terminals: Iterable[Node]
) -> int:
    """Exact minimum weight of a Steiner tree spanning ``terminals``."""
    cost, _ = _dreyfus_wagner(graph, list(terminals), reconstruct=False)
    return cost


def steiner_tree_edges(
    graph: WeightedGraph, terminals: Iterable[Node]
) -> FrozenSet[Edge]:
    """An optimal Steiner tree's edge set (any optimum; deterministic)."""
    _, edges = _dreyfus_wagner(graph, list(terminals), reconstruct=True)
    assert edges is not None
    return edges


def _dreyfus_wagner(
    graph: WeightedGraph,
    terminals: Sequence[Node],
    reconstruct: bool,
) -> Tuple[int, Optional[FrozenSet[Edge]]]:
    terminals = sorted(set(terminals), key=repr)
    if len(terminals) <= 1:
        return 0, frozenset()
    apd = graph.all_pairs_distances()
    nodes = graph.nodes
    t = len(terminals)
    full = (1 << t) - 1

    # dp[mask] : dict node -> cost ; choice[(mask, v)] records how the value
    # was attained for reconstruction.
    dp: List[Dict[Node, int]] = [dict() for _ in range(full + 1)]
    choice: Dict[Tuple[int, Node], Tuple[str, object]] = {}

    for i, term in enumerate(terminals):
        mask = 1 << i
        for v in nodes:
            dp[mask][v] = apd[term][v]
            if reconstruct:
                choice[(mask, v)] = ("path", term)

    for mask in range(1, full + 1):
        if mask & (mask - 1) == 0:
            continue  # singletons initialized above
        table = dp[mask]
        # Merge step: split mask into sub ∪ (mask ∖ sub) at each node.
        sub = (mask - 1) & mask
        while sub:
            if sub < (mask ^ sub):  # enumerate each split once
                other = mask ^ sub
                d_sub, d_other = dp[sub], dp[other]
                for v in nodes:
                    cand = d_sub[v] + d_other[v]
                    if v not in table or cand < table[v]:
                        table[v] = cand
                        if reconstruct:
                            choice[(mask, v)] = ("merge", sub)
            sub = (sub - 1) & mask
        # Relax step: Dijkstra from all nodes with their current values.
        heap = [(c, repr(v), v) for v, c in table.items()]
        heapq.heapify(heap)
        settled: Set[Node] = set()
        while heap:
            c, _, u = heapq.heappop(heap)
            if u in settled or table.get(u, c + 1) < c:
                continue
            settled.add(u)
            for v in graph.neighbors(u):
                cand = c + graph.weight(u, v)
                if v not in table or cand < table[v]:
                    table[v] = cand
                    if reconstruct:
                        choice[(mask, v)] = ("edge", u)
                    heapq.heappush(heap, (cand, repr(v), v))

    root = terminals[0]
    best_cost = dp[full][root]
    if not reconstruct:
        return best_cost, None

    # Reconstruction: unwind the (mask, node) choices.
    edges: Set[Edge] = set()
    stack: List[Tuple[int, Node]] = [(full, root)]
    while stack:
        mask, v = stack.pop()
        if mask == 0:
            continue
        kind, data = choice[(mask, v)]
        if kind == "path":
            path = graph.shortest_path(data, v)  # type: ignore[arg-type]
            edges.update(
                canonical_edge(a, b) for a, b in zip(path, path[1:])
            )
        elif kind == "merge":
            sub = int(data)  # type: ignore[call-overload]
            stack.append((sub, v))
            stack.append((mask ^ sub, v))
        else:  # kind == "edge"
            u = data
            edges.add(canonical_edge(u, v))  # type: ignore[arg-type]
            stack.append((mask, u))  # type: ignore[arg-type]
    return best_cost, frozenset(edges)
