"""Exact (exponential-time) reference solvers.

The paper's guarantees are multiplicative approximation factors against the
optimal Steiner forest. These solvers compute that optimum exactly on small
instances so the benchmark harness can report measured ratios:

* :func:`steiner_tree_cost` — Dreyfus–Wagner dynamic program, exact minimum
  Steiner tree for a terminal set (O(3^t · n) time).
* :func:`steiner_forest_cost` — exact Steiner forest via minimization over
  partitions of the input components into connected groups.
* :func:`brute_force_forest_cost` — subset enumeration cross-check for tiny
  graphs.
"""

from repro.exact.steiner_tree import steiner_tree_cost, steiner_tree_edges
from repro.exact.steiner_forest import (
    brute_force_forest_cost,
    steiner_forest_cost,
)

__all__ = [
    "steiner_tree_cost",
    "steiner_tree_edges",
    "steiner_forest_cost",
    "brute_force_forest_cost",
]
