"""Exact minimum Steiner forest on small instances.

Any feasible forest's connected components induce a partition of the input
components into groups; restricted to one group, the forest contains a
Steiner tree spanning the group's terminals. Conversely, taking an optimal
Steiner tree per group of any partition is feasible. Hence

    OPT(instance) = min over partitions P of Λ
                    Σ_{block B ∈ P} SteinerTree(∪_{λ ∈ B} C_λ)

which this module evaluates with the Dreyfus–Wagner solver per block. The
number of set partitions (Bell number) limits this to about k ≤ 8 input
components, far beyond what ratio measurements need.
"""

from itertools import combinations
from typing import FrozenSet, Iterator, List, Sequence, Set

from repro.exact.steiner_tree import steiner_tree_cost
from repro.model.graph import Edge, Node
from repro.model.instance import SteinerForestInstance
from repro.util import UnionFind


def _set_partitions(items: Sequence) -> Iterator[List[List]]:
    """Enumerate all partitions of ``items`` into non-empty blocks."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        # first joins an existing block …
        for i in range(len(partition)):
            yield partition[:i] + [[first] + partition[i]] + partition[i + 1:]
        # … or forms its own block.
        yield [[first]] + partition


def steiner_forest_cost(instance: SteinerForestInstance) -> int:
    """Exact optimal Steiner forest weight via partition enumeration."""
    components = {
        label: nodes
        for label, nodes in instance.components.items()
        if len(nodes) >= 2
    }
    labels = sorted(components, key=repr)
    if not labels:
        return 0
    graph = instance.graph
    best = None
    for partition in _set_partitions(labels):
        total = 0
        for block in partition:
            terminals: Set[Node] = set()
            for label in block:
                terminals |= components[label]
            total += steiner_tree_cost(graph, terminals)
            if best is not None and total >= best:
                break
        else:
            if best is None or total < best:
                best = total
    assert best is not None
    return best


def brute_force_forest_cost(
    instance: SteinerForestInstance, max_edges: int = 20
) -> int:
    """Exact optimum by enumerating edge subsets (cross-check only).

    Only spanning-forest candidates matter, but plain subset enumeration is
    simple and adequate for the ≤ ``max_edges``-edge graphs this guards.
    """
    graph = instance.graph
    edges = [(u, v) for u, v, _ in graph.edges()]
    if len(edges) > max_edges:
        raise ValueError(
            f"graph has {len(edges)} edges; brute force capped at {max_edges}"
        )
    demands = instance.component_pairs()
    if not demands:
        return 0
    best = None
    for size in range(len(edges) + 1):
        for subset in combinations(edges, size):
            uf = UnionFind(graph.nodes)
            weight = 0
            for u, v in subset:
                uf.union(u, v)
                weight += graph.weight(u, v)
            if best is not None and weight >= best:
                continue
            if all(uf.connected(u, v) for u, v in demands):
                best = weight if best is None else min(best, weight)
    assert best is not None
    return best


def optimal_forest_edges(instance: SteinerForestInstance) -> FrozenSet[Edge]:
    """An optimal Steiner forest edge set (uses the partition enumeration
    and Dreyfus–Wagner reconstruction per block)."""
    from repro.exact.steiner_tree import steiner_tree_edges

    components = {
        label: nodes
        for label, nodes in instance.components.items()
        if len(nodes) >= 2
    }
    labels = sorted(components, key=repr)
    if not labels:
        return frozenset()
    graph = instance.graph
    best_cost = None
    best_edges: FrozenSet[Edge] = frozenset()
    for partition in _set_partitions(labels):
        all_edges: Set[Edge] = set()
        for block in partition:
            terminals: Set[Node] = set()
            for label in block:
                terminals |= components[label]
            all_edges |= steiner_tree_edges(graph, terminals)
        cost = graph.edge_weight_sum(all_edges)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_edges = frozenset(all_edges)
    return best_edges
