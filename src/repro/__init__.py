"""repro — a reproduction of "Improved Distributed Steiner Forest
Construction" (Lenzen & Patt-Shamir, PODC 2014).

The library implements the paper's algorithms on a CONGEST-model simulator:

* the deterministic (2+ε)-approximation by distributed moat growing
  (:func:`repro.core.distributed_moat_growing`,
  :func:`repro.core.sublinear_moat_growing`),
* the randomized O(log n)-approximation in Õ(k + min{s, √n} + D) rounds
  (:func:`repro.randomized.randomized_steiner_forest`),
* the baselines it improves upon (:mod:`repro.baselines`),
* the Section 3 lower-bound gadgets (:mod:`repro.lowerbounds`),
* exact reference solvers for ratio measurements (:mod:`repro.exact`),
* pluggable network conditions — loss, crash-stop, bounded delay,
  bandwidth caps — plus message tracing for the node-program simulator
  (:mod:`repro.netmodel`).

Quickstart::

    import random
    from repro.workloads import random_instance
    from repro.core import distributed_moat_growing

    instance = random_instance(n=30, k=3, rng=random.Random(0))
    result = distributed_moat_growing(instance)
    print(result.solution.weight, result.rounds)
"""

from repro.model import (
    Ball,
    ConnectionRequestInstance,
    ForestSolution,
    SteinerForestInstance,
    WeightedGraph,
)
from repro.congest import CongestRun
from repro.core import (
    distributed_moat_growing,
    fast_pruning,
    moat_growing,
    rounded_moat_growing,
    sublinear_moat_growing,
)
from repro.randomized import randomized_steiner_forest

__version__ = "1.0.0"

__all__ = [
    "WeightedGraph",
    "SteinerForestInstance",
    "ConnectionRequestInstance",
    "ForestSolution",
    "Ball",
    "CongestRun",
    "moat_growing",
    "rounded_moat_growing",
    "distributed_moat_growing",
    "sublinear_moat_growing",
    "fast_pruning",
    "randomized_steiner_forest",
    "__version__",
]
