"""The Figure 1 reduction graphs and the Lemma 3.4 path gadget."""

import random
from typing import AbstractSet, Dict, FrozenSet, List, Set, Tuple

from repro.model.graph import Edge, WeightedGraph, canonical_edge
from repro.model.instance import (
    ConnectionRequestInstance,
    SteinerForestInstance,
)


class CrGadget:
    """The DSF-CR reduction instance of Lemma 3.1 (Figure 1, left).

    Attributes:
        instance: the DSF-CR instance.
        cut_edges: the four Alice–Bob edges E_AB (the communication cut).
        heavy_edges: the two edges of weight W = ρ(2n+2)+1; a feasible
            ρ-approximation avoids them iff A ∩ B = ∅.
        intersecting: whether A ∩ B ≠ ∅.
    """

    def __init__(
        self,
        instance: ConnectionRequestInstance,
        cut_edges: FrozenSet[Edge],
        heavy_edges: FrozenSet[Edge],
        intersecting: bool,
    ) -> None:
        self.instance = instance
        self.cut_edges = cut_edges
        self.heavy_edges = heavy_edges
        self.intersecting = intersecting


class IcGadget:
    """The DSF-IC reduction instance of Lemma 3.3 (Figure 1, right).

    ``bridge`` is the (a₀, b₀) edge that any feasible output must contain
    iff A ∩ B ≠ ∅.
    """

    def __init__(
        self,
        instance: SteinerForestInstance,
        cut_edges: FrozenSet[Edge],
        bridge: Edge,
        intersecting: bool,
    ) -> None:
        self.instance = instance
        self.cut_edges = cut_edges
        self.bridge = bridge
        self.intersecting = intersecting


def dsf_cr_gadget(
    universe: int,
    set_a: AbstractSet[int],
    set_b: AbstractSet[int],
    rho: int = 2,
) -> CrGadget:
    """Build the Lemma 3.1 gadget for sets A, B ⊆ {1..universe}.

    Alice's side: a₀ connects to elements of A, a₋₁ to the complement;
    Bob's side symmetric; the sides are joined by the four-edge cut
    {(a₀,b₀), (a₋₁,b₋₁), (a₀,b₋₁), (a₋₁,b₀)} of which the first two carry
    the heavy weight W = ρ(2n+2)+1. Requests pair aᵢ with bᵢ for i ∈ A
    (and symmetrically for B).
    """
    n = universe
    heavy_weight = rho * (2 * n + 2) + 1

    def a(i: int) -> str:
        return f"a{i}"

    def b(i: int) -> str:
        return f"b{i}"

    nodes = (
        [a(-1), a(0), b(-1), b(0)]
        + [a(i) for i in range(1, n + 1)]
        + [b(i) for i in range(1, n + 1)]
    )
    edges: List[Tuple[str, str, int]] = []
    for i in range(1, n + 1):
        edges.append((a(0) if i in set_a else a(-1), a(i), 1))
        edges.append((b(0) if i in set_b else b(-1), b(i), 1))
    cut = [
        (a(0), b(0), heavy_weight),
        (a(-1), b(-1), heavy_weight),
        (a(0), b(-1), 1),
        (a(-1), b(0), 1),
    ]
    edges.extend(cut)
    graph = WeightedGraph(nodes, edges)

    requests: Dict[str, Set[str]] = {}
    for i in sorted(set_a):
        requests.setdefault(a(i), set()).add(b(i))
    for i in sorted(set_b):
        requests.setdefault(b(i), set()).add(a(i))
    instance = ConnectionRequestInstance(graph, requests)
    return CrGadget(
        instance,
        frozenset(canonical_edge(u, v) for u, v, _ in cut),
        frozenset(
            {
                canonical_edge(a(0), b(0)),
                canonical_edge(a(-1), b(-1)),
            }
        ),
        bool(set(set_a) & set(set_b)),
    )


def dsf_ic_gadget(
    universe: int,
    set_a: AbstractSet[int],
    set_b: AbstractSet[int],
) -> IcGadget:
    """Build the Lemma 3.3 gadget: two unit-weight stars joined by (a₀,b₀);
    leaf aᵢ carries label i iff i ∈ A, leaf bᵢ iff i ∈ B."""
    n = universe

    def a(i: int) -> str:
        return f"a{i}"

    def b(i: int) -> str:
        return f"b{i}"

    nodes = [a(0), b(0)] + [a(i) for i in range(1, n + 1)] + [
        b(i) for i in range(1, n + 1)
    ]
    edges = (
        [(a(0), a(i), 1) for i in range(1, n + 1)]
        + [(b(0), b(i), 1) for i in range(1, n + 1)]
        + [(a(0), b(0), 1)]
    )
    graph = WeightedGraph(nodes, edges)
    labels: Dict[str, int] = {}
    for i in sorted(set_a):
        labels[a(i)] = i
    for i in sorted(set_b):
        labels[b(i)] = i
    instance = SteinerForestInstance(graph, labels)
    bridge = canonical_edge(a(0), b(0))
    return IcGadget(
        instance,
        frozenset({bridge}),
        bridge,
        bool(set(set_a) & set(set_b)),
    )


def path_gadget(length: int, star_weight_factor: int = 4) -> SteinerForestInstance:
    """The Lemma 3.4 style instance: t = 2, k = 1, s = ``length``, small D.

    A unit-weight path carries the only least-weight route between the two
    terminal endpoints; a heavy star center keeps the unweighted diameter
    at 2 without offering a competitive weighted shortcut.
    """
    if length < 1:
        raise ValueError("length must be ≥ 1")
    nodes = [f"p{i}" for i in range(length + 1)] + ["hub"]
    edges = [(f"p{i}", f"p{i+1}", 1) for i in range(length)]
    heavy = star_weight_factor * length
    edges += [(f"p{i}", "hub", heavy) for i in range(length + 1)]
    graph = WeightedGraph(nodes, edges)
    return SteinerForestInstance(
        graph, {"p0": "pair", f"p{length}": "pair"}
    )


def random_disjointness_sets(
    universe: int, rng: random.Random, intersecting: bool
) -> Tuple[Set[int], Set[int]]:
    """Hard-style Set Disjointness inputs: |A|, |B| ≈ n/2, |A ∩ B| ≤ 1."""
    items = list(range(1, universe + 1))
    rng.shuffle(items)
    half = max(1, universe // 2)
    set_a = set(items[:half])
    remaining = [i for i in items if i not in set_a]
    set_b = set(remaining[: max(1, len(remaining))])
    if intersecting:
        set_b.add(rng.choice(sorted(set_a)))
    return set_a, set_b
