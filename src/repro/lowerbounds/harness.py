"""Verification and measurement harness for the lower-bound gadgets."""

from typing import Callable, Optional

from repro.congest.run import CongestRun
from repro.congest.transforms import distributed_requests_to_components
from repro.core.distributed import distributed_moat_growing
from repro.exact import steiner_forest_cost
from repro.lowerbounds.gadgets import CrGadget, IcGadget
from repro.model.transforms import requests_to_components


def cr_dichotomy_holds(gadget: CrGadget, rho: int = 2) -> bool:
    """Verify the Lemma 3.1 dichotomy on a DSF-CR gadget.

    * A ∩ B = ∅  ⇒  some feasible solution of weight ≤ 2n+2 avoids both
      heavy edges, so any ρ-approximation must avoid them;
    * A ∩ B ≠ ∅  ⇒  every feasible solution uses a heavy edge.

    Checked by solving the instance with the deterministic 2-approximation
    and inspecting heavy-edge usage, plus an exact-optimum cross-check.
    """
    instance = requests_to_components(gadget.instance)
    result = distributed_moat_growing(instance)
    uses_heavy = bool(result.solution.edges & gadget.heavy_edges)
    n = (gadget.instance.graph.num_nodes - 4) // 2
    light_budget = 2 * n + 2
    if gadget.intersecting:
        # Any feasible solution (ours included) must use a heavy edge.
        return uses_heavy
    # Disjoint: the optimum is ≤ 2n+2 < W/ρ, so the ρ-approximate
    # solution cannot afford a heavy edge.
    opt_ok = result.solution.weight <= rho * light_budget
    return (not uses_heavy) and opt_ok


def ic_dichotomy_holds(gadget: IcGadget) -> bool:
    """Verify the Lemma 3.3 dichotomy on a DSF-IC gadget: the bridge
    (a₀, b₀) appears in the output iff A ∩ B ≠ ∅."""
    if all(
        len(c) < 2 for c in gadget.instance.components.values()
    ):
        # Disjoint sets: every label is a singleton, the optimum is the
        # empty set; a finite-ratio algorithm must output weight 0.
        opt = steiner_forest_cost(gadget.instance)
        return opt == 0 and not gadget.intersecting
    result = distributed_moat_growing(gadget.instance)
    uses_bridge = gadget.bridge in result.solution.edges
    return uses_bridge == gadget.intersecting


def measure_cut_traffic(
    gadget,
    algorithm: Optional[Callable] = None,
) -> int:
    """Bits an actual algorithm run pushes across the gadget's Alice–Bob
    cut. Default algorithm: the DSF-CR→DSF-IC transform followed by the
    deterministic algorithm (for CR gadgets) or the deterministic algorithm
    directly (for IC gadgets)."""
    graph = (
        gadget.instance.graph
        if not hasattr(gadget.instance, "requests")
        else gadget.instance.graph
    )
    run = CongestRun(graph)
    if algorithm is not None:
        algorithm(gadget.instance, run)
    elif isinstance(gadget, CrGadget):
        ic = distributed_requests_to_components(gadget.instance, run)
        distributed_moat_growing(ic, run)
    else:
        distributed_moat_growing(gadget.instance, run)
    return run.cut_bits(gadget.cut_edges)
