"""Executable lower-bound constructions (Section 3, Appendix B, Figure 1).

The paper's lower bounds reduce two-party Set Disjointness to distributed
Steiner forest: Alice and Bob each build half of a gadget graph joined by
O(1) edges, and any finite-ratio algorithm's output across that cut reveals
whether A ∩ B = ∅ — forcing Ω(n) bits over the cut. Experiments cannot
prove a lower bound, but they can (a) instantiate the constructions,
(b) verify the reduction's correctness dichotomy (the heavy edges /
(a₀, b₀) are needed iff the sets intersect), and (c) meter the actual
traffic our algorithms push across the O(1)-capacity cut, which exhibits
the Ω(n)-shaped growth the reduction exploits.
"""

from repro.lowerbounds.gadgets import (
    CrGadget,
    IcGadget,
    dsf_cr_gadget,
    dsf_ic_gadget,
    path_gadget,
    random_disjointness_sets,
)
from repro.lowerbounds.harness import (
    cr_dichotomy_holds,
    ic_dichotomy_holds,
    measure_cut_traffic,
)

__all__ = [
    "CrGadget",
    "IcGadget",
    "dsf_cr_gadget",
    "dsf_ic_gadget",
    "path_gadget",
    "random_disjointness_sets",
    "cr_dichotomy_holds",
    "ic_dichotomy_holds",
    "measure_cut_traffic",
]
