"""Vectorized numpy kernels: the third ledger tier.

The flatarray ledger (:mod:`repro.perf.fastpath`) removed per-message
validation and ``repr`` churn but still walks every directed edge in
Python on every round. The paper's *regular* primitives — BFS flooding,
multi-source Bellman–Ford, pipelined broadcast, convergecast
aggregation, and the end-of-phase moat radius growth — are
round-synchronous array updates, so each round collapses to a handful of
numpy operations over a CSR topology:

* :class:`NumpyTopology` — the integer-rank compilation: nodes sorted by
  ``repr`` become ranks (integer ``min`` *is* the primitives' repr-based
  tie-breaking), the adjacency becomes ``indptr``/``indices`` arrays,
  and every CSR position maps to a canonical-edge id for ledger
  charging.
* :class:`NumpyCongestRun` — a :class:`~repro.perf.fastpath.
  FastCongestRun` whose per-edge traffic accumulates in an int64 array
  (materialized to the usual Counter on first read). Because it *is* a
  FastCongestRun, any primitive without a numpy branch falls back to the
  conformance-pinned flatarray branch automatically.
* the kernels — frontier expansion by segment gather, per-target
  lexicographic minima by ``lexsort`` + first-occurrence masks, masked
  radius growth — each produce the byte-identical execution of their
  pure-python counterpart (same rounds, messages, per-edge traffic,
  results; pinned by tests/test_npkernels.py and the conformance
  suites).

**Integer exactness.** All distance arithmetic runs in int64 after
scaling every Fraction by the least common denominator. Scaling is
gated by explicit bound checks against :data:`INT64_LIMIT` (with the
worst-case path length folded in), and every kernel re-asserts its
outputs stay inside the bound — when a workload cannot be scaled (float
weights, giant denominators, values near 2^62) the caller falls back to
the exact python branch instead of losing precision. Conformance is
exact, never approximate.

This module imports numpy at module scope **on purpose**: when numpy is
absent the import fails cleanly and the registries simply never grow a
``numpy`` tier (see :mod:`repro.simbackend` and
:func:`repro.perf.make_ledger_run`), keeping the reference path
dependency-free.
"""

import math
from collections import Counter
from fractions import Fraction
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.congest.run import CongestRun
from repro.model.graph import Edge, Node, WeightedGraph
from repro.perf.fastpath import CompiledTopology, FastCongestRun

#: Hard ceiling for every scaled int64 quantity. 2^62 leaves one bit of
#: headroom under ``np.int64`` so a single addition of two in-bound
#: values cannot wrap before the bound assertion sees it.
INT64_LIMIT = 2 ** 62

#: Sentinel for "unreached" in distance arrays; every admissible scaled
#: distance is strictly below INT64_LIMIT, so comparisons against the
#: sentinel behave like comparisons against +infinity.
UNREACHED = np.int64(2 ** 63 - 1)


def assert_int64_bounds(values: np.ndarray, context: str) -> None:
    """Assert every value sits strictly inside ±:data:`INT64_LIMIT`.

    This is the kernels' overflow invariant: it must hold by
    construction (the scaling gates reject workloads that could reach
    the limit), so a failure is a kernel bug, not a workload property.
    """
    if values.size and int(np.abs(values).max()) >= INT64_LIMIT:
        raise AssertionError(
            f"int64 bound violated in {context}: "
            f"|value| >= 2^62 after scaling"
        )


def scale_fractions(values: List[Fraction]) -> Optional[Tuple[List[int], int]]:
    """Scale Fractions to a common integer grid.

    Returns ``(scaled ints, denominator)`` with ``value == scaled /
    denominator`` exactly, or None when any value is not an
    int/Fraction or the scaled magnitudes leave the int64 bound.
    """
    denom = 1
    for value in values:
        if isinstance(value, int):
            continue
        if not isinstance(value, Fraction):
            return None
        denom = denom * value.denominator // math.gcd(denom, value.denominator)
        if denom >= INT64_LIMIT:
            return None
    scaled = []
    for value in values:
        s = int(value * denom)
        if abs(s) >= INT64_LIMIT:
            return None
        scaled.append(s)
    return scaled, denom


class NumpyTopology:
    """One-time CSR compilation of a graph in repr-rank space.

    Built straight from the graph — deliberately *not* from a
    :class:`CompiledTopology`, whose per-node Counters and full canon
    dict are pure-python costs the vectorized kernels never pay (the
    flatarray compilation stays lazy on :class:`NumpyCongestRun` for
    the fallback branches that do need it).

    Attributes:
        graph: the compiled :class:`~repro.model.graph.WeightedGraph`.
        repr_of: node → ``repr(node)`` (the key every primitive's
            deterministic tie-breaking is defined in terms of).
        order: nodes sorted by ``repr`` — index *is* the node's rank, so
            integer minima reproduce the primitives' repr tie-breaking.
        rank_of: node → rank.
        indptr/indices: CSR adjacency over ranks; each node's neighbor
            slice is sorted by rank (deterministic gather order).
        edge_eid: per CSR position, the canonical-edge id of that
            directed edge (the unit of ledger charging).
        eid_weight: int64 graph weight per canonical edge id
            (bound-checked at build).
        eid_u/eid_v: canonical edge id → endpoint ranks.
        canon_edges: canonical edge id → the canonical edge tuple (for
            materializing the ledger's Counter).
        eid_of: canonical edge tuple → id.
    """

    __slots__ = (
        "graph",
        "repr_of",
        "order",
        "rank_of",
        "indptr",
        "indices",
        "edge_eid",
        "eid_weight",
        "eid_u",
        "eid_v",
        "canon_edges",
        "eid_of",
        "num_edges",
        "_tag_repr",
    )

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        repr_of = {v: repr(v) for v in graph.nodes}
        self.repr_of = repr_of
        order = sorted(graph.nodes, key=repr_of.__getitem__)
        self.order = order
        rank_of = {v: i for i, v in enumerate(order)}
        self.rank_of = rank_of
        n = len(order)

        # One pass over the raw adjacency in rank space; neighbor
        # ordering and edge-id assignment happen as array ops below
        # (python-side sorting and canonical-edge lookups per directed
        # edge are exactly the compilation cost this tier exists to
        # avoid).
        degrees = np.zeros(n, dtype=np.int64)
        dst_list: List[int] = []
        weight_list: List[int] = []
        for i, v in enumerate(order):
            adj = graph.adjacency(v)
            degrees[i] = len(adj)
            for u, w in adj.items():
                if not isinstance(w, int) or abs(w) >= INT64_LIMIT:
                    raise OverflowError(
                        f"edge weight {w!r} on ({v!r}, {u!r}) is not an "
                        "int64-safe integer; the numpy tier requires "
                        "integer graph weights below 2^62"
                    )
                dst_list.append(rank_of[u])
                weight_list.append(w)
        src = np.repeat(np.arange(n, dtype=np.int64), degrees)
        dst = np.asarray(dst_list, dtype=np.int64)
        w_directed = np.asarray(weight_list, dtype=np.int64)
        # Sort each node's neighbor slice by rank. Rank order is repr
        # order, so this reproduces ``graph.neighbors``'s deterministic
        # ordering without re-sorting strings per node.
        perm = np.lexsort((dst, src))
        dst = dst[perm]
        w_directed = w_directed[perm]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(degrees, out=indptr[1:])
        self.indptr = indptr
        self.indices = dst

        # Canonical edge ids: both directions of an edge encode to the
        # same (min rank, max rank) key, so ``unique`` hands every CSR
        # position its undirected edge id in one shot.
        encoded = np.minimum(src, dst) * n + np.maximum(src, dst)
        uniq, first_pos, inverse = np.unique(
            encoded, return_index=True, return_inverse=True
        )
        self.edge_eid = inverse.astype(np.int64, copy=False)
        self.num_edges = int(uniq.size)
        self.eid_u = uniq // max(n, 1)
        self.eid_v = uniq % max(n, 1)
        self.eid_weight = w_directed[first_pos]
        canon_edges: List[Edge] = [
            (order[u], order[v])
            for u, v in zip(self.eid_u.tolist(), self.eid_v.tolist())
        ]
        self.canon_edges = canon_edges
        self.eid_of = {edge: k for k, edge in enumerate(canon_edges)}
        # repr memo for arbitrary hashable tags (Bellman–Ford regions),
        # keyed by (type, value) — hash-equal values of different types
        # (True vs 1) must not share a cached repr.
        self._tag_repr: Dict[Tuple[type, Any], str] = {}

    def canonical(self, u: Node, v: Node) -> Edge:
        """The canonical form of edge ``{u, v}`` via the repr memo."""
        return (u, v) if self.repr_of[u] <= self.repr_of[v] else (v, u)

    def tag_repr(self, tag: Any) -> str:
        """``repr(tag)``, memoized (tags repeat across relaxation rounds)."""
        key = (type(tag), tag)
        cached = self._tag_repr.get(key)
        if cached is None:
            cached = self._tag_repr[key] = repr(tag)
        return cached

    def directed_weights(
        self, edge_weight: Callable[[Node, Node], Any]
    ) -> Optional[Tuple[np.ndarray, int]]:
        """Evaluate a custom ``edge_weight`` once per directed CSR edge.

        Returns ``(scaled int64 per CSR position, denominator)``, or
        None when any value cannot be scaled exactly (caller falls back
        to the python branch).
        """
        order = self.order
        values: List[Fraction] = []
        for i, v in enumerate(order):
            for j in range(int(self.indptr[i]), int(self.indptr[i + 1])):
                values.append(edge_weight(v, order[int(self.indices[j])]))
        scaled = scale_fractions(values)
        if scaled is None:
            return None
        return np.asarray(scaled[0], dtype=np.int64), scaled[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NumpyTopology(n={len(self.order)}, edges={self.num_edges})"
        )


def gather_out_edges(
    indptr: np.ndarray, indices: np.ndarray, ranks: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenate the CSR out-edge slices of ``ranks`` (segment gather).

    Returns ``(positions, senders, targets)``: the CSR positions of
    every directed out-edge of the given ranks, the sending rank per
    position, and the receiving rank per position.
    """
    starts = indptr[ranks]
    counts = indptr[ranks + 1] - starts
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty, empty
    offsets = np.concatenate(
        (np.zeros(1, dtype=np.int64), np.cumsum(counts)[:-1])
    )
    positions = np.repeat(starts - offsets, counts) + np.arange(
        total, dtype=np.int64
    )
    senders = np.repeat(ranks, counts)
    return positions, senders, indices[positions]


class NumpyCongestRun(FastCongestRun):
    """The numpy-tier ledger: a FastCongestRun with array charging.

    Drop-in compatible with both plainer ledgers: primitives with a
    numpy branch detect the ``npc`` attribute; everything else sees the
    inherited ``compiled`` topology and takes the flatarray branch, so
    no execution path is ever slower *or different* than flatarray.

    Per-edge traffic accumulates in an int64 array indexed by canonical
    edge id and is folded into the inherited ``edge_messages`` Counter
    on first read (Counter equality is order-insensitive, so the
    materialization order is unobservable).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        bandwidth_bits: Optional[int] = None,
        max_rounds: int = 10_000_000,
        compiled: Optional[CompiledTopology] = None,
        npc: Optional[NumpyTopology] = None,
    ) -> None:
        # Skip FastCongestRun.__init__ on purpose: the pure-python
        # CompiledTopology costs more to build than the whole vectorized
        # pipeline at large n, and only the flatarray fallback branches
        # read it — so it is built lazily by the ``compiled`` property.
        CongestRun.__init__(
            self, graph, bandwidth_bits=bandwidth_bits, max_rounds=max_rounds
        )
        if compiled is not None and compiled.graph is not graph:
            raise ValueError("compiled topology belongs to a different graph")
        self._compiled = compiled
        if npc is not None and npc.graph is not graph:
            raise ValueError("numpy topology belongs to a different graph")
        self.npc = npc if npc is not None else NumpyTopology(graph)
        self._pending = np.zeros(self.npc.num_edges, dtype=np.int64)
        self._pending_dirty = False

    @property
    def compiled(self) -> CompiledTopology:
        """The flatarray compilation, built on first fallback use."""
        if self._compiled is None:
            self._compiled = CompiledTopology(self.graph)
        return self._compiled

    # -- pending-array Counter bridge -----------------------------------

    @property
    def edge_messages(self) -> Counter:
        """The per-edge Counter, with pending array charges folded in."""
        if self._pending_dirty:
            pending = self._pending
            ids = np.flatnonzero(pending)
            counts = pending[ids]
            counter = self._edge_counter
            canon_edges = self.npc.canon_edges
            for eid, count in zip(ids.tolist(), counts.tolist()):
                counter[canon_edges[eid]] += count
            pending[ids] = 0
            self._pending_dirty = False
        return self._edge_counter

    @edge_messages.setter
    def edge_messages(self, value: Counter) -> None:
        # The base constructor assigns the initial empty Counter through
        # this setter (before the pending array exists).
        self._edge_counter = value

    def charge_eids(self, eids: np.ndarray) -> None:
        """Batch-charge one message per canonical-edge id (repeats
        allowed across ids, ≤ 1 per direction per round guaranteed by
        the calling kernel — same contract as ``charge_messages``)."""
        count = int(eids.size)
        if count == 0:
            return
        np.add.at(self._pending, eids, 1)
        self._pending_dirty = True
        self.messages += count
        if self.profiler is not None:
            self.profiler.add_messages(count)

    def charge_unique_eids(self, eids: np.ndarray) -> None:
        """Like :meth:`charge_eids` for ids known to be distinct (plain
        fancy-index add, no scatter buffering)."""
        count = int(eids.size)
        if count == 0:
            return
        self._pending[eids] += 1
        self._pending_dirty = True
        self.messages += count
        if self.profiler is not None:
            self.profiler.add_messages(count)


# ---------------------------------------------------------------------
# BFS flooding
# ---------------------------------------------------------------------


def bfs_levels(
    npc: NumpyTopology, root_rank: int
) -> Tuple[np.ndarray, np.ndarray, List[np.ndarray]]:
    """Pure BFS kernel: parents/depths by repr-minimum flooding.

    Returns ``(parent_rank, depth, levels)`` where ``parent_rank`` is -1
    for the root and unreached nodes, ``depth`` is -1 for unreached
    nodes, and ``levels[d]`` holds the ranks joining at depth d+1 in
    ascending rank order (the reference insertion order). Pure — no
    ledger; :func:`build_bfs_tree_numpy` adds the charging.
    """
    n = len(npc.order)
    parent_rank = np.full(n, -1, dtype=np.int64)
    depth = np.full(n, -1, dtype=np.int64)
    depth[root_rank] = 0
    visited = np.zeros(n, dtype=bool)
    visited[root_rank] = True
    frontier = np.asarray([root_rank], dtype=np.int64)
    levels: List[np.ndarray] = []
    d = 0
    while frontier.size:
        d += 1
        _, senders, targets = gather_out_edges(
            npc.indptr, npc.indices, frontier
        )
        mask = ~visited[targets]
        cand_t = targets[mask]
        if cand_t.size:
            cand_s = senders[mask]
            new, inverse = np.unique(cand_t, return_inverse=True)
            best = np.full(new.size, n, dtype=np.int64)
            np.minimum.at(best, inverse, cand_s)
            parent_rank[new] = best
            depth[new] = d
            visited[new] = True
            levels.append(new)
            frontier = new
        else:
            frontier = np.empty(0, dtype=np.int64)
    return parent_rank, depth, levels


def build_bfs_tree_numpy(run: "NumpyCongestRun", root: Node):
    """The numpy branch of :func:`repro.congest.bfs.build_bfs_tree`.

    Round-for-round identical to the reference flooding: while the
    frontier is non-empty one round is ticked and every frontier node
    charges all its out-edges; joins pick the minimum-rank announcer
    (== minimum ``repr``). Returns the same :class:`~repro.congest.bfs.
    BFSTree`, with the parent dict in the reference insertion order
    (root first, then per depth in ascending ``repr``).
    """
    from repro.congest.bfs import BFSTree

    npc = run.npc
    order = npc.order
    root_rank = npc.rank_of[root]
    # Charging follows the identical round structure: replay the level
    # expansion, ticking and charging per round.
    n = len(order)
    visited = np.zeros(n, dtype=bool)
    visited[root_rank] = True
    frontier = np.asarray([root_rank], dtype=np.int64)
    parent_rank = np.full(n, -1, dtype=np.int64)
    levels: List[np.ndarray] = []
    d = 0
    while frontier.size:
        d += 1
        run.tick()
        positions, senders, targets = gather_out_edges(
            npc.indptr, npc.indices, frontier
        )
        run.charge_eids(npc.edge_eid[positions])
        mask = ~visited[targets]
        cand_t = targets[mask]
        if cand_t.size:
            cand_s = senders[mask]
            new, inverse = np.unique(cand_t, return_inverse=True)
            best = np.full(new.size, n, dtype=np.int64)
            np.minimum.at(best, inverse, cand_s)
            parent_rank[new] = best
            visited[new] = True
            levels.append(new)
            frontier = new
        else:
            frontier = np.empty(0, dtype=np.int64)
    parent: Dict[Node, Optional[Node]] = {root: None}
    depth_of: Dict[Node, int] = {root: 0}
    for level_depth, ranks in enumerate(levels, start=1):
        for rank in ranks.tolist():
            parent[order[rank]] = order[parent_rank[rank]]
            depth_of[order[rank]] = level_depth
    return BFSTree(root, parent, depth_of)


# ---------------------------------------------------------------------
# Multi-source Bellman–Ford (scaled int64 relaxation)
# ---------------------------------------------------------------------


def bellman_ford_numpy(
    graph: WeightedGraph,
    sources: Any,
    run: "NumpyCongestRun",
    edge_weight: Optional[Callable[[Node, Node], Any]],
    blocked: Any,
    max_iterations: Optional[int],
):
    """The numpy branch of :func:`repro.congest.bellman_ford.
    bellman_ford`; returns a BellmanFordResult or None when the
    workload cannot be scaled to int64 exactly (the caller then takes
    the python branch).

    Per relaxation round: gather every out-edge of the changed set,
    lexsort candidates by (distance, tag rank, sender rank) — the exact
    repr-based tie-breaking of the reference — keep the first candidate
    per target, and apply the strictly-smaller (distance, tag)
    acceptance rule as masked array updates.
    """
    from repro.congest.bellman_ford import BellmanFordResult

    npc = run.npc
    n = len(npc.order)
    rank_of = npc.rank_of

    # --- scale the weights ------------------------------------------
    if edge_weight is None or edge_weight is graph.weight:
        w_denom = 1
        w_scaled = npc.eid_weight[npc.edge_eid]
    else:
        precomputed = getattr(edge_weight, "np_scaled", None)
        if precomputed is not None:
            per_eid, w_denom = precomputed
            w_scaled = per_eid[npc.edge_eid]
        else:
            evaluated = npc.directed_weights(edge_weight)
            if evaluated is None:
                return None
            w_scaled, w_denom = evaluated

    # --- scale the source distances to the common grid --------------
    source_items = list(sources.items())
    d0_scaled = scale_fractions([d0 for _, (d0, _) in source_items])
    if d0_scaled is None:
        return None
    d0_values, d0_denom = d0_scaled
    denom = w_denom * d0_denom // math.gcd(w_denom, d0_denom)
    if denom >= INT64_LIMIT:
        return None
    if denom != w_denom:
        factor = denom // w_denom
        # Pre-check in python ints: the int64 multiply itself could
        # wrap before any bound assertion sees the product.
        max_abs_w = int(np.abs(w_scaled).max()) if w_scaled.size else 0
        if max_abs_w * factor >= INT64_LIMIT:
            return None
        w_scaled = w_scaled * factor
    if denom != d0_denom:
        factor = denom // d0_denom
        d0_values = [d * factor for d in d0_values]
    # Worst-case reachable distance: any source offset plus n-1 hops.
    max_w = int(w_scaled.max()) if w_scaled.size else 0
    max_d0 = max((abs(d) for d in d0_values), default=0)
    if max_d0 + max(0, n - 1) * max(0, max_w) >= INT64_LIMIT:
        return None
    assert_int64_bounds(w_scaled, "bellman_ford weights")

    # --- tags: repr-rank ints (equal reprs share a rank, exactly the
    # reference's repr-string comparison) -----------------------------
    tag_repr = npc.tag_repr
    tags = [t for _, (_, t) in source_items]
    distinct_reprs = sorted({tag_repr(t) for t in tags})
    repr_rank = {r: i for i, r in enumerate(distinct_reprs)}

    dist_s = np.full(n, UNREACHED, dtype=np.int64)
    tag_rank = np.full(n, np.iinfo(np.int64).max, dtype=np.int64)
    tag_idx = np.full(n, -1, dtype=np.int64)
    parent_rank = np.full(n, -1, dtype=np.int64)
    source_mask = np.zeros(n, dtype=bool)
    for i, (v, (d0, t)) in enumerate(source_items):
        r = rank_of[v]
        dist_s[r] = d0_values[i]
        tag_rank[r] = repr_rank[tag_repr(t)]
        tag_idx[r] = i
        source_mask[r] = True

    blocked_mask = np.zeros(n, dtype=bool)
    for v in blocked:
        blocked_mask[rank_of[v]] = True
    skip_mask = blocked_mask | source_mask

    changed = source_mask.copy()
    #: Ranks of non-source nodes in the order the reference first
    #: inserts them into its dist dict (per round, first-proposal order
    #: over announcers sorted by repr × neighbors sorted by repr — which
    #: is exactly the CSR gather order).
    reach_order: List[int] = []
    iterations = 0
    stabilized = True
    while changed.any():
        if max_iterations is not None and iterations >= max_iterations:
            stabilized = False
            break
        iterations += 1
        announcers = np.flatnonzero(changed)
        positions, senders, targets = gather_out_edges(
            npc.indptr, npc.indices, announcers
        )
        run.tick()
        run.charge_eids(npc.edge_eid[positions])
        mask = ~skip_mask[targets]
        cand_t = targets[mask]
        changed = np.zeros(n, dtype=bool)
        if not cand_t.size:
            continue
        cand_s = senders[mask]
        cand_d = dist_s[cand_s] + w_scaled[positions[mask]]
        assert_int64_bounds(cand_d, "bellman_ford distances")
        cand_tr = tag_rank[cand_s]
        # Reference keeps the first strictly-smaller (dist, tag repr,
        # sender repr) candidate per target: lexsort with the target as
        # the primary key, then take each target's first row.
        order = np.lexsort((cand_s, cand_tr, cand_d, cand_t))
        t_sorted = cand_t[order]
        first = np.ones(t_sorted.size, dtype=bool)
        first[1:] = t_sorted[1:] != t_sorted[:-1]
        best_t = t_sorted[first]
        best_d = cand_d[order][first]
        best_tr = cand_tr[order][first]
        best_s = cand_s[order][first]
        cur_d = dist_s[best_t]
        cur_tr = tag_rank[best_t]
        accept = (best_d < cur_d) | ((best_d == cur_d) & (best_tr < cur_tr))
        acc_t = best_t[accept]
        if acc_t.size:
            # Newly reached nodes enter the result dict in the order the
            # reference first proposes to them this round. best_t is the
            # sorted unique cand_t, so np.unique's first-occurrence
            # indices align with it positionally.
            new_mask = accept & (cur_d == UNREACHED)
            if new_mask.any():
                _, first_pos = np.unique(cand_t, return_index=True)
                order_new = np.argsort(first_pos[new_mask], kind="stable")
                reach_order.extend(best_t[new_mask][order_new].tolist())
            dist_s[acc_t] = best_d[accept]
            tag_rank[acc_t] = best_tr[accept]
            tag_idx[acc_t] = tag_idx[best_s[accept]]
            parent_rank[acc_t] = best_s[accept]
            changed[acc_t] = True

    # --- materialize result dicts in the reference's exact insertion
    # order: sources first (sources.items() order), then non-sources in
    # first-reached order -------------------------------------------
    order_nodes = npc.order
    dist: Dict[Node, Any] = {}
    tag: Dict[Node, Any] = {}
    parent: Dict[Node, Optional[Node]] = {}
    for i, (v, (d0, t)) in enumerate(source_items):
        dist[v] = Fraction(d0)
        tag[v] = t
        parent[v] = None
    for r in reach_order:
        v = order_nodes[r]
        dist[v] = Fraction(int(dist_s[r]), denom)
        tag[v] = source_items[int(tag_idx[r])][1][1]
        parent[v] = order_nodes[int(parent_rank[r])]
    return BellmanFordResult(dist, tag, parent, iterations, stabilized)


# ---------------------------------------------------------------------
# Tree primitives: broadcast pipelining and convergecast schedules
# ---------------------------------------------------------------------


def tree_broadcast_schedule(npc: NumpyTopology, tree: Any):
    """Per-depth child-edge ids of a BFS tree, grouped contiguously.

    Returns ``(child_eids, level_start)``: the canonical-edge ids of
    every parent→child tree edge grouped by the parent's depth, and the
    per-depth slice boundaries (length ``tree.depth + 1``; level d's
    edges occupy ``child_eids[level_start[d]:level_start[d + 1]]``).
    Cached on the tree object (one tree is broadcast over many times per
    solve).
    """
    cached = getattr(tree, "_np_broadcast_sched", None)
    if cached is not None and cached[0] is npc:
        return cached[1], cached[2]
    eid_of = npc.eid_of
    canonical = npc.canonical
    per_level: List[List[int]] = [[] for _ in range(tree.depth + 1)]
    for v, kids in tree.children.items():
        if kids:
            bucket = per_level[tree.depth_of[v]]
            for child in kids:
                bucket.append(eid_of[canonical(v, child)])
    level_start = np.zeros(tree.depth + 2, dtype=np.int64)
    for d, bucket in enumerate(per_level):
        level_start[d + 1] = level_start[d] + len(bucket)
    child_eids = np.asarray(
        [eid for bucket in per_level for eid in bucket], dtype=np.int64
    )
    tree._np_broadcast_sched = (npc, child_eids, level_start)
    return child_eids, level_start


def broadcast_items_numpy(tree: Any, items: List[Any], run: "NumpyCongestRun"):
    """The numpy branch of :func:`repro.congest.broadcast.
    broadcast_items`.

    The reference pipeline never stalls: a node at depth d receives item
    k at the end of round d+k and forwards it in round d+k+1, so round r
    carries exactly the child edges of internal nodes at depths
    ``[r - m, r - 1]`` and the whole broadcast ticks ``depth + m - 1``
    rounds. The window over the depth axis is contiguous, so each
    round's charge is one slice of the grouped child-edge array.
    """
    npc = run.npc
    child_eids, level_start = tree_broadcast_schedule(npc, tree)
    m = len(items)
    total_rounds = tree.depth + m - 1
    max_parent_depth = tree.depth - 1
    for r in range(1, total_rounds + 1):
        run.tick()
        lo = max(0, r - m)
        hi = min(r - 1, max_parent_depth)
        if lo <= hi:
            run.charge_unique_eids(
                child_eids[int(level_start[lo]):int(level_start[hi + 1])]
            )
    return items


def convergecast_schedule_numpy(npc: NumpyTopology, tree: Any):
    """Send rounds for :func:`repro.congest.broadcast.
    convergecast_aggregate`: node v sends to its parent in round
    ``height(subtree(v))``; returns ``(senders, eids, round_start)``
    with the non-root nodes sorted by (send round, bottom-up position) —
    the exact order the reference applies ``combine`` — their edge ids,
    and per-round slice boundaries.
    """
    bottom_up = tree.nodes_bottom_up()
    send_round: Dict[Any, int] = {}
    for v in bottom_up:
        kids = tree.children[v]
        send_round[v] = 1 + max((send_round[c] for c in kids), default=0)
    total = max(
        (send_round[v] for v in bottom_up if v is not tree.root), default=0
    )
    per_round: List[List[Any]] = [[] for _ in range(total + 1)]
    for v in bottom_up:  # bottom-up order within each round, as reference
        if v != tree.root:
            per_round[send_round[v]].append(v)
    eid_of = npc.eid_of
    canonical = npc.canonical
    senders: List[Any] = []
    eids: List[int] = []
    round_start = np.zeros(total + 1, dtype=np.int64)
    for r in range(1, total + 1):
        for v in per_round[r]:
            senders.append(v)
            eids.append(eid_of[canonical(v, tree.parent[v])])
        round_start[r] = len(senders)
    return senders, np.asarray(eids, dtype=np.int64), round_start


def convergecast_aggregate_numpy(
    tree: Any,
    values: Dict[Any, Any],
    combine: Callable[[Any, Any], Any],
    run: "NumpyCongestRun",
):
    """The numpy branch of :func:`repro.congest.broadcast.
    convergecast_aggregate`: the per-round sender sets are a static
    schedule (subtree heights), so the rounds tick off slices of one
    precomputed edge-id array; ``combine`` is applied in the identical
    (send round, bottom-up) order as the reference loop.
    """
    acc = dict(values)
    senders, eids, round_start = convergecast_schedule_numpy(run.npc, tree)
    parent = tree.parent
    for r in range(1, round_start.size):
        start, stop = int(round_start[r - 1]), int(round_start[r])
        run.tick()
        run.charge_unique_eids(eids[start:stop])
        for v in senders[start:stop]:
            acc[parent[v]] = combine(acc[parent[v]], acc[v])
    return acc[tree.root]


# ---------------------------------------------------------------------
# Moat radius growth (the end-of-phase masked update)
# ---------------------------------------------------------------------


def grow_radii(
    leftover_s: np.ndarray,
    grow_mask: np.ndarray,
    dist_s: np.ndarray,
    absorb_candidate: np.ndarray,
    mu_s: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized end-of-phase radius growth (scaled int64).

    ``grow_mask`` marks covered nodes of active moats: their leftover
    gains ``mu_s``. ``absorb_candidate`` marks nodes the phase's
    Bellman–Ford reached from outside the sources: those within the
    growth (``dist ≤ mu``) are newly absorbed with leftover
    ``mu_s - dist``. Returns ``(new_leftover_s, absorbed_mask)``.
    """
    if mu_s >= INT64_LIMIT:
        raise AssertionError("int64 bound violated in grow_radii: mu")
    new_leftover = leftover_s.copy()
    new_leftover[grow_mask] += mu_s
    absorbed = absorb_candidate & (dist_s <= mu_s)
    new_leftover[absorbed] = mu_s - dist_s[absorbed]
    assert_int64_bounds(new_leftover, "grow_radii leftover")
    return new_leftover, absorbed


def scaled_reduced_weights(
    npc: NumpyTopology, leftover: Dict[Node, Fraction]
) -> Optional[Tuple[np.ndarray, int]]:
    """Vectorized Ŵ_j (Definition 4.5) on the scaled integer grid.

    Computes ``max(0, w - Σ_endpoint min(w, leftover))`` per canonical
    edge, scaled by the leftovers' common denominator. Returns
    ``(per-edge scaled int64, denominator)`` or None when the leftovers
    cannot be scaled within bounds (caller falls back to the python
    reduced-weight callable).
    """
    scaled = scale_fractions(list(leftover.values()))
    if scaled is None:
        return None
    values, denom = scaled
    n = len(npc.order)
    lo = np.zeros(n, dtype=np.int64)
    rank_of = npc.rank_of
    for v, s in zip(leftover, values):
        lo[rank_of[v]] = s
    max_w = int(npc.eid_weight.max()) if npc.num_edges else 0
    if max_w * denom >= INT64_LIMIT:
        return None
    w = npc.eid_weight * denom
    lo_u = lo[npc.eid_u]
    lo_v = lo[npc.eid_v]
    cov = np.where(lo_u > 0, np.minimum(w, lo_u), 0) + np.where(
        lo_v > 0, np.minimum(w, lo_v), 0
    )
    reduced = np.maximum(0, w - cov)
    assert_int64_bounds(reduced, "scaled_reduced_weights")
    return reduced, denom


def apply_radius_growth(
    npc: NumpyTopology,
    leftover: Dict[Node, Fraction],
    owner: Dict[Node, Optional[Node]],
    parent: Dict[Node, Optional[Node]],
    sources: Dict[Node, Any],
    tree_owner: Dict[Node, Optional[Node]],
    tree_parent: Dict[Node, Optional[Node]],
    tree_dist: Dict[Node, Fraction],
    mu_phase: Fraction,
) -> bool:
    """Run one end-of-phase radius/coverage update through
    :func:`grow_radii`, writing the results back into the solver's
    replicated per-node dicts. Returns False when the phase values
    cannot be scaled (caller runs the python loops instead).

    Byte-identical to the reference loops in
    :func:`repro.core.distributed.distributed_moat_growing`: the same
    nodes grow (covered members of ``sources``), the same nodes absorb
    (non-sources with ``tree_dist ≤ µ``), with the same exact Fraction
    values (de-scaled from the int64 grid).
    """
    entries = list(leftover.items()) + list(tree_dist.items()) + [
        ("", mu_phase)
    ]
    scaled = scale_fractions([value for _, value in entries])
    if scaled is None:
        return False
    values, denom = scaled
    n = len(npc.order)
    rank_of = npc.rank_of
    num_leftover = len(leftover)
    leftover_s = np.zeros(n, dtype=np.int64)
    for (v, _), s in zip(entries[:num_leftover], values[:num_leftover]):
        leftover_s[rank_of[v]] = s
    dist_s = np.full(n, UNREACHED, dtype=np.int64)
    for (v, _), s in zip(
        entries[num_leftover:-1], values[num_leftover:-1]
    ):
        dist_s[rank_of[v]] = s
    mu_s = values[-1]
    grow_mask = np.zeros(n, dtype=bool)
    for x in leftover:
        if owner[x] is not None and x in sources:
            grow_mask[rank_of[x]] = True
    absorb_candidate = np.zeros(n, dtype=bool)
    for x in tree_dist:
        if x not in sources:
            absorb_candidate[rank_of[x]] = True
    new_leftover, absorbed = grow_radii(
        leftover_s, grow_mask, dist_s, absorb_candidate, mu_s
    )
    for x in list(leftover):
        r = rank_of[x]
        if grow_mask[r]:
            leftover[x] = Fraction(int(new_leftover[r]), denom)
    for x in tree_dist:
        r = rank_of[x]
        if absorbed[r]:
            owner[x] = tree_owner[x]
            parent[x] = tree_parent[x]
            leftover[x] = Fraction(int(new_leftover[r]), denom)
    return True
