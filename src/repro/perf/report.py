"""Flame-style text rendering of phase profiles (``repro profile``).

The input is profiled job records as produced by
:func:`repro.engine.runner.execute_job` with ``profile=True`` — each
carries a ``profile`` field with per-phase rounds / messages / wall-time
rows (:meth:`repro.perf.PhaseProfiler.to_dict`). Records are grouped by
(scenario, algorithm, backend) and phase counters are averaged across
the group's jobs, so a profile over several seeds/grid points reads as
one representative breakdown per pipeline.
"""

from typing import Any, Dict, List, Mapping, Tuple

#: Width of the wall-time bar column (characters at 100%).
BAR_WIDTH = 28


def _indent(name: str) -> str:
    """Nested span names ("phase/span") indent one level per component."""
    depth = name.count("/")
    leaf = name.rsplit("/", 1)[-1]
    return "  " * depth + leaf


def _merge_profiles(profiles: List[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Average per-phase counters across several job profiles.

    Phases keep first-seen order (executions of one pipeline narrate
    their phases in the same order; stragglers appear where first seen).
    Sums divide by the *group* size, not by how many jobs reached the
    phase — a phase only the largest grid point executes contributes its
    per-group mean, so "mean per job" holds for every row and the group
    totals equal the mean per-job totals.
    """
    jobs = max(1, len(profiles))
    order: List[str] = []
    acc: Dict[str, Dict[str, float]] = {}
    for profile in profiles:
        for row in profile.get("phases", []):
            name = row["phase"]
            sums = acc.get(name)
            if sums is None:
                sums = acc[name] = {"rounds": 0.0, "messages": 0.0, "wall_time": 0.0}
                order.append(name)
            sums["rounds"] += row.get("rounds", 0)
            sums["messages"] += row.get("messages", 0)
            sums["wall_time"] += row.get("wall_time", 0.0)
    return [
        {
            "phase": name,
            "rounds": acc[name]["rounds"] / jobs,
            "messages": acc[name]["messages"] / jobs,
            "wall_time": acc[name]["wall_time"] / jobs,
        }
        for name in order
    ]


def render_profile_report(records: List[Mapping[str, Any]]) -> str:
    """Render profiled records as per-pipeline flame-style breakdowns.

    Each (scenario, algorithm, backend) group gets one section: a row
    per phase (nested spans indented under their parent phase) with
    mean rounds, messages, wall seconds, the wall share, and a bar
    proportional to it. Records without a ``profile`` field are
    ignored; an all-unprofiled input renders a hint instead of nothing.
    """
    groups: Dict[Tuple[str, str, str], List[Mapping[str, Any]]] = {}
    for record in records:
        if not record.get("profile"):
            continue
        group = (
            str(record.get("scenario", "?")),
            str(record.get("algorithm", "?")),
            str(record.get("backend_name", "reference")),
        )
        groups.setdefault(group, []).append(record)
    if not groups:
        return "no profiled records (run with profiling enabled)"

    sections = []
    for (scenario, algorithm, backend), group in sorted(groups.items()):
        rows = _merge_profiles([r["profile"] for r in group])
        total_wall = sum(row["wall_time"] for row in rows) or 1.0
        total_rounds = sum(row["rounds"] for row in rows)
        total_messages = sum(row["messages"] for row in rows)
        name_width = max(
            [len(_indent(row["phase"])) for row in rows] + [len("phase")]
        )
        lines = [
            f"== profile: {scenario} · {algorithm} · backend={backend} "
            f"({len(group)} job{'s' if len(group) != 1 else ''}, "
            f"mean per job) ==",
            f"{'phase'.ljust(name_width)} {'rounds':>9s} {'messages':>10s} "
            f"{'wall s':>9s} {'share':>6s}",
        ]
        for row in rows:
            share = row["wall_time"] / total_wall
            bar = "█" * max(
                int(round(share * BAR_WIDTH)), 1 if row["wall_time"] > 0 else 0
            )
            lines.append(
                f"{_indent(row['phase']).ljust(name_width)} "
                f"{row['rounds']:9.1f} {row['messages']:10.1f} "
                f"{row['wall_time']:9.4f} {share:6.1%} {bar}"
            )
        lines.append(
            f"{'total'.ljust(name_width)} {total_rounds:9.1f} "
            f"{total_messages:10.1f} {total_wall:9.4f} {1:6.1%}"
        )
        sections.append("\n".join(lines))
    return "\n\n".join(sections)
