"""The ledger-level fast path: the flatarray engine for the paper pipeline.

PR 3's flat-array backend made *message-level* NodeProgram executions
fast; the paper's actual Steiner-forest pipeline (moat growing, pruning,
the sublinear composition) is **ledger-level** — the solvers drive the
communication primitives (:mod:`repro.congest.bfs`,
:mod:`repro.congest.bellman_ford`, :mod:`repro.congest.broadcast`,
:mod:`repro.congest.pipeline`) directly against a
:class:`~repro.congest.run.CongestRun`. Profiling (``repro profile``,
``bench_e18_profile.py``) shows their wall time goes to three places:

* per-message ledger validation (``has_edge`` + ``repr``-based
  ``canonical_edge``) on every ``tick(traffic)``,
* per-call ``graph.neighbors`` re-sorting and ``repr`` key computation
  inside the primitives' round loops,
* full re-sorts of monotonically growing buffers (the Kruskal filter of
  the pipelined upcast re-sorted every node's buffer every round).

This module compiles all of that away once per execution:

* :class:`CompiledTopology` precomputes per-node neighbor tuples, node
  ``repr`` keys, per-node canonical-edge Counters, and the full-graph
  broadcast Counter;
* :class:`FastCongestRun` is a drop-in :class:`CongestRun` carrying the
  compiled topology; its ``tick`` validates via one dict lookup per
  message, and :meth:`CongestRun.charge_counter` applies whole-round
  traffic in one C-speed Counter update;
* the communication primitives detect ``run.compiled`` and switch to
  integer-light branches that produce the **identical** execution —
  same rounds, messages, per-edge traffic, phases, and solver output.

Like the message-level engines, the fast path is conformance-pinned:
``tests/test_perf.py`` runs the distributed and sublinear solvers under
both ledgers across the graph-family matrix and asserts equality field
by field. The ``reference`` path (a plain ``CongestRun``) stays the
simple, obviously-correct baseline and is never modified by backend
selection.
"""

from collections import Counter
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.congest.run import (
    CongestRun,
    non_edge_violation,
    per_direction_violation,
)
from repro.model.graph import Edge, Node, WeightedGraph
from repro.simbackend import (
    AUTO_THRESHOLD_NODES,
    NUMPY_THRESHOLD_NODES,
    choose_engine_name,
    normalize_backend,
)


class CompiledTopology:
    """One-time compilation of a graph for the ledger fast path.

    Attributes:
        graph: the compiled :class:`~repro.model.graph.WeightedGraph`.
        repr_of: node → ``repr(node)`` (the sort key every primitive's
            deterministic tie-breaking is defined in terms of).
        neighbors: node → the graph's deterministic neighbor tuple,
            cached (``WeightedGraph.neighbors`` re-sorts per call).
        canon: directed pair ``(u, v)`` → canonical edge, both
            directions of every edge (non-edges are absent, which is
            what the fast ``tick`` validation relies on).
        out_counter: node → Counter of the canonical edges to all its
            neighbors (the per-node full-broadcast charge).
        degree: node → its degree (``sum(out_counter.values())``).
        full_counter: Counter of every canonical edge with multiplicity
            2 — the all-nodes-to-all-neighbors broadcast round the
            solvers' owner-exchange steps charge.
        num_directed: total directed edge count (2m).
    """

    __slots__ = (
        "graph",
        "repr_of",
        "neighbors",
        "canon",
        "out_counter",
        "degree",
        "full_counter",
        "num_directed",
        "undirected_edges",
        "_tag_repr",
        "_edge_repr",
    )

    def __init__(self, graph: WeightedGraph) -> None:
        self.graph = graph
        nodes = graph.nodes
        repr_of = {v: repr(v) for v in nodes}
        self.repr_of = repr_of
        self.neighbors: Dict[Node, Tuple[Node, ...]] = {
            v: graph.neighbors(v) for v in nodes
        }
        canon: Dict[Tuple[Node, Node], Edge] = {}
        out_counter: Dict[Node, Counter] = {}
        degree: Dict[Node, int] = {}
        full: Counter = Counter()
        for v in nodes:
            nbrs = self.neighbors[v]
            degree[v] = len(nbrs)
            rv = repr_of[v]
            edges = []
            for u in nbrs:
                edge = (v, u) if rv <= repr_of[u] else (u, v)
                canon[(v, u)] = edge
                edges.append(edge)
            counter = Counter(edges)
            out_counter[v] = counter
            full.update(counter)
        self.canon = canon
        self.out_counter = out_counter
        self.degree = degree
        self.full_counter = full
        self.num_directed = sum(degree.values())
        #: The graph's canonical (u, v, weight) list, computed once
        #: (``WeightedGraph.edges`` rebuilds it per call).
        self.undirected_edges = tuple(graph.edges())
        # repr memo for arbitrary hashable tags (Bellman–Ford regions).
        # Keyed by (type, value): hash-equal values of different types
        # (True vs 1) must not share a cached repr.
        self._tag_repr: Dict[Tuple[type, Any], str] = {}
        self._edge_repr: Dict[Edge, str] = {}

    def tag_repr(self, tag: Any) -> str:
        """``repr(tag)``, memoized (tags repeat across relaxation rounds)."""
        key = (type(tag), tag)
        cached = self._tag_repr.get(key)
        if cached is None:
            cached = self._tag_repr[key] = repr(tag)
        return cached

    def edge_repr(self, edge: Edge) -> str:
        """``repr(edge)``, memoized (candidate keys repeat per phase)."""
        cached = self._edge_repr.get(edge)
        if cached is None:
            cached = self._edge_repr[edge] = repr(edge)
        return cached

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledTopology(n={len(self.degree)}, "
            f"directed_edges={self.num_directed})"
        )


class FastCongestRun(CongestRun):
    """A :class:`CongestRun` with a compiled topology (the flatarray
    ledger).

    Drop-in compatible: the primitives detect the ``compiled`` attribute
    and take their fast branches; code that never looks for it behaves
    exactly as with a plain run. ``tick`` keeps the full CONGEST
    validation contract (same error types and messages) but resolves
    edge membership and canonical form with one dict lookup per message.

    Args:
        graph: the network the algorithm runs on.
        bandwidth_bits: see :class:`CongestRun`.
        max_rounds: see :class:`CongestRun`.
        compiled: reuse an existing compilation of ``graph`` (e.g. when
            several runs share one instance); compiled on demand when
            omitted.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        bandwidth_bits: Optional[int] = None,
        max_rounds: int = 10_000_000,
        compiled: Optional[CompiledTopology] = None,
    ) -> None:
        super().__init__(
            graph, bandwidth_bits=bandwidth_bits, max_rounds=max_rounds
        )
        if compiled is not None and compiled.graph is not graph:
            raise ValueError("compiled topology belongs to a different graph")
        self.compiled = compiled if compiled is not None else CompiledTopology(graph)

    def tick(self, traffic: Optional[Mapping[Tuple[Node, Node], int]] = None) -> None:
        """Advance one round; charge ``traffic`` via the compiled edge map.

        Identical contract and end state to :meth:`CongestRun.tick` —
        the round preamble and the violation errors are literally shared
        (:meth:`CongestRun._advance_round`, :func:`non_edge_violation`,
        :func:`per_direction_violation`), only edge resolution differs
        (one dict lookup instead of ``has_edge`` + ``canonical_edge``).
        """
        self._advance_round()
        if traffic:
            canon = self.compiled.canon
            edge_messages = self.edge_messages
            charged = 0
            for pair, count in traffic.items():
                if count == 0:
                    continue
                edge = canon.get(pair)
                if edge is None:
                    raise non_edge_violation(*pair)
                if count > 1:
                    raise per_direction_violation(count, *pair)
                edge_messages[edge] += 1
                charged += 1
            self.messages += charged
            if self.profiler is not None and charged:
                self.profiler.add_messages(charged)


def make_ledger_run(
    backend: Any,
    graph: WeightedGraph,
    bandwidth_bits: Optional[int] = None,
    max_rounds: int = 10_000_000,
) -> CongestRun:
    """Build the ledger a solver should charge, per backend spec.

    The ledger-level counterpart of :func:`repro.simbackend.
    build_backend`, used by the experiment runner and the CLI to thread
    the ``--backend`` axis into the paper's solvers:

    * ``reference`` (and ``sharded``, which has no ledger-level analogue
      — its win is multiprocess NodeProgram dispatch) → a plain
      :class:`CongestRun`;
    * ``flatarray`` → a :class:`FastCongestRun`;
    * ``numpy`` → a :class:`repro.perf.npkernels.NumpyCongestRun` (only
      reachable when the optional numpy extra registered the tier —
      otherwise the shared validation rejects the name);
    * ``auto`` → the size heuristic shared with
      :class:`~repro.simbackend.AutoBackend` (``threshold`` and
      ``numpy_threshold`` params honored), so ``backend="auto"`` picks
      consistently across message-level and ledger-level executions.

    Raises:
        ValueError: on unknown backend names or parameters — validated
            through the same :func:`~repro.simbackend.build_backend`
            path as the simulator facade, so one ``--backend`` spec is
            either valid at both levels or rejected at both.
    """
    from repro.simbackend import build_backend

    spec = normalize_backend(backend)
    build_backend(spec)  # uniform name/parameter validation
    name = spec["name"]
    if name == "auto":
        threshold = int(spec["params"].get("threshold", AUTO_THRESHOLD_NODES))
        numpy_threshold = int(
            spec["params"].get("numpy_threshold", NUMPY_THRESHOLD_NODES)
        )
        name = choose_engine_name(graph.num_nodes, threshold, numpy_threshold)
    if name == "numpy":
        # Import deferred (and guaranteed to succeed): the spec passed
        # validation, so the numpy tier is registered ⇒ numpy imports.
        from repro.perf.npkernels import NumpyCongestRun

        try:
            return NumpyCongestRun(
                graph, bandwidth_bits=bandwidth_bits, max_rounds=max_rounds
            )
        except OverflowError:
            # Edge weights outside the int64 grid: an explicit numpy
            # request fails loudly, but auto degrades to flatarray.
            if spec["name"] != "auto":
                raise
            name = "flatarray"
    if name == "flatarray":
        return FastCongestRun(
            graph, bandwidth_bits=bandwidth_bits, max_rounds=max_rounds
        )
    return CongestRun(graph, bandwidth_bits=bandwidth_bits, max_rounds=max_rounds)
