"""Phase-level profiling of the paper pipeline.

Every ledger-level solver already narrates its structure through
:meth:`~repro.congest.run.CongestRun.set_phase` ("setup", "phase-3",
"pruning", ...); the :class:`PhaseProfiler` turns that narration into
per-phase **rounds / messages / wall-time** counters without touching
the computation. Attaching is one pointer assignment
(:meth:`PhaseProfiler.attach`); a detached run pays exactly one ``is
not None`` check per charge, and the test suite pins that profiling
cannot change results, round counts, or result-store cache keys.

Two attribution mechanisms compose:

* **phases** — :meth:`switch_phase` (driven by ``run.set_phase``)
  replaces the current top-level frame; rounds and messages charged to
  the ledger land on the innermost open frame.
* **spans** — :meth:`span` opens a nested frame named
  ``"<parent>/<name>"`` (used by the centralized solvers, which have no
  ledger, and by hot primitives like the pipelined upcast). Wall time
  is *self time*: a frame's clock stops while a child span is open, so
  the report's wall column sums to the total without double counting.

The structured output (:meth:`to_dict`) is what the experiment engine
stores on profiled job records (schema v5) and what ``repro profile``
renders as a flame-style text report (:mod:`repro.perf.report`).
"""

import time
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional

#: Frame name for charges arriving before any phase/span was opened.
UNATTRIBUTED = "(unattributed)"


class PhaseStats:
    """Accumulated counters for one profile frame.

    Attributes:
        name: frame name; nested spans carry their ancestry as
            ``"parent/child"`` path components.
        rounds: CONGEST rounds charged while the frame was innermost.
        messages: ledger messages charged while the frame was innermost.
        wall_time: self wall-clock seconds (child-span time excluded).
    """

    __slots__ = ("name", "rounds", "messages", "wall_time")

    def __init__(self, name: str) -> None:
        self.name = name
        self.rounds = 0
        self.messages = 0
        self.wall_time = 0.0

    def to_dict(self, bandwidth_bits: Optional[int] = None) -> Dict[str, Any]:
        """JSON-able counters; ``bits`` is derived when B is known."""
        row: Dict[str, Any] = {
            "phase": self.name,
            "rounds": self.rounds,
            "messages": self.messages,
            "wall_time": self.wall_time,
        }
        if bandwidth_bits is not None:
            row["bits"] = self.messages * bandwidth_bits
        return row

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PhaseStats({self.name!r}, rounds={self.rounds}, "
            f"messages={self.messages}, wall={self.wall_time:.4f})"
        )


class PhaseProfiler:
    """Collects per-phase counters from one solver execution.

    Usage::

        profiler = PhaseProfiler()
        run = CongestRun(graph)
        profiler.attach(run)
        distributed_moat_growing(instance, run=run)
        profiler.finish()
        print(profiler.to_dict(bandwidth_bits=run.bandwidth_bits))

    Args:
        clock: monotonic time source (injectable for exact tests).

    The profiler is single-execution state: attach it to exactly one
    run (or hand it to one centralized solver) and read it afterwards.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self._stats: Dict[str, PhaseStats] = {}
        self._stack: List[str] = []
        self._last: Optional[float] = None

    # -- wiring ----------------------------------------------------------

    def attach(self, run: Any) -> Any:
        """Hook this profiler into a :class:`~repro.congest.run.CongestRun`.

        Subsequent ``set_phase`` / ``tick`` / ``charge_*`` calls on the
        run report to this profiler. Returns the run for chaining.
        """
        run.profiler = self
        return run

    # -- internal accounting ---------------------------------------------

    def _frame(self, name: str) -> PhaseStats:
        stats = self._stats.get(name)
        if stats is None:
            stats = self._stats[name] = PhaseStats(name)
        return stats

    def _top(self) -> PhaseStats:
        return self._frame(self._stack[-1] if self._stack else UNATTRIBUTED)

    def _flush_wall(self) -> None:
        """Credit elapsed wall time to the innermost open frame."""
        now = self._clock()
        if self._last is not None:
            self._top().wall_time += now - self._last
        self._last = now

    # -- hooks called by CongestRun --------------------------------------

    def switch_phase(self, name: Optional[str]) -> None:
        """Enter a new top-level phase (closes any open spans).

        Driven by ``run.set_phase``; ``None`` returns to the
        unattributed frame.
        """
        self._flush_wall()
        self._stack = [] if name is None else [name]

    def add_rounds(self, rounds: int) -> None:
        """Charge ``rounds`` CONGEST rounds to the innermost frame."""
        self._top().rounds += rounds

    def add_messages(self, count: int) -> None:
        """Charge ``count`` ledger messages to the innermost frame."""
        self._top().messages += count

    # -- spans for code without a ledger ---------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Open a nested frame ``"<current>/<name>"`` for the duration.

        Wall time inside the span is credited to the span frame only
        (self-time semantics); rounds/messages charged inside also land
        on the span. If :meth:`switch_phase` fires *inside* the span
        (e.g. a span wrapped around a whole solver whose run narrates
        phases), the phase switch wins: the span frame is gone from the
        stack already and the exit leaves the live phase frame in
        place instead of popping it.
        """
        qualified = f"{self._stack[-1]}/{name}" if self._stack else name
        self._flush_wall()
        self._stack.append(qualified)
        try:
            yield
        finally:
            self._flush_wall()
            if self._stack and self._stack[-1] == qualified:
                self._stack.pop()

    # -- reconstruction from a telemetry stream ---------------------------

    @classmethod
    def from_events(cls, events: Any) -> "PhaseProfiler":
        """Rebuild a profiler from captured telemetry ``phase`` events.

        The :class:`~repro.telemetry.LedgerBridge` narrates every phase
        transition onto the bus with the same counters this class
        collects, so the per-phase table is a *view over the event
        stream*: ``PhaseProfiler.from_events(sink.events).to_dict()``
        matches a directly-attached profiler's logical columns. Events
        of other kinds are ignored; repeated phases accumulate.
        """
        profiler = cls()
        for event in events:
            if event.get("event") != "phase":
                continue
            frame = profiler._frame(event.get("phase", UNATTRIBUTED))
            frame.rounds += int(event.get("rounds", 0))
            frame.messages += int(event.get("messages", 0))
            frame.wall_time += float(event.get("wall_time", 0.0))
        return profiler

    # -- results ---------------------------------------------------------

    def finish(self) -> None:
        """Stop the clock and close all frames (idempotent)."""
        self._flush_wall()
        self._stack = []
        self._last = None

    @property
    def phases(self) -> List[PhaseStats]:
        """All frames in first-seen order."""
        return list(self._stats.values())

    def to_dict(self, bandwidth_bits: Optional[int] = None) -> Dict[str, Any]:
        """The structured profile: per-phase rows plus totals.

        Args:
            bandwidth_bits: the run's message budget B; when given,
                every row (and the totals) carries a derived ``bits``
                field (messages × B).
        """
        rows = [s.to_dict(bandwidth_bits) for s in self._stats.values()]
        totals: Dict[str, Any] = {
            "rounds": sum(s.rounds for s in self._stats.values()),
            "messages": sum(s.messages for s in self._stats.values()),
            "wall_time": sum(s.wall_time for s in self._stats.values()),
        }
        if bandwidth_bits is not None:
            totals["bits"] = totals["messages"] * bandwidth_bits
        return {"phases": rows, "totals": totals}


@contextmanager
def maybe_span(profiler: Optional[PhaseProfiler], name: str) -> Iterator[None]:
    """``profiler.span(name)`` when a profiler is present, else a no-op.

    The instrumentation points in the solvers and primitives use this so
    the unprofiled path stays allocation-free.
    """
    if profiler is None:
        yield
    else:
        with profiler.span(name):
            yield
