"""Performance subsystem: profiling and the pipeline fast path.

The ROADMAP's north star is a system that "runs as fast as the hardware
allows"; this package is where the repo measures and then removes the
cost of the paper's Steiner-forest pipeline:

* :mod:`repro.perf.profiler` — :class:`PhaseProfiler`, the phase-level
  rounds / messages / bytes / wall-time instrumentation attached to a
  :class:`~repro.congest.run.CongestRun` (zero effect when detached —
  results, round counts, and cache keys are pinned byte-identical).
* :mod:`repro.perf.fastpath` — :class:`CompiledTopology` and
  :class:`FastCongestRun`, the flat-array ledger engine: the
  communication primitives detect the compiled topology and take
  conformance-pinned fast branches (cached neighbor tuples and ``repr``
  keys, batched Counter charging, incremental sorted buffers).
  :func:`make_ledger_run` threads the experiment engine's ``--backend``
  axis (including ``auto``) into the ledger-level solvers.
* :mod:`repro.perf.npkernels` — the optional vectorized ``numpy`` tier:
  :class:`NumpyCongestRun` (a :class:`FastCongestRun` subclass carrying
  a CSR :class:`NumpyTopology`) plus exact integer-dtype kernels for the
  regular primitives (BFS, Bellman–Ford, broadcast, convergecast, moat
  radius growth). Imported lazily/conditionally — with numpy absent the
  package still imports and the two-tier stack is unaffected.
* :mod:`repro.perf.report` — the flame-style text report behind the
  ``repro profile`` subcommand.

The measured speedups live in ``BENCH_profile.json``
(``benchmarks/bench_e18_profile.py``): the flatarray ledger is ≥ 2× the
reference ledger on the full distributed pipeline at n ≥ 256, and
``backend="auto"`` picks the winner per instance size while staying
byte-identical to reference everywhere.
"""

from repro.perf.fastpath import CompiledTopology, FastCongestRun, make_ledger_run
from repro.perf.profiler import PhaseProfiler, PhaseStats, maybe_span
from repro.perf.report import render_profile_report

try:  # The numpy tier is an optional extra: absence is not an error.
    from repro.perf.npkernels import NumpyCongestRun, NumpyTopology
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    NumpyCongestRun = None  # type: ignore[assignment,misc]
    NumpyTopology = None  # type: ignore[assignment,misc]

__all__ = [
    "CompiledTopology",
    "FastCongestRun",
    "NumpyCongestRun",
    "NumpyTopology",
    "make_ledger_run",
    "PhaseProfiler",
    "PhaseStats",
    "maybe_span",
    "render_profile_report",
]
