"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``solve`` — generate a seeded random instance and solve it with a chosen
  algorithm, printing weight / rounds / ratio.
* ``compare`` — run every algorithm on one instance and print the table.
* ``gadget`` — build a Figure 1 lower-bound gadget and report the
  dichotomy and cut traffic.
* ``sweep`` — run named scenarios from the engine's registry across
  parallel worker processes, persisting results to a store.
* ``batch`` — run ad-hoc scenario specs from a JSON file through the
  same engine.
* ``suite`` — list, inspect, or run curated scenario suites (``smoke``,
  ``adversity``, ``scaling``, ``nightly``) through the same engine.
* ``report`` — aggregate a result store into per-scenario tables.
* ``profile`` — run one registered scenario with phase-level profiling
  and print a flame-style per-phase rounds/messages/wall-time report.
* ``trace`` — summarize, diff, or export telemetry event streams: the
  per-phase rounds/messages/bits table of an instrumented run (or a
  captured JSONL stream), and logical-metric diffs across backends.
* ``bench`` — the ``bench check`` regression gate: re-measure the
  committed BENCH_*.json trajectory and compare.
* ``serve`` — run the solver daemon: a warm worker pool behind a unix
  (or TCP) socket, serving cache hits in microseconds, deduplicating
  identical in-flight requests across clients, and streaming job
  telemetry to subscribed connections.
* ``submit`` — send one or more scenario requests to a running daemon.
* ``ping`` — liveness / stats probe of a running daemon.
* ``store`` — result-store utilities: ``inspect`` (rows, schema
  histogram, index status), ``migrate`` (rewrite every row at the
  current schema), ``reindex`` (rebuild the sidecar key index).

The engine subcommands (``sweep``/``batch``/``suite``/``profile``)
share ``--quiet`` / ``--verbose`` / ``--telemetry PATH`` flags mapping
onto telemetry console-sink levels and a JSONL event stream.

The algorithm table lives in :mod:`repro.engine.algorithms`, shared with
the experiment engine and the benchmarks.
"""

import argparse
import json
import os
import random
import sys
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import (
    ALGORITHMS,
    REGISTRY,
    SUITES,
    ResultStore,
    ScenarioSpec,
    expand_suites,
    render_report,
    run_suite,
)
from repro.engine.jobs import expand_jobs
from repro.engine.runner import stderr_log
from repro.exact import steiner_forest_cost
from repro.lowerbounds import (
    cr_dichotomy_holds,
    dsf_cr_gadget,
    dsf_ic_gadget,
    ic_dichotomy_holds,
    measure_cut_traffic,
    random_disjointness_sets,
)
from repro.netmodel import NETWORK_MODELS, normalize_network
from repro.perf import render_profile_report
from repro.simbackend import BACKENDS, normalize_backend
from repro.workloads import TERMINAL_PLACEMENTS, random_instance

DEFAULT_STORE = "results/experiments.jsonl"
DEFAULT_FLIGHT_DIR = "results/flight"


def _parse_spec_params(raw_params: str, kind: str) -> Dict[str, Any]:
    """Parse ``key=value,...`` (values parse as JSON, with bracket-aware
    comma splitting so ``victims=[0,1]`` works)."""
    params: Dict[str, Any] = {}
    depth, item, items = 0, "", []
    for char in raw_params:
        if char in "[{(":
            depth += 1
        elif char in ")}]":
            depth -= 1
        if char == "," and depth == 0:
            items.append(item)
            item = ""
        else:
            item += char
    if item:
        items.append(item)
    for entry in items:
        key, sep, value = entry.partition("=")
        if not sep:
            raise ValueError(f"bad {kind} parameter {entry!r} (want key=value)")
        try:
            params[key.strip()] = json.loads(value)
        except json.JSONDecodeError:
            params[key.strip()] = value.strip()
    return params


def parse_network_arg(text: str) -> Dict[str, Any]:
    """Parse a ``--network`` value into a canonical network spec.

    Accepts a model name (``lossy``), a name with ``key=value``
    parameters (``lossy:drop_p=0.2,retransmit=2``), or a full JSON spec
    object.
    """
    text = text.strip()
    if text.startswith("{"):
        # The canonical normalizer rejects misplaced keys, so a
        # parameter nested one level too shallow errors instead of
        # silently running the model with defaults.
        return normalize_network(json.loads(text))
    name, _, raw_params = text.partition(":")
    return {"model": name.strip(), "params": _parse_spec_params(raw_params, "network")}


def parse_backend_arg(text: str) -> Dict[str, Any]:
    """Parse a ``--backend`` value into a canonical backend spec.

    Accepts an engine name (``flatarray``), a name with ``key=value``
    parameters (``sharded:num_shards=4``), or a full JSON spec object.
    """
    text = text.strip()
    if text.startswith("{"):
        # The canonical normalizer rejects misplaced keys, so a
        # parameter nested one level too shallow errors instead of
        # silently running the engine with defaults.
        return normalize_backend(json.loads(text))
    name, _, raw_params = text.partition(":")
    return {"name": name.strip(), "params": _parse_spec_params(raw_params, "backend")}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Steiner forest (Lenzen & Patt-Shamir, "
        "PODC 2014) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one random instance")
    solve.add_argument("--n", type=int, default=20, help="number of nodes")
    solve.add_argument("--k", type=int, default=3, help="input components")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="distributed"
    )
    solve.add_argument(
        "--exact",
        action="store_true",
        help="also compute the exact optimum (exponential time)",
    )

    compare = sub.add_parser("compare", help="run all algorithms")
    compare.add_argument("--n", type=int, default=18)
    compare.add_argument("--k", type=int, default=3)
    compare.add_argument("--seed", type=int, default=0)

    gadget = sub.add_parser("gadget", help="build a Figure 1 gadget")
    gadget.add_argument("--kind", choices=("cr", "ic"), default="ic")
    gadget.add_argument("--universe", type=int, default=8)
    gadget.add_argument("--seed", type=int, default=0)
    gadget.add_argument(
        "--intersecting", action="store_true",
        help="force A ∩ B ≠ ∅",
    )

    sweep = sub.add_parser(
        "sweep", help="run registered scenarios through the engine"
    )
    sweep.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario to run (repeatable; default: every registered one)",
    )
    sweep.add_argument("--list", action="store_true", help="list scenarios")
    _add_engine_options(sweep)

    batch = sub.add_parser(
        "batch", help="run ad-hoc scenario specs from a JSON file"
    )
    batch.add_argument(
        "spec", help="path to a JSON file with one spec object or a list"
    )
    _add_engine_options(batch)

    suite = sub.add_parser(
        "suite", help="list, inspect, or run curated scenario suites"
    )
    suite.add_argument(
        "action",
        choices=("list", "show", "run"),
        help="list all suites, show members of named suites, or run them",
    )
    suite.add_argument(
        "names",
        nargs="*",
        metavar="SUITE",
        help="suite names (required for show/run)",
    )
    _add_engine_options(suite)

    profile = sub.add_parser(
        "profile",
        help="profile a scenario's pipeline per phase (flame-style report)",
    )
    profile.add_argument(
        "--scenario",
        default="grid-rounds",
        metavar="NAME",
        help="registered scenario to profile (default: grid-rounds, the "
        "paper-pipeline Section 4.1 vs 4.2 workload)",
    )
    profile.add_argument(
        "--algorithm",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to a subset of the scenario's algorithms (repeatable)",
    )
    _add_engine_options(profile)

    trace = sub.add_parser(
        "trace",
        help="summarize, diff, or export telemetry event streams",
    )
    trace_sub = trace.add_subparsers(dest="action", required=True)

    trace_summary = trace_sub.add_parser(
        "summary",
        help="per-phase rounds/messages/bits table of a run or stream",
    )
    trace_summary.add_argument(
        "events",
        nargs="?",
        default=None,
        metavar="EVENTS",
        help="captured telemetry JSONL to summarize (default: run a "
        "fresh instrumented distributed run)",
    )
    trace_summary.add_argument(
        "--backend",
        default="reference",
        metavar="ENGINE",
        help="ledger engine for the instrumented run (default: reference)",
    )
    _add_trace_workload_options(trace_summary)

    trace_diff = trace_sub.add_parser(
        "diff",
        help="diff two streams' (or two backends') logical metrics",
    )
    trace_diff.add_argument(
        "a",
        metavar="A",
        help="telemetry JSONL path, or a ledger engine name to run",
    )
    trace_diff.add_argument(
        "b",
        metavar="B",
        help="telemetry JSONL path, or a ledger engine name to run",
    )
    _add_trace_workload_options(trace_diff)

    trace_export = trace_sub.add_parser(
        "export",
        help="filter/re-emit a captured telemetry stream as JSONL",
    )
    trace_export.add_argument(
        "events", metavar="EVENTS", help="captured telemetry JSONL"
    )
    trace_export.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the filtered stream here (default: stdout)",
    )
    trace_export.add_argument(
        "--kind",
        action="append",
        default=None,
        metavar="EVENT",
        help="keep only events of this kind (repeatable, e.g. phase)",
    )
    trace_export.add_argument(
        "--run",
        default=None,
        metavar="RUN_ID",
        help="keep only events of this run id",
    )

    bench = sub.add_parser(
        "bench", help="benchmark utilities (regression gate)"
    )
    bench_sub = bench.add_subparsers(dest="action", required=True)
    bench_check = bench_sub.add_parser(
        "check",
        help="re-measure the committed BENCH_*.json trajectory and compare",
    )
    bench_check.add_argument(
        "--file",
        action="append",
        default=None,
        metavar="PATH",
        help="committed benchmark JSON to gate (repeatable; default: "
        "BENCH_profile.json and BENCH_backends.json where present)",
    )
    bench_check.add_argument(
        "--max-n",
        type=int,
        default=64,
        help="skip committed entries above this instance size (default 64)",
    )
    bench_check.add_argument(
        "--tolerance",
        type=float,
        default=50.0,
        help="wall-time slack multiplier vs committed seconds (default 50; "
        "logical metrics always compare exactly)",
    )
    bench_check.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="stream the gate's telemetry events to PATH as JSONL",
    )

    serve = sub.add_parser(
        "serve",
        help="run the solver daemon (warm pool behind a socket)",
    )
    _add_serve_endpoint(serve)
    serve.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"result store path (JSONL; default {DEFAULT_STORE})",
    )
    serve.add_argument(
        "--no-store",
        action="store_true",
        help="serve from memory only (nothing persists across restarts)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="warm worker-process count (default: cpu count)",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="jobs inside the pool at once (default: worker count)",
    )
    serve.add_argument(
        "--max-pending",
        type=int,
        default=1024,
        help="admission bound: jobs admitted but unfinished before "
        "submits are rejected as overloaded (default 1024)",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=100.0,
        help="per-connection request rate cap in requests/s (default 100)",
    )
    serve.add_argument(
        "--burst",
        type=float,
        default=200.0,
        help="per-connection burst allowance (default 200)",
    )
    verbosity = serve.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--quiet", action="store_true",
        help="no per-job progress lines on stderr",
    )
    verbosity.add_argument(
        "--verbose", action="store_true",
        help="print every telemetry event on stderr",
    )
    serve.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="stream the daemon's telemetry events to PATH as JSONL",
    )
    serve.add_argument(
        "--flight-dir",
        default=DEFAULT_FLIGHT_DIR,
        metavar="DIR",
        help="flight-recorder dump directory "
        f"(default {DEFAULT_FLIGHT_DIR})",
    )
    serve.add_argument(
        "--flight-events",
        type=int,
        default=512,
        metavar="N",
        help="flight-recorder ring capacity in events (default 512)",
    )
    serve.add_argument(
        "--no-flight",
        action="store_true",
        help="run without the flight recorder",
    )
    serve.add_argument(
        "--store-refresh",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="re-read the store on this cadence so rows appended by "
        "other processes (CLI sweeps) become cache hits (0 = off)",
    )

    store_cmd = sub.add_parser(
        "store",
        help="result-store utilities (inspect / migrate / reindex)",
    )
    store_sub = store_cmd.add_subparsers(dest="action", required=True)
    store_inspect = store_sub.add_parser(
        "inspect",
        help="row count, schema-version histogram, and index status",
    )
    store_inspect.add_argument("path", metavar="STORE",
                               help="JSONL store file")
    store_migrate = store_sub.add_parser(
        "migrate",
        help="rewrite every row at the current schema (atomic replace)",
    )
    store_migrate.add_argument("path", metavar="STORE",
                               help="JSONL store file")
    store_migrate.add_argument(
        "--output",
        default=None,
        metavar="PATH",
        help="write the migrated store here instead of in-place",
    )
    store_migrate.add_argument(
        "--dry-run",
        action="store_true",
        help="report what would be rewritten without writing anything",
    )
    store_reindex = store_sub.add_parser(
        "reindex",
        help="force-rebuild the sidecar key index from the JSONL",
    )
    store_reindex.add_argument("path", metavar="STORE",
                               help="JSONL store file")

    submit = sub.add_parser(
        "submit", help="submit scenario requests to a running daemon"
    )
    _add_serve_endpoint(submit)
    submit.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="registered scenario to request (repeatable)",
    )
    submit.add_argument(
        "--spec",
        default=None,
        metavar="FILE",
        help="JSON file with one ScenarioSpec object or a list of them",
    )
    submit.add_argument(
        "--stream",
        action="store_true",
        help="subscribe to job-lifecycle events (printed on stderr)",
    )
    submit.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the returned records to PATH as JSONL",
    )

    ping = sub.add_parser(
        "ping", help="liveness / stats probe of a running daemon"
    )
    _add_serve_endpoint(ping)
    ping.add_argument(
        "--stats",
        action="store_true",
        help="also fetch and print the server's counters",
    )

    metrics = sub.add_parser(
        "metrics",
        help="scrape a running daemon's metrics registry",
    )
    _add_serve_endpoint(metrics)
    metrics_format = metrics.add_mutually_exclusive_group()
    metrics_format.add_argument(
        "--prom",
        action="store_true",
        help="Prometheus text exposition (the default)",
    )
    metrics_format.add_argument(
        "--json",
        action="store_true",
        help="raw registry snapshot as pretty-printed JSON",
    )

    top = sub.add_parser(
        "top",
        help="live ANSI dashboard over a running daemon",
    )
    _add_serve_endpoint(top)
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between polls (default 2)",
    )
    top.add_argument(
        "--count",
        type=int,
        default=0,
        help="stop after this many screens (default 0 = until ^C)",
    )

    flight = sub.add_parser(
        "flight",
        help="inspect the daemon's flight-recorder dumps",
    )
    flight_sub = flight.add_subparsers(dest="action", required=True)
    flight_show = flight_sub.add_parser(
        "show",
        help="print the last events of a flight dump, human-readable",
    )
    flight_dump = flight_sub.add_parser(
        "dump",
        help="re-emit a flight dump's events as JSONL",
    )
    for action in (flight_show, flight_dump):
        action.add_argument(
            "path",
            nargs="?",
            default=DEFAULT_FLIGHT_DIR,
            help="a dump file, or a directory to take the newest dump "
            f"from (default {DEFAULT_FLIGHT_DIR})",
        )
        action.add_argument(
            "--last",
            type=int,
            default=0,
            metavar="N",
            help="only the last N events (default 0 = all retained)",
        )
    flight_dump.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the JSONL to PATH instead of stdout",
    )

    report = sub.add_parser("report", help="aggregate a result store")
    report.add_argument("--store", default=DEFAULT_STORE)
    report.add_argument(
        "--scenario", default=None, help="restrict to one scenario"
    )
    report.add_argument(
        "--network",
        default=None,
        metavar="MODEL",
        help="restrict to one network model "
        f"({', '.join(sorted(NETWORK_MODELS))})",
    )
    report.add_argument(
        "--backend",
        default=None,
        metavar="ENGINE",
        help="restrict to one simulation backend "
        f"({', '.join(sorted(BACKENDS))})",
    )
    report.add_argument(
        "--placement",
        default=None,
        metavar="STRATEGY",
        help="restrict to one terminal placement "
        f"({', '.join(sorted(TERMINAL_PLACEMENTS))})",
    )
    report.add_argument(
        "--html",
        default=None,
        metavar="OUT",
        help="render a self-contained HTML run report instead of the "
        "store aggregation (requires --events)",
    )
    report.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="captured telemetry JSONL stream to render with --html",
    )
    return parser


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"result store path (JSONL; default {DEFAULT_STORE})",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="run without persisting (disables caching)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker process count"
    )
    parser.add_argument(
        "--serial",
        action="store_true",
        help="run jobs in-process instead of worker processes",
    )
    parser.add_argument(
        "--network",
        action="append",
        default=None,
        metavar="SPEC",
        help="override the network axis (repeatable): a model name "
        f"({', '.join(sorted(NETWORK_MODELS))}), NAME:key=value,..., "
        "or a JSON spec object",
    )
    parser.add_argument(
        "--backend",
        action="append",
        default=None,
        metavar="SPEC",
        help="override the simulation-backend axis (repeatable): an "
        f"engine name ({', '.join(sorted(BACKENDS))}), "
        "NAME:key=value,..., or a JSON spec object",
    )
    verbosity = parser.add_mutually_exclusive_group()
    verbosity.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-job progress lines on stderr",
    )
    verbosity.add_argument(
        "--verbose",
        action="store_true",
        help="print every telemetry event on stderr (structured), not "
        "just the progress lines",
    )
    parser.add_argument(
        "--telemetry",
        default=None,
        metavar="PATH",
        help="stream the run's telemetry events to PATH as JSONL",
    )


def _add_serve_endpoint(parser: argparse.ArgumentParser) -> None:
    """Daemon endpoint flags shared by ``serve``/``submit``/``ping``."""
    parser.add_argument(
        "--socket",
        default=None,
        metavar="PATH",
        help="unix socket path (the usual endpoint)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP host when using --port (default 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (alternative to --socket)",
    )


def _add_trace_workload_options(parser: argparse.ArgumentParser) -> None:
    """Workload knobs for ``repro trace``'s instrumented runs (ignored
    when summarizing/diffing captured streams)."""
    parser.add_argument(
        "--n", type=int, default=64, help="number of nodes (default 64)"
    )
    parser.add_argument(
        "--k", type=int, default=3, help="input components (default 3)"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--p", type=float, default=0.35, help="edge probability (default 0.35)"
    )
    parser.add_argument(
        "--algorithm",
        choices=sorted(ALGORITHMS),
        default="distributed",
        help="ledger-narrating solver to instrument (default: distributed)",
    )


def _cmd_solve(args) -> int:
    rng = random.Random(args.seed)
    inst = random_instance(args.n, args.k, rng)
    result = ALGORITHMS[args.algorithm].run(inst, random.Random(args.seed))
    result.solution.assert_feasible(inst)
    rounds = getattr(result, "rounds", None)
    print(f"algorithm : {args.algorithm}")
    print(f"instance  : n={args.n} k={args.k} seed={args.seed}")
    print(f"weight    : {result.solution.weight}")
    if rounds is not None:
        print(f"rounds    : {rounds}")
    if args.exact:
        opt = steiner_forest_cost(inst)
        ratio = result.solution.weight / opt if opt else 1.0
        print(f"optimum   : {opt}")
        print(f"ratio     : {ratio:.3f}")
    return 0


def _cmd_compare(args) -> int:
    rng = random.Random(args.seed)
    inst = random_instance(args.n, args.k, rng)
    opt = steiner_forest_cost(inst)
    print(f"instance n={args.n} k={args.k} seed={args.seed} OPT={opt}")
    print(f"{'algorithm':12s} {'weight':>7s} {'ratio':>7s} {'rounds':>7s}")
    for name in sorted(ALGORITHMS):
        result = ALGORITHMS[name].run(inst, random.Random(args.seed))
        weight = result.solution.weight
        rounds = getattr(result, "rounds", "-")
        ratio = weight / opt if opt else 1.0
        print(f"{name:12s} {weight:7d} {ratio:7.3f} {rounds!s:>7s}")
    return 0


def _cmd_gadget(args) -> int:
    rng = random.Random(args.seed)
    a, b = random_disjointness_sets(args.universe, rng, args.intersecting)
    if args.kind == "cr":
        gadget = dsf_cr_gadget(args.universe, a, b)
        ok = cr_dichotomy_holds(gadget)
    else:
        gadget = dsf_ic_gadget(args.universe, a, b)
        ok = ic_dichotomy_holds(gadget)
    bits = measure_cut_traffic(gadget)
    print(f"gadget    : DSF-{args.kind.upper()} (Figure 1)")
    print(f"universe  : {args.universe}  A={sorted(a)}  B={sorted(b)}")
    print(f"A∩B≠∅     : {gadget.intersecting}")
    print(f"dichotomy : {'holds' if ok else 'VIOLATED'}")
    print(f"cut bits  : {bits}")
    return 0 if ok else 1


def _apply_axis_overrides(
    args, specs: List[ScenarioSpec]
) -> Optional[List[ScenarioSpec]]:
    """Apply ``--network`` / ``--backend`` overrides; None on bad input
    (the error is printed to stderr)."""
    if args.network:
        try:
            networks = [parse_network_arg(text) for text in args.network]
            specs = [replace(spec, network=networks) for spec in specs]
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: invalid --network: {exc}", file=sys.stderr)
            return None
    if args.backend:
        try:
            backends = [parse_backend_arg(text) for text in args.backend]
            specs = [replace(spec, backend=backends) for spec in specs]
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: invalid --backend: {exc}", file=sys.stderr)
            return None
    return specs


def _engine_telemetry(args, specs: List[ScenarioSpec]) -> Tuple[Any, Any]:
    """``(telemetry, log)`` for an engine run per the verbosity flags.

    Default (no flags) keeps the legacy path — ``log=stderr_log``, the
    runner's private compat bus — so output stays byte-identical. Any
    flag switches to an explicit bus: ``--telemetry`` adds a JSONL
    sink, ``--verbose`` a full-event console sink, ``--quiet`` drops
    the console entirely (the JSONL sink still records).
    """
    if not args.quiet and not args.verbose and args.telemetry is None:
        return None, stderr_log
    from repro.telemetry import ConsoleSink, JsonlSink, RunManifest, Telemetry

    sinks: List[Any] = []
    if args.telemetry is not None:
        sinks.append(JsonlSink(args.telemetry))
    if args.verbose:
        sinks.append(ConsoleSink(verbose=True))
    elif not args.quiet:
        sinks.append(ConsoleSink(verbose=False))
    manifest = RunManifest(
        workload={"scenarios": [spec.name for spec in specs]}
    )
    return Telemetry(manifest=manifest, sinks=sinks), None


def _run_engine(args, specs: List[ScenarioSpec]) -> int:
    overridden = _apply_axis_overrides(args, specs)
    if overridden is None:
        return 2
    specs = overridden
    store = None if args.no_store else ResultStore(args.store)
    telemetry, log = _engine_telemetry(args, specs)
    try:
        all_stats = run_suite(
            specs,
            store=store,
            max_workers=args.workers,
            parallel=not args.serial,
            log=log,
            telemetry=telemetry,
        )
    finally:
        if telemetry is not None:
            telemetry.close()
    records = []
    for stats in all_stats:
        print(
            f"scenario {stats.scenario:20s} "
            f"executed={stats.executed:4d} cached={stats.cached:4d}"
        )
        records.extend(stats.records)
    if store is not None:
        print(f"store     : {store.path} ({len(store)} records)")
    print()
    print(render_report(records))
    return 0


def _cmd_sweep(args) -> int:
    if args.list:
        print(f"{'scenario':16s} {'family':10s} {'networks':28s} {'algorithms'}")
        for name in REGISTRY.names():
            spec = REGISTRY.get(name)
            networks = ", ".join(spec.network_names)
            print(
                f"{name:16s} {spec.family:10s} {networks:28s} "
                f"{', '.join(spec.algorithms)}"
            )
        return 0
    try:
        specs = REGISTRY.specs(args.scenario or ())
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    return _run_engine(args, specs)


def _cmd_batch(args) -> int:
    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if isinstance(data, dict):
            data = [data]
        specs = [ScenarioSpec.from_dict(entry) for entry in data]
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
        print(f"error: invalid spec file {args.spec}: {exc}", file=sys.stderr)
        return 2
    return _run_engine(args, specs)


def _spec_placements(spec: ScenarioSpec) -> str:
    """The placement strategies a spec's grid sweeps, for display."""
    value = spec.grid.get("placement", "uniform")
    entries = value if isinstance(value, (list, tuple)) else [value]
    return ", ".join(str(entry) for entry in entries)


def _cmd_suite(args) -> int:
    if args.action == "list":
        if args.names:
            print("error: 'suite list' takes no suite names", file=sys.stderr)
            return 2
        print(f"{'suite':10s} {'scenarios':>9s} {'jobs':>6s} description")
        for name in SUITES.names():
            suite = SUITES.get(name)
            print(
                f"{name:10s} {len(suite.scenarios):9d} "
                f"{suite.job_count():6d} {suite.description}"
            )
        return 0
    if not args.names:
        print(f"error: 'suite {args.action}' needs suite names", file=sys.stderr)
        return 2
    try:
        specs = expand_suites(SUITES, args.names)
    except (KeyError, ValueError) as exc:
        # KeyError: unknown suite name; ValueError: requested suites
        # define conflicting specs under one scenario name.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.action == "show":
        print(
            f"{'scenario':20s} {'family':12s} {'placements':22s} "
            f"{'jobs':>5s} {'algorithms'}"
        )
        for spec in specs:
            print(
                f"{spec.name:20s} {spec.family:12s} "
                f"{_spec_placements(spec):22s} {len(expand_jobs(spec)):5d} "
                f"{', '.join(spec.algorithms)}"
            )
        return 0
    return _run_engine(args, specs)


def _cmd_profile(args) -> int:
    try:
        spec = REGISTRY.get(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.algorithm:
        unknown = [a for a in args.algorithm if a not in spec.algorithms]
        if unknown:
            print(
                f"error: scenario {spec.name!r} does not run {unknown}; "
                f"choose from {list(spec.algorithms)}",
                file=sys.stderr,
            )
            return 2
        spec = replace(spec, algorithms=tuple(args.algorithm))
    # Profiled jobs hash to their own cache keys, so a profile run never
    # collides with (or poisons) unprofiled sweep results in the store —
    # and re-profiling an unchanged scenario is absorbed by the cache.
    spec = replace(spec, profile=True)
    specs = _apply_axis_overrides(args, [spec])
    if specs is None:
        return 2
    store = None if args.no_store else ResultStore(args.store)
    # Unlike sweep/batch, profiling defaults to in-process execution:
    # the report's wall-time column is the whole point, and a saturated
    # worker pool would measure scheduler contention instead of the
    # pipeline. --workers N is the explicit opt-in to parallelism.
    telemetry, log = _engine_telemetry(args, specs)
    try:
        all_stats = run_suite(
            specs,
            store=store,
            max_workers=args.workers,
            parallel=args.workers is not None and not args.serial,
            log=log,
            telemetry=telemetry,
        )
    finally:
        if telemetry is not None:
            telemetry.close()
    records = [record for stats in all_stats for record in stats.records]
    print(render_profile_report(records))
    return 0


def _instrumented_trace(args, backend: str) -> List[Dict[str, Any]]:
    """Run the chosen ledger-narrating solver once with a telemetry bus
    attached; returns the captured event stream (``repro trace``'s
    fresh-run mode)."""
    from repro.perf import make_ledger_run
    from repro.telemetry import MemorySink, RunManifest, Telemetry

    algorithm = ALGORITHMS[args.algorithm]
    if not algorithm.accepts_run:
        raise ValueError(
            f"algorithm {args.algorithm!r} does not narrate a ledger; "
            "choose a run-accepting solver (e.g. distributed, sublinear)"
        )
    instance = random_instance(
        args.n, args.k, random.Random(args.seed), p=args.p
    )
    sink = MemorySink()
    manifest = RunManifest(
        workload={
            "algorithm": args.algorithm,
            "n": args.n,
            "k": args.k,
            "p": args.p,
            "seed": args.seed,
        },
        backend=normalize_backend(backend),
    )
    with Telemetry(manifest=manifest, sinks=[sink]) as telemetry:
        run = make_ledger_run(backend, instance.graph)
        bridge = telemetry.attach_ledger(run)
        with telemetry.span("solve", algorithm=args.algorithm, backend=backend):
            algorithm.run(instance, random.Random(args.seed), run=run)
        bridge.finish()
    return sink.events


def _cmd_trace(args) -> int:
    from repro.telemetry import (
        diff_streams,
        encode_event,
        read_events,
        render_summary,
    )

    if args.action == "summary":
        if args.events is not None:
            try:
                events = read_events(args.events)
            except (OSError, json.JSONDecodeError) as exc:
                print(
                    f"error: cannot read events {args.events}: {exc}",
                    file=sys.stderr,
                )
                return 2
            title = str(args.events)
        else:
            try:
                events = _instrumented_trace(args, args.backend)
            except (KeyError, ValueError) as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
            title = (
                f"{args.algorithm} n={args.n} k={args.k} "
                f"backend={args.backend}"
            )
        print(render_summary(events, title=title))
        return 0

    if args.action == "diff":
        try:
            if Path(args.a).is_file() and Path(args.b).is_file():
                events_a = read_events(args.a)
                events_b = read_events(args.b)
            else:
                # Not two stream files: treat A/B as ledger engines and
                # run the same workload on each (the conformance view).
                events_a = _instrumented_trace(args, args.a)
                events_b = _instrumented_trace(args, args.b)
        except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        identical, report = diff_streams(
            events_a, events_b, label_a=args.a, label_b=args.b
        )
        print(report)
        return 0 if identical else 1

    # export: filter a captured stream and re-emit it as JSONL.
    try:
        events = read_events(args.events)
    except (OSError, json.JSONDecodeError) as exc:
        print(
            f"error: cannot read events {args.events}: {exc}", file=sys.stderr
        )
        return 2
    if args.kind:
        wanted = set(args.kind)
        events = [e for e in events if e.get("event") in wanted]
    if args.run:
        events = [e for e in events if e.get("run_id") == args.run]
    lines = [encode_event(event) for event in events]
    if args.out is not None:
        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(
            "\n".join(lines) + ("\n" if lines else ""), encoding="utf-8"
        )
        print(f"exported {len(lines)} events to {args.out}")
    else:
        for line in lines:
            print(line)
    return 0


def _cmd_bench(args) -> int:
    from repro.telemetry import JsonlSink, RunManifest, Telemetry, check_benches

    paths = args.file
    if not paths:
        paths = [
            name
            for name in (
                "BENCH_profile.json",
                "BENCH_backends.json",
                "BENCH_serve.json",
                "BENCH_observe.json",
                "BENCH_store.json",
                "BENCH_numpy.json",
            )
            if Path(name).is_file()
        ]
    if not paths:
        print(
            "error: no committed BENCH_*.json found; pass --file",
            file=sys.stderr,
        )
        return 2
    telemetry = None
    if args.telemetry is not None:
        telemetry = Telemetry(
            manifest=RunManifest(workload={"gate": "bench-check"}),
            sinks=[JsonlSink(args.telemetry)],
        )
    try:
        report = check_benches(
            paths,
            max_n=args.max_n,
            tolerance=args.tolerance,
            telemetry=telemetry,
        )
    except (OSError, json.JSONDecodeError, ValueError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if telemetry is not None:
            telemetry.close()
    print(report.render())
    return 0 if report.ok else 1


def _serve_telemetry(args) -> Any:
    """The daemon's telemetry bus per the verbosity flags. Unlike the
    batch commands there is no legacy log path — the daemon always runs
    on an explicit bus (the welcome frame advertises its run id)."""
    from repro.telemetry import ConsoleSink, JsonlSink, RunManifest, Telemetry

    sinks: List[Any] = []
    if args.telemetry is not None:
        sinks.append(JsonlSink(args.telemetry))
    if args.verbose:
        sinks.append(ConsoleSink(verbose=True))
    elif not args.quiet:
        sinks.append(ConsoleSink(verbose=False))
    manifest = RunManifest(workload={"service": "repro-serve"})
    return Telemetry(manifest=manifest, sinks=sinks)


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from repro.serve.server import ServeServer
    from repro.serve.service import SolverService

    if args.socket is None and args.port is None:
        print("error: serve needs --socket PATH or --port N", file=sys.stderr)
        return 2
    store = None if args.no_store else ResultStore(args.store)
    telemetry = _serve_telemetry(args)
    flight = None
    if not args.no_flight:
        from repro.telemetry import FlightRecorder

        flight = telemetry.add_sink(
            FlightRecorder(args.flight_dir, capacity=args.flight_events)
        )

    async def _run() -> None:
        service = SolverService(
            store=store,
            max_workers=args.workers,
            max_inflight=args.max_inflight,
            max_pending=args.max_pending,
            telemetry=telemetry,
        )
        await service.start()
        server = ServeServer(
            service,
            rate=args.rate,
            burst=args.burst,
            store_refresh=args.store_refresh,
        )
        if args.socket is not None:
            await server.start_unix(args.socket)
            endpoint = f"unix:{args.socket}"
        else:
            await server.start_tcp(args.host, args.port)
            endpoint = f"tcp:{args.host}:{args.port}"
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        print(
            f"repro serve: listening on {endpoint} "
            f"(workers={service.max_workers}, "
            f"cached_keys={len(service._hot)})",
            file=sys.stderr,
        )
        await server.serve_until(stop)
        print("repro serve: drained and stopped", file=sys.stderr)

    clean_exit = False
    try:
        asyncio.run(_run())
        clean_exit = True
    finally:
        # The drain/crash flush discipline: sinks are fsync'd, the bus
        # closed (emitting the final metrics snapshot + run_end), and
        # the flight recorder dumps its ring — *after* close, so the
        # dump's tail carries the final metrics and run_end events.
        telemetry.flush()
        telemetry.close()
        if flight is not None:
            dump = flight.dump("drain" if clean_exit else "error")
            if dump is not None:
                print(f"repro serve: flight dump {dump}", file=sys.stderr)
    return 0


def _cmd_metrics(args) -> int:
    from repro.serve.client import ServeClient, ServeClientError
    from repro.telemetry import render_json, render_prometheus

    try:
        with ServeClient(
            socket_path=args.socket, host=args.host, port=args.port,
            name="repro-metrics",
        ) as client:
            frame = client.metrics()
    except ServeClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    snapshot = frame.get("metrics") or {}
    if args.json:
        print(render_json(snapshot))
    else:
        sys.stdout.write(render_prometheus(snapshot))
    return 0


def _cmd_top(args) -> int:
    from repro.serve.top import run_top

    return run_top(
        socket_path=args.socket,
        host=args.host,
        port=args.port,
        interval=args.interval,
        count=args.count,
    )


def _cmd_flight(args) -> int:
    from repro.telemetry import (
        encode_event,
        format_event,
        latest_dump,
        read_events,
    )

    path = Path(args.path)
    if path.is_dir():
        newest = latest_dump(path)
        if newest is None:
            print(f"error: no flight dumps in {path}", file=sys.stderr)
            return 1
        path = newest
    if not path.is_file():
        print(f"error: no flight dump at {path}", file=sys.stderr)
        return 1
    events = read_events(path)
    if args.last > 0:
        events = events[-args.last :]
    if args.action == "show":
        print(f"flight dump {path} — {len(events)} events")
        for event in events:
            print(format_event(event))
        return 0
    payload = "".join(encode_event(event) + "\n" for event in events)
    if args.out is not None:
        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(payload, encoding="utf-8")
        print(f"wrote {len(events)} events to {args.out}")
    else:
        sys.stdout.write(payload)
    return 0


def _cmd_submit(args) -> int:
    from repro.serve.client import ServeClient, ServeClientError

    requests: List[Tuple[str, Dict[str, Any]]] = []
    if args.spec is not None:
        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if isinstance(data, dict):
                data = [data]
            for entry in data:
                requests.append((str(entry.get("name", "<spec>")), entry))
        except (OSError, json.JSONDecodeError, AttributeError) as exc:
            print(
                f"error: invalid spec file {args.spec}: {exc}",
                file=sys.stderr,
            )
            return 2
    scenarios = list(args.scenario or ())
    if not requests and not scenarios:
        print(
            "error: submit needs --scenario NAME and/or --spec FILE",
            file=sys.stderr,
        )
        return 2

    def show(event: Dict[str, Any]) -> None:
        print(
            f"  [{event.get('event', '?')}] "
            f"{event.get('scenario', '')} "
            f"{event.get('status', '')} "
            f"({event.get('done', '?')}/{event.get('total', '?')})",
            file=sys.stderr,
        )

    on_event = show if args.stream else None
    records: List[Dict[str, Any]] = []
    try:
        with ServeClient(
            socket_path=args.socket, host=args.host, port=args.port
        ) as client:
            for name in scenarios:
                outcome = client.submit(
                    scenario=name, stream=args.stream, on_event=on_event
                )
                _print_submit_row(name, outcome)
                records.extend(outcome.records)
            for name, payload in requests:
                outcome = client.submit(
                    spec=payload, stream=args.stream, on_event=on_event
                )
                _print_submit_row(name, outcome)
                records.extend(outcome.records)
    except ServeClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.out is not None:
        target = Path(args.out)
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            for record in records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
        print(f"wrote {len(records)} records to {args.out}")
    return 0


def _print_submit_row(name: str, outcome: Any) -> None:
    print(
        f"scenario {name:20s} executed={outcome.executed:4d} "
        f"cached={outcome.cached:4d} shared={outcome.shared:4d}"
    )


def _cmd_ping(args) -> int:
    from repro.serve.client import ServeClient, ServeClientError

    try:
        with ServeClient(
            socket_path=args.socket, host=args.host, port=args.port
        ) as client:
            pong = client.ping()
            stats = client.stats() if args.stats else None
    except ServeClientError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(f"server    : {pong.get('server')}")
    print(f"uptime    : {pong.get('uptime')}s")
    print(f"draining  : {pong.get('draining')}")
    if stats is not None:
        for key in sorted(stats):
            if key in ("type", "id", "server"):
                continue
            print(f"{key:14s}: {stats[key]}")
    return 0


def _cmd_store(args) -> int:
    from collections import Counter

    from repro.engine.index import StoreIndex, scan_rows
    from repro.engine.migration import CHAIN
    from repro.engine.store import SCHEMA_VERSION

    path = Path(args.path)
    if not path.exists():
        print(f"error: no store at {path}", file=sys.stderr)
        return 2
    if args.action == "inspect":
        rows = 0
        versions: Counter = Counter()
        keys = set()
        duplicates = 0
        for _, _, row in scan_rows(path):
            rows += 1
            versions[CHAIN.row_version(row)] += 1
            key = row.get("key")
            if key in keys:
                duplicates += 1
            keys.add(key)
        status = StoreIndex(path).status()
        print(f"store    {path} ({path.stat().st_size} bytes)")
        print(f"rows     {rows} ({len(keys)} distinct keys, "
              f"{duplicates} duplicates)")
        histogram = ", ".join(
            f"v{version}: {count}" for version, count in sorted(versions.items())
        )
        print(f"schema   current v{SCHEMA_VERSION}; "
              f"stored {{{histogram or 'empty'}}}")
        print(f"index    {status['state']} "
              f"({status['keys']} keys over {status['indexed_bytes']} bytes)")
        return 0
    if args.action == "migrate":
        target = Path(args.output) if args.output else path
        versions = Counter()
        rows = []
        for _, _, row in scan_rows(path):
            versions[CHAIN.row_version(row)] += 1
            migrated = CHAIN.migrate(row)
            migrated["schema"] = SCHEMA_VERSION
            rows.append(migrated)
        stale = sum(
            count for version, count in versions.items()
            if version < SCHEMA_VERSION
        )
        if args.dry_run:
            print(f"would rewrite {len(rows)} rows to {target} "
                  f"({stale} below v{SCHEMA_VERSION})")
            return 0
        tmp = target.with_name(target.name + ".migrating")
        tmp.parent.mkdir(parents=True, exist_ok=True)
        with tmp.open("w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        os.replace(tmp, target)
        # The rewrite invalidates the sidecar by construction; rebuild
        # now so the next reader doesn't pay it.
        StoreIndex(target).rebuild()
        print(f"migrated {len(rows)} rows to {target} "
              f"({stale} upgraded to v{SCHEMA_VERSION}, index rebuilt)")
        return 0
    index = StoreIndex(path)
    index.rebuild()
    status = index.status()
    print(f"reindexed {path}: {status['rows']} rows, "
          f"{status['keys']} keys over {status['indexed_bytes']} bytes")
    return 0


def _cmd_report(args) -> int:
    if args.html is not None:
        if args.events is None:
            print(
                "error: --html renders a telemetry stream; pass "
                "--events PATH (a captured JSONL stream)",
                file=sys.stderr,
            )
            return 2
        from repro.telemetry import read_events
        from repro.telemetry.report_html import render_html_report

        try:
            events = read_events(args.events)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {args.events}: {exc}", file=sys.stderr)
            return 2
        html = render_html_report(
            events, title=f"repro run report — {Path(args.events).name}"
        )
        target = Path(args.html)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(html, encoding="utf-8")
        print(f"wrote {target} ({len(events)} events rendered)")
        return 0
    store = ResultStore(args.store)
    records = store.select(
        scenario=args.scenario,
        network=args.network,
        backend=args.backend,
        placement=args.placement,
    )
    print(render_report(records))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "compare": _cmd_compare,
        "gadget": _cmd_gadget,
        "sweep": _cmd_sweep,
        "batch": _cmd_batch,
        "suite": _cmd_suite,
        "profile": _cmd_profile,
        "trace": _cmd_trace,
        "bench": _cmd_bench,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "ping": _cmd_ping,
        "metrics": _cmd_metrics,
        "top": _cmd_top,
        "flight": _cmd_flight,
        "store": _cmd_store,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
