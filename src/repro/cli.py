"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``solve`` — generate a seeded random instance and solve it with a chosen
  algorithm, printing weight / rounds / ratio.
* ``compare`` — run every algorithm on one instance and print the table.
* ``gadget`` — build a Figure 1 lower-bound gadget and report the
  dichotomy and cut traffic.

The CLI exists for quick exploration; experiments proper live in
``benchmarks/``.
"""

import argparse
import random
import sys
from typing import List, Optional

from repro.baselines import khan_steiner_forest, spanner_steiner_forest
from repro.core import (
    distributed_moat_growing,
    moat_growing,
    rounded_moat_growing,
    sublinear_moat_growing,
)
from repro.exact import steiner_forest_cost
from repro.lowerbounds import (
    cr_dichotomy_holds,
    dsf_cr_gadget,
    dsf_ic_gadget,
    ic_dichotomy_holds,
    measure_cut_traffic,
    random_disjointness_sets,
)
from repro.randomized import randomized_steiner_forest
from repro.workloads import random_instance

ALGORITHMS = {
    "moat": lambda inst, rng: moat_growing(inst),
    "rounded": lambda inst, rng: rounded_moat_growing(inst, 0.5),
    "distributed": lambda inst, rng: distributed_moat_growing(inst),
    "sublinear": lambda inst, rng: sublinear_moat_growing(inst, 0.5),
    "randomized": lambda inst, rng: randomized_steiner_forest(inst, rng=rng),
    "khan": lambda inst, rng: khan_steiner_forest(inst, rng=rng),
    "spanner": lambda inst, rng: spanner_steiner_forest(inst),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Steiner forest (Lenzen & Patt-Shamir, "
        "PODC 2014) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one random instance")
    solve.add_argument("--n", type=int, default=20, help="number of nodes")
    solve.add_argument("--k", type=int, default=3, help="input components")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="distributed"
    )
    solve.add_argument(
        "--exact",
        action="store_true",
        help="also compute the exact optimum (exponential time)",
    )

    compare = sub.add_parser("compare", help="run all algorithms")
    compare.add_argument("--n", type=int, default=18)
    compare.add_argument("--k", type=int, default=3)
    compare.add_argument("--seed", type=int, default=0)

    gadget = sub.add_parser("gadget", help="build a Figure 1 gadget")
    gadget.add_argument("--kind", choices=("cr", "ic"), default="ic")
    gadget.add_argument("--universe", type=int, default=8)
    gadget.add_argument("--seed", type=int, default=0)
    gadget.add_argument(
        "--intersecting", action="store_true",
        help="force A ∩ B ≠ ∅",
    )
    return parser


def _cmd_solve(args) -> int:
    rng = random.Random(args.seed)
    inst = random_instance(args.n, args.k, rng)
    result = ALGORITHMS[args.algorithm](inst, random.Random(args.seed))
    result.solution.assert_feasible(inst)
    rounds = getattr(result, "rounds", None)
    print(f"algorithm : {args.algorithm}")
    print(f"instance  : n={args.n} k={args.k} seed={args.seed}")
    print(f"weight    : {result.solution.weight}")
    if rounds is not None:
        print(f"rounds    : {rounds}")
    if args.exact:
        opt = steiner_forest_cost(inst)
        ratio = result.solution.weight / opt if opt else 1.0
        print(f"optimum   : {opt}")
        print(f"ratio     : {ratio:.3f}")
    return 0


def _cmd_compare(args) -> int:
    rng = random.Random(args.seed)
    inst = random_instance(args.n, args.k, rng)
    opt = steiner_forest_cost(inst)
    print(f"instance n={args.n} k={args.k} seed={args.seed} OPT={opt}")
    print(f"{'algorithm':12s} {'weight':>7s} {'ratio':>7s} {'rounds':>7s}")
    for name in sorted(ALGORITHMS):
        result = ALGORITHMS[name](inst, random.Random(args.seed))
        weight = result.solution.weight
        rounds = getattr(result, "rounds", "-")
        ratio = weight / opt if opt else 1.0
        print(f"{name:12s} {weight:7d} {ratio:7.3f} {rounds!s:>7s}")
    return 0


def _cmd_gadget(args) -> int:
    rng = random.Random(args.seed)
    a, b = random_disjointness_sets(args.universe, rng, args.intersecting)
    if args.kind == "cr":
        gadget = dsf_cr_gadget(args.universe, a, b)
        ok = cr_dichotomy_holds(gadget)
    else:
        gadget = dsf_ic_gadget(args.universe, a, b)
        ok = ic_dichotomy_holds(gadget)
    bits = measure_cut_traffic(gadget)
    print(f"gadget    : DSF-{args.kind.upper()} (Figure 1)")
    print(f"universe  : {args.universe}  A={sorted(a)}  B={sorted(b)}")
    print(f"A∩B≠∅     : {gadget.intersecting}")
    print(f"dichotomy : {'holds' if ok else 'VIOLATED'}")
    print(f"cut bits  : {bits}")
    return 0 if ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "compare": _cmd_compare,
        "gadget": _cmd_gadget,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
