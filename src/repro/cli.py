"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``solve`` — generate a seeded random instance and solve it with a chosen
  algorithm, printing weight / rounds / ratio.
* ``compare`` — run every algorithm on one instance and print the table.
* ``gadget`` — build a Figure 1 lower-bound gadget and report the
  dichotomy and cut traffic.
* ``sweep`` — run named scenarios from the engine's registry across
  parallel worker processes, persisting results to a store.
* ``batch`` — run ad-hoc scenario specs from a JSON file through the
  same engine.
* ``suite`` — list, inspect, or run curated scenario suites (``smoke``,
  ``adversity``, ``scaling``, ``nightly``) through the same engine.
* ``report`` — aggregate a result store into per-scenario tables.
* ``profile`` — run one registered scenario with phase-level profiling
  and print a flame-style per-phase rounds/messages/wall-time report.

The algorithm table lives in :mod:`repro.engine.algorithms`, shared with
the experiment engine and the benchmarks.
"""

import argparse
import json
import random
import sys
from dataclasses import replace
from typing import Any, Dict, List, Optional

from repro.engine import (
    ALGORITHMS,
    REGISTRY,
    SUITES,
    ResultStore,
    ScenarioSpec,
    expand_suites,
    render_report,
    run_suite,
)
from repro.engine.jobs import expand_jobs
from repro.engine.runner import stderr_log
from repro.exact import steiner_forest_cost
from repro.lowerbounds import (
    cr_dichotomy_holds,
    dsf_cr_gadget,
    dsf_ic_gadget,
    ic_dichotomy_holds,
    measure_cut_traffic,
    random_disjointness_sets,
)
from repro.netmodel import NETWORK_MODELS, normalize_network
from repro.perf import render_profile_report
from repro.simbackend import BACKENDS, normalize_backend
from repro.workloads import TERMINAL_PLACEMENTS, random_instance

DEFAULT_STORE = "results/experiments.jsonl"


def _parse_spec_params(raw_params: str, kind: str) -> Dict[str, Any]:
    """Parse ``key=value,...`` (values parse as JSON, with bracket-aware
    comma splitting so ``victims=[0,1]`` works)."""
    params: Dict[str, Any] = {}
    depth, item, items = 0, "", []
    for char in raw_params:
        if char in "[{(":
            depth += 1
        elif char in ")}]":
            depth -= 1
        if char == "," and depth == 0:
            items.append(item)
            item = ""
        else:
            item += char
    if item:
        items.append(item)
    for entry in items:
        key, sep, value = entry.partition("=")
        if not sep:
            raise ValueError(f"bad {kind} parameter {entry!r} (want key=value)")
        try:
            params[key.strip()] = json.loads(value)
        except json.JSONDecodeError:
            params[key.strip()] = value.strip()
    return params


def parse_network_arg(text: str) -> Dict[str, Any]:
    """Parse a ``--network`` value into a canonical network spec.

    Accepts a model name (``lossy``), a name with ``key=value``
    parameters (``lossy:drop_p=0.2,retransmit=2``), or a full JSON spec
    object.
    """
    text = text.strip()
    if text.startswith("{"):
        # The canonical normalizer rejects misplaced keys, so a
        # parameter nested one level too shallow errors instead of
        # silently running the model with defaults.
        return normalize_network(json.loads(text))
    name, _, raw_params = text.partition(":")
    return {"model": name.strip(), "params": _parse_spec_params(raw_params, "network")}


def parse_backend_arg(text: str) -> Dict[str, Any]:
    """Parse a ``--backend`` value into a canonical backend spec.

    Accepts an engine name (``flatarray``), a name with ``key=value``
    parameters (``sharded:num_shards=4``), or a full JSON spec object.
    """
    text = text.strip()
    if text.startswith("{"):
        # The canonical normalizer rejects misplaced keys, so a
        # parameter nested one level too shallow errors instead of
        # silently running the engine with defaults.
        return normalize_backend(json.loads(text))
    name, _, raw_params = text.partition(":")
    return {"name": name.strip(), "params": _parse_spec_params(raw_params, "backend")}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed Steiner forest (Lenzen & Patt-Shamir, "
        "PODC 2014) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve one random instance")
    solve.add_argument("--n", type=int, default=20, help="number of nodes")
    solve.add_argument("--k", type=int, default=3, help="input components")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument(
        "--algorithm", choices=sorted(ALGORITHMS), default="distributed"
    )
    solve.add_argument(
        "--exact",
        action="store_true",
        help="also compute the exact optimum (exponential time)",
    )

    compare = sub.add_parser("compare", help="run all algorithms")
    compare.add_argument("--n", type=int, default=18)
    compare.add_argument("--k", type=int, default=3)
    compare.add_argument("--seed", type=int, default=0)

    gadget = sub.add_parser("gadget", help="build a Figure 1 gadget")
    gadget.add_argument("--kind", choices=("cr", "ic"), default="ic")
    gadget.add_argument("--universe", type=int, default=8)
    gadget.add_argument("--seed", type=int, default=0)
    gadget.add_argument(
        "--intersecting", action="store_true",
        help="force A ∩ B ≠ ∅",
    )

    sweep = sub.add_parser(
        "sweep", help="run registered scenarios through the engine"
    )
    sweep.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario to run (repeatable; default: every registered one)",
    )
    sweep.add_argument("--list", action="store_true", help="list scenarios")
    _add_engine_options(sweep)

    batch = sub.add_parser(
        "batch", help="run ad-hoc scenario specs from a JSON file"
    )
    batch.add_argument(
        "spec", help="path to a JSON file with one spec object or a list"
    )
    _add_engine_options(batch)

    suite = sub.add_parser(
        "suite", help="list, inspect, or run curated scenario suites"
    )
    suite.add_argument(
        "action",
        choices=("list", "show", "run"),
        help="list all suites, show members of named suites, or run them",
    )
    suite.add_argument(
        "names",
        nargs="*",
        metavar="SUITE",
        help="suite names (required for show/run)",
    )
    _add_engine_options(suite)

    profile = sub.add_parser(
        "profile",
        help="profile a scenario's pipeline per phase (flame-style report)",
    )
    profile.add_argument(
        "--scenario",
        default="grid-rounds",
        metavar="NAME",
        help="registered scenario to profile (default: grid-rounds, the "
        "paper-pipeline Section 4.1 vs 4.2 workload)",
    )
    profile.add_argument(
        "--algorithm",
        action="append",
        default=None,
        metavar="NAME",
        help="restrict to a subset of the scenario's algorithms (repeatable)",
    )
    _add_engine_options(profile)

    report = sub.add_parser("report", help="aggregate a result store")
    report.add_argument("--store", default=DEFAULT_STORE)
    report.add_argument(
        "--scenario", default=None, help="restrict to one scenario"
    )
    report.add_argument(
        "--network",
        default=None,
        metavar="MODEL",
        help="restrict to one network model "
        f"({', '.join(sorted(NETWORK_MODELS))})",
    )
    report.add_argument(
        "--backend",
        default=None,
        metavar="ENGINE",
        help="restrict to one simulation backend "
        f"({', '.join(sorted(BACKENDS))})",
    )
    report.add_argument(
        "--placement",
        default=None,
        metavar="STRATEGY",
        help="restrict to one terminal placement "
        f"({', '.join(sorted(TERMINAL_PLACEMENTS))})",
    )
    return parser


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--store",
        default=DEFAULT_STORE,
        help=f"result store path (JSONL; default {DEFAULT_STORE})",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="run without persisting (disables caching)",
    )
    parser.add_argument(
        "--workers", type=int, default=None, help="worker process count"
    )
    parser.add_argument(
        "--serial",
        action="store_true",
        help="run jobs in-process instead of worker processes",
    )
    parser.add_argument(
        "--network",
        action="append",
        default=None,
        metavar="SPEC",
        help="override the network axis (repeatable): a model name "
        f"({', '.join(sorted(NETWORK_MODELS))}), NAME:key=value,..., "
        "or a JSON spec object",
    )
    parser.add_argument(
        "--backend",
        action="append",
        default=None,
        metavar="SPEC",
        help="override the simulation-backend axis (repeatable): an "
        f"engine name ({', '.join(sorted(BACKENDS))}), "
        "NAME:key=value,..., or a JSON spec object",
    )


def _cmd_solve(args) -> int:
    rng = random.Random(args.seed)
    inst = random_instance(args.n, args.k, rng)
    result = ALGORITHMS[args.algorithm].run(inst, random.Random(args.seed))
    result.solution.assert_feasible(inst)
    rounds = getattr(result, "rounds", None)
    print(f"algorithm : {args.algorithm}")
    print(f"instance  : n={args.n} k={args.k} seed={args.seed}")
    print(f"weight    : {result.solution.weight}")
    if rounds is not None:
        print(f"rounds    : {rounds}")
    if args.exact:
        opt = steiner_forest_cost(inst)
        ratio = result.solution.weight / opt if opt else 1.0
        print(f"optimum   : {opt}")
        print(f"ratio     : {ratio:.3f}")
    return 0


def _cmd_compare(args) -> int:
    rng = random.Random(args.seed)
    inst = random_instance(args.n, args.k, rng)
    opt = steiner_forest_cost(inst)
    print(f"instance n={args.n} k={args.k} seed={args.seed} OPT={opt}")
    print(f"{'algorithm':12s} {'weight':>7s} {'ratio':>7s} {'rounds':>7s}")
    for name in sorted(ALGORITHMS):
        result = ALGORITHMS[name].run(inst, random.Random(args.seed))
        weight = result.solution.weight
        rounds = getattr(result, "rounds", "-")
        ratio = weight / opt if opt else 1.0
        print(f"{name:12s} {weight:7d} {ratio:7.3f} {rounds!s:>7s}")
    return 0


def _cmd_gadget(args) -> int:
    rng = random.Random(args.seed)
    a, b = random_disjointness_sets(args.universe, rng, args.intersecting)
    if args.kind == "cr":
        gadget = dsf_cr_gadget(args.universe, a, b)
        ok = cr_dichotomy_holds(gadget)
    else:
        gadget = dsf_ic_gadget(args.universe, a, b)
        ok = ic_dichotomy_holds(gadget)
    bits = measure_cut_traffic(gadget)
    print(f"gadget    : DSF-{args.kind.upper()} (Figure 1)")
    print(f"universe  : {args.universe}  A={sorted(a)}  B={sorted(b)}")
    print(f"A∩B≠∅     : {gadget.intersecting}")
    print(f"dichotomy : {'holds' if ok else 'VIOLATED'}")
    print(f"cut bits  : {bits}")
    return 0 if ok else 1


def _apply_axis_overrides(
    args, specs: List[ScenarioSpec]
) -> Optional[List[ScenarioSpec]]:
    """Apply ``--network`` / ``--backend`` overrides; None on bad input
    (the error is printed to stderr)."""
    if args.network:
        try:
            networks = [parse_network_arg(text) for text in args.network]
            specs = [replace(spec, network=networks) for spec in specs]
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: invalid --network: {exc}", file=sys.stderr)
            return None
    if args.backend:
        try:
            backends = [parse_backend_arg(text) for text in args.backend]
            specs = [replace(spec, backend=backends) for spec in specs]
        except (ValueError, KeyError, json.JSONDecodeError) as exc:
            print(f"error: invalid --backend: {exc}", file=sys.stderr)
            return None
    return specs


def _run_engine(args, specs: List[ScenarioSpec]) -> int:
    overridden = _apply_axis_overrides(args, specs)
    if overridden is None:
        return 2
    specs = overridden
    store = None if args.no_store else ResultStore(args.store)
    all_stats = run_suite(
        specs,
        store=store,
        max_workers=args.workers,
        parallel=not args.serial,
        log=stderr_log,
    )
    records = []
    for stats in all_stats:
        print(
            f"scenario {stats.scenario:20s} "
            f"executed={stats.executed:4d} cached={stats.cached:4d}"
        )
        records.extend(stats.records)
    if store is not None:
        print(f"store     : {store.path} ({len(store)} records)")
    print()
    print(render_report(records))
    return 0


def _cmd_sweep(args) -> int:
    if args.list:
        print(f"{'scenario':16s} {'family':10s} {'networks':28s} {'algorithms'}")
        for name in REGISTRY.names():
            spec = REGISTRY.get(name)
            networks = ", ".join(spec.network_names)
            print(
                f"{name:16s} {spec.family:10s} {networks:28s} "
                f"{', '.join(spec.algorithms)}"
            )
        return 0
    try:
        specs = REGISTRY.specs(args.scenario or ())
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    return _run_engine(args, specs)


def _cmd_batch(args) -> int:
    try:
        with open(args.spec, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        if isinstance(data, dict):
            data = [data]
        specs = [ScenarioSpec.from_dict(entry) for entry in data]
    except (OSError, json.JSONDecodeError, KeyError, ValueError) as exc:
        print(f"error: invalid spec file {args.spec}: {exc}", file=sys.stderr)
        return 2
    return _run_engine(args, specs)


def _spec_placements(spec: ScenarioSpec) -> str:
    """The placement strategies a spec's grid sweeps, for display."""
    value = spec.grid.get("placement", "uniform")
    entries = value if isinstance(value, (list, tuple)) else [value]
    return ", ".join(str(entry) for entry in entries)


def _cmd_suite(args) -> int:
    if args.action == "list":
        if args.names:
            print("error: 'suite list' takes no suite names", file=sys.stderr)
            return 2
        print(f"{'suite':10s} {'scenarios':>9s} {'jobs':>6s} description")
        for name in SUITES.names():
            suite = SUITES.get(name)
            print(
                f"{name:10s} {len(suite.scenarios):9d} "
                f"{suite.job_count():6d} {suite.description}"
            )
        return 0
    if not args.names:
        print(f"error: 'suite {args.action}' needs suite names", file=sys.stderr)
        return 2
    try:
        specs = expand_suites(SUITES, args.names)
    except (KeyError, ValueError) as exc:
        # KeyError: unknown suite name; ValueError: requested suites
        # define conflicting specs under one scenario name.
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.action == "show":
        print(
            f"{'scenario':20s} {'family':12s} {'placements':22s} "
            f"{'jobs':>5s} {'algorithms'}"
        )
        for spec in specs:
            print(
                f"{spec.name:20s} {spec.family:12s} "
                f"{_spec_placements(spec):22s} {len(expand_jobs(spec)):5d} "
                f"{', '.join(spec.algorithms)}"
            )
        return 0
    return _run_engine(args, specs)


def _cmd_profile(args) -> int:
    try:
        spec = REGISTRY.get(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    if args.algorithm:
        unknown = [a for a in args.algorithm if a not in spec.algorithms]
        if unknown:
            print(
                f"error: scenario {spec.name!r} does not run {unknown}; "
                f"choose from {list(spec.algorithms)}",
                file=sys.stderr,
            )
            return 2
        spec = replace(spec, algorithms=tuple(args.algorithm))
    # Profiled jobs hash to their own cache keys, so a profile run never
    # collides with (or poisons) unprofiled sweep results in the store —
    # and re-profiling an unchanged scenario is absorbed by the cache.
    spec = replace(spec, profile=True)
    specs = _apply_axis_overrides(args, [spec])
    if specs is None:
        return 2
    store = None if args.no_store else ResultStore(args.store)
    # Unlike sweep/batch, profiling defaults to in-process execution:
    # the report's wall-time column is the whole point, and a saturated
    # worker pool would measure scheduler contention instead of the
    # pipeline. --workers N is the explicit opt-in to parallelism.
    all_stats = run_suite(
        specs,
        store=store,
        max_workers=args.workers,
        parallel=args.workers is not None and not args.serial,
        log=stderr_log,
    )
    records = [record for stats in all_stats for record in stats.records]
    print(render_profile_report(records))
    return 0


def _cmd_report(args) -> int:
    store = ResultStore(args.store)
    records = store.select(
        scenario=args.scenario,
        network=args.network,
        backend=args.backend,
        placement=args.placement,
    )
    print(render_report(records))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "solve": _cmd_solve,
        "compare": _cmd_compare,
        "gadget": _cmd_gadget,
        "sweep": _cmd_sweep,
        "batch": _cmd_batch,
        "suite": _cmd_suite,
        "profile": _cmd_profile,
        "report": _cmd_report,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
