"""First-stage edge selection over the virtual tree (Section 5, Steps 1–4).

Per level i, every *carrier* node v (initially the terminals, each carrying
its own label) sends a message (λ, w) towards its routing target
w = A_i(v) — or its closest S node when the ancestor chain is truncated —
along the least-weight path fixed by the tree construction. Messages are
filtered en route: each node forwards at most one message per (label,
destination) pair, so per destination only O(s + k) message-steps occur, and
since each node lies on only O(log n) distinct embedding paths w.h.p.,
round-robin time-multiplexing over destinations yields Õ(s + k) rounds per
level (the paper's key pipelining insight). Every edge a message traverses
enters the output F; at each destination one carrier per label survives
(Step 3d), which consolidates labels up the tree.

The module simulates the routing message-by-message with per-destination
queues, measures the parallel round count R and the realized multiplexing
factor (max destinations served by one node), and charges R × multiplex
rounds — set ``naive=True`` to instead force one message per node per round
(the Õ(sk) behaviour of [14] that experiment E11 contrasts).
"""

from collections import deque
from typing import Deque, Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.congest.bfs import build_bfs_tree
from repro.congest.run import CongestRun
from repro.model.graph import Edge, Node, canonical_edge
from repro.model.instance import SteinerForestInstance
from repro.randomized.embedding import VirtualTreeEmbedding

Label = Hashable


class FirstStageResult:
    """Outcome of the first stage.

    Attributes:
        edges: the selected edge set F.
        carriers: label → set of carrier nodes still holding the label
            after the last level (singletons for resolved labels).
        resolved: labels whose terminals are all connected by F.
        routing_rounds: Σ over levels of the parallel routing rounds R_i.
        multiplex_factor: max number of distinct destinations any node
            served in one level (the paper's O(log n) quantity).
    """

    def __init__(
        self,
        edges: FrozenSet[Edge],
        carriers: Dict[Label, Set[Node]],
        resolved: Set[Label],
        routing_rounds: int,
        multiplex_factor: int,
    ) -> None:
        self.edges = edges
        self.carriers = carriers
        self.resolved = resolved
        self.routing_rounds = routing_rounds
        self.multiplex_factor = multiplex_factor

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FirstStageResult(|F|={len(self.edges)}, "
            f"resolved={len(self.resolved)}, mux={self.multiplex_factor})"
        )


class _Message:
    __slots__ = ("label", "dest", "origin", "path", "pos")

    def __init__(
        self, label: Label, dest: Node, origin: Node, path: List[Node]
    ) -> None:
        self.label = label
        self.dest = dest
        self.origin = origin
        self.path = path
        self.pos = 0  # index into path of the current holder


def _route_level(
    graph,
    sends: List[Tuple[Node, Label, Node]],
    edges: Set[Edge],
    naive: bool,
) -> Tuple[Dict[Node, Dict[Label, Node]], Dict[Node, List[Node]], int, int]:
    """Simulate Step 3c's filtered routing for one level.

    Args:
        sends: (carrier, label, destination) triples.
        edges: the global F under construction (traversed edges are added).
        naive: one message per node per round (no per-destination
            multiplexing) when True.

    Returns (delivered, backtrace_path, rounds, multiplex):
        delivered: destination → {label → first-delivering origin}.
        backtrace_path: destination → path of the first delivered message.
        rounds: parallel rounds until quiescence.
        multiplex: max distinct destinations one node forwarded for.
    """
    # Per-node, per-destination FIFO queues.
    queues: Dict[Node, Dict[Node, Deque[_Message]]] = {}
    forwarded: Dict[Node, Set[Tuple[Label, Node]]] = {}
    served: Dict[Node, Set[Node]] = {}
    delivered: Dict[Node, Dict[Label, Node]] = {}
    backtrace: Dict[Node, List[Node]] = {}

    def enqueue(msg: _Message) -> None:
        holder = msg.path[msg.pos]
        if holder == msg.dest:
            dest_map = delivered.setdefault(msg.dest, {})
            if msg.label not in dest_map:
                dest_map[msg.label] = msg.origin
                backtrace.setdefault(msg.dest, msg.path)
            return
        key = (msg.label, msg.dest)
        if key in forwarded.setdefault(holder, set()):
            return  # filtered: an identical (λ, w) already went through
        forwarded[holder].add(key)
        queues.setdefault(holder, {}).setdefault(
            msg.dest, deque()
        ).append(msg)

    # Paths towards a common destination w follow w's shortest-path
    # in-tree ("the messages induce a tree rooted at w in G"), so the
    # per-(λ, w) filtering can never strand a label: each filtering point
    # lies on the path of an earlier message that is strictly closer to w.
    parent_cache: Dict[Node, Dict[Node, Optional[Node]]] = {}

    def path_to(v: Node, w: Node) -> List[Node]:
        if w not in parent_cache:
            parent_cache[w] = graph.dijkstra(w)[1]
        parents = parent_cache[w]
        chain = [v]
        while chain[-1] != w:
            nxt = parents[chain[-1]]
            assert nxt is not None
            chain.append(nxt)
        return chain

    for carrier, label, dest in sorted(sends, key=repr):
        if carrier == dest:
            dest_map = delivered.setdefault(dest, {})
            dest_map.setdefault(label, carrier)
            backtrace.setdefault(dest, [carrier])
            continue
        enqueue(_Message(label, dest, carrier, path_to(carrier, dest)))

    rounds = 0
    while any(q for per_dest in queues.values() for q in per_dest.values()):
        rounds += 1
        moves: List[_Message] = []
        for holder in sorted(queues, key=repr):
            per_dest = queues[holder]
            dests = [w for w in sorted(per_dest, key=repr) if per_dest[w]]
            if not dests:
                continue
            if naive:
                dests = dests[:1]  # one message per node per round, total
            for w in dests:
                served.setdefault(holder, set()).add(w)
                moves.append(per_dest[w].popleft())
        for msg in moves:
            a, b = msg.path[msg.pos], msg.path[msg.pos + 1]
            edges.add(canonical_edge(a, b))
            msg.pos += 1
            enqueue(msg)
    multiplex = max((len(ws) for ws in served.values()), default=1)
    return delivered, backtrace, rounds, multiplex


def first_stage_selection(
    instance: SteinerForestInstance,
    embedding: VirtualTreeEmbedding,
    run: CongestRun,
    naive: bool = False,
) -> FirstStageResult:
    """Run the first stage, charging measured rounds to ``run``.

    Returns the selected edge set F with carrier bookkeeping. With
    ``naive=True`` the per-destination pipelining is disabled, reproducing
    the Õ(sk) routing of [14] for the ablation experiment.
    """
    graph = instance.graph
    tree = build_bfs_tree(graph, run)
    carriers: Dict[Node, Set[Label]] = {}
    for v in sorted(instance.terminals, key=repr):
        carriers[v] = {instance.label(v)}

    all_labels = set(instance.labels.values())
    resolved: Set[Label] = set()
    edges: Set[Edge] = set()
    total_routing = 0
    max_multiplex = 1

    for level in range(embedding.levels):
        # Step 3a: detect single-carrier labels over the BFS tree — at most
        # two witness messages per label (Lemma G.3), O(D + k) rounds.
        run.charge_rounds(
            2 * tree.depth + 2 * max(1, len(all_labels)),
            "single-carrier detection (Lemma G.3)",
        )
        counts: Dict[Label, int] = {}
        for held in carriers.values():
            for label in held:
                counts[label] = counts.get(label, 0) + 1
        for v in list(carriers):
            kept = {
                label for label in carriers[v] if counts.get(label, 0) >= 2
            }
            for label in carriers[v] - kept:
                resolved.add(label)
            carriers[v] = kept

        # Step 3b/3c: route (λ, target) messages with filtering.
        sends: List[Tuple[Node, Label, Node]] = []
        for v, held in carriers.items():
            if not held:
                continue
            target, _ = embedding.ancestor_at(v, level)
            for label in sorted(held, key=repr):
                sends.append((v, label, target))
        if not sends:
            break
        delivered, backtrace, rounds, multiplex = _route_level(
            graph, sends, edges, naive
        )
        total_routing += rounds
        max_multiplex = max(max_multiplex, multiplex)
        run.charge_rounds(
            max(1, rounds) * (1 if naive else max(1, multiplex)),
            "filtered routing to level targets (Step 3c)",
        )

        # Step 3d: each destination hands its accumulated labels to one
        # carrier (the first arrival), by backtracing the recorded path.
        new_carriers: Dict[Node, Set[Label]] = {}
        backtrace_cost = 0
        for dest in sorted(delivered, key=repr):
            labels_here = delivered[dest]
            chosen = min(labels_here.values(), key=repr)
            new_carriers.setdefault(chosen, set()).update(labels_here)
            backtrace_cost = max(
                backtrace_cost,
                len(backtrace.get(dest, [])) + len(labels_here),
            )
        run.charge_rounds(
            max(1, backtrace_cost) * max(1, max_multiplex if not naive else 1),
            "carrier hand-off by backtracing (Step 3d)",
        )
        carriers = new_carriers

    final: Dict[Label, Set[Node]] = {label: set() for label in all_labels}
    for v, held in carriers.items():
        for label in held:
            final[label].add(v)
    for label, holders in final.items():
        if len(holders) <= 1:
            resolved.add(label)
    return FirstStageResult(
        frozenset(edges), final, resolved, total_routing, max_multiplex
    )
