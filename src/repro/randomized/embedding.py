"""Random-rank virtual tree embedding (Khan et al. [14]; Section 5).

Every node draws a uniformly random *rank* (a random permutation, standing
in for the paper's random O(log n)-bit IDs) and a global scale β is drawn
uniformly from [1, 2]. The level-i ancestor of a node v is

    A_i(v) = argmax-rank { u : wd(v, u) ≤ β · 2^i },

for i = 0 .. L with L = ⌈log₂ WD⌉ + 1, so A_L(v) is the global maximum-rank
node and the chain A_0(v), A_1(v), … has non-decreasing rank. The virtual
tree edge (A_{i-1}(v), A_i(v)) has weight β·2^i, and the embedding routes
from v directly to each of its ancestors along least-weight paths — the key
property being that w.h.p. only O(log n) distinct such paths pass through
any physical node (measured and exposed as ``max_paths_per_node``).

When ``truncate_at`` is given (the set S of √n highest-rank nodes for the
s > √n regime), each node's ancestor chain stops at level
i_v = min{ i : B(v, β·2^i) ∩ S ≠ ∅ }; from there the node connects to its
closest node of S instead (Lemma G.2).

Distributed cost: constructing the (possibly truncated) tree takes
Õ(min{s, √n} + D) rounds w.h.p. — realized here by running the actual
Bellman–Ford computations on the simulator (Voronoi w.r.t. S, hop-capped at
Õ(√n)) and charging the LE-list style level sweeps.
"""

import math
import random
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from repro.congest.bellman_ford import bellman_ford
from repro.congest.bfs import build_bfs_tree
from repro.congest.run import CongestRun
from repro.model.graph import Node, WeightedGraph

#: Denominator resolution for the random β ∈ [1, 2] (exact Fraction).
_BETA_RESOLUTION = 1 << 16


class VirtualTreeEmbedding:
    """The constructed (possibly truncated) virtual tree.

    Attributes:
        graph: the underlying network.
        rank: node → rank (higher = more senior; a permutation of 0..n-1).
        beta: the random scale β ∈ [1, 2] as an exact Fraction.
        levels: L + 1, the number of ancestor levels.
        ancestors: node → list of physical ancestors A_0(v) … (truncated
            chains stop early).
        truncation_level: node → i_v (== len(ancestors[v]) when truncated;
            equals levels when not truncated).
        nearest_s: node → closest node of S (None when S is empty).
        s_nodes: the truncation set S (empty when s ≤ √n).
        max_paths_per_node: measured maximum number of distinct embedding
            paths through a physical node (the paper's O(log n) claim).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        rank: Dict[Node, int],
        beta: Fraction,
        levels: int,
        ancestors: Dict[Node, List[Node]],
        truncation_level: Dict[Node, int],
        nearest_s: Dict[Node, Optional[Node]],
        s_nodes: Set[Node],
        max_paths_per_node: int,
    ) -> None:
        self.graph = graph
        self.rank = rank
        self.beta = beta
        self.levels = levels
        self.ancestors = ancestors
        self.truncation_level = truncation_level
        self.nearest_s = nearest_s
        self.s_nodes = s_nodes
        self.max_paths_per_node = max_paths_per_node

    def ancestor_at(self, v: Node, level: int) -> Tuple[Node, bool]:
        """The routing target of ``v`` at ``level``.

        Returns (target, truncated): the level-``level`` ancestor, or the
        closest S node with truncated=True when the chain is truncated at or
        below ``level``.
        """
        if level < self.truncation_level[v]:
            return self.ancestors[v][level], False
        target = self.nearest_s[v]
        assert target is not None, "truncated chain requires S"
        return target, True

    def virtual_edge_weight(self, level: int) -> Fraction:
        """Weight β·2^level of a virtual edge into ``level``."""
        return self.beta * (1 << level)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"VirtualTreeEmbedding(levels={self.levels}, "
            f"|S|={len(self.s_nodes)}, beta={float(self.beta):.4f})"
        )


def build_embedding(
    graph: WeightedGraph,
    run: CongestRun,
    rng: random.Random,
    truncate_at: Optional[int] = None,
) -> VirtualTreeEmbedding:
    """Construct the virtual tree, charging the distributed cost to ``run``.

    Args:
        graph: the network.
        run: the round ledger.
        rng: randomness source (ranks and β).
        truncate_at: |S| — when given, the ancestors are truncated at the
            ``truncate_at`` highest-rank nodes (use √n for the s > √n
            regime); None builds the full tree.

    The ancestor sets are computed from the all-pairs distances (the local
    knowledge the LE-list construction of [14] provides each node with);
    the communication cost is charged from real simulator executions: one
    hop-capped multi-source Bellman–Ford per level sweep.
    """
    nodes = list(graph.nodes)
    n = len(nodes)
    permutation = list(nodes)
    rng.shuffle(permutation)
    rank = {v: i for i, v in enumerate(permutation)}
    beta = 1 + Fraction(rng.randrange(_BETA_RESOLUTION), _BETA_RESOLUTION)
    wd = graph.weighted_diameter()
    levels = max(1, math.ceil(math.log2(max(2, wd)))) + 1

    s_nodes: Set[Node] = set()
    nearest_s: Dict[Node, Optional[Node]] = {v: None for v in nodes}
    if truncate_at is not None and truncate_at > 0:
        s_nodes = set(
            sorted(nodes, key=lambda v: rank[v], reverse=True)[:truncate_at]
        )
        # Voronoi decomposition w.r.t. S, hop-capped at Õ(√n) (Lemma G.2):
        # executed for real on the simulator.
        hop_cap = max(
            1, math.isqrt(n) * max(1, math.ceil(math.log2(max(2, n)))))
        voronoi = bellman_ford(
            graph,
            {v: (Fraction(0), v) for v in sorted(s_nodes, key=repr)},
            run,
            max_iterations=hop_cap,
        )
        for v in nodes:
            nearest_s[v] = voronoi.tag.get(v)

    apd = graph.all_pairs_distances()
    ancestors: Dict[Node, List[Node]] = {}
    truncation_level: Dict[Node, int] = {}
    for v in nodes:
        chain: List[Node] = []
        cutoff = levels
        for i in range(levels):
            radius = beta * (1 << i)
            candidates = [u for u in nodes if apd[v][u] <= radius]
            best = max(candidates, key=lambda u: rank[u])
            if s_nodes and best in s_nodes:
                cutoff = i
                break
            chain.append(best)
        ancestors[v] = chain
        truncation_level[v] = cutoff

    # Charge the level sweeps of the LE-list construction: one sweep per
    # level, each bounded by the hop length of the embedding paths
    # (≤ min{s, Õ(√n)}), plus a BFS tree for coordination.
    tree = build_bfs_tree(graph, run)
    hop_bound = _measure_max_path_hops(graph, ancestors, nearest_s)
    run.charge_rounds(
        levels * max(1, hop_bound),
        "LE-list level sweeps of the tree construction ([14], Lemma G.2)",
    )

    max_paths = _measure_paths_per_node(graph, ancestors, nearest_s)
    return VirtualTreeEmbedding(
        graph,
        rank,
        beta,
        levels,
        ancestors,
        truncation_level,
        nearest_s,
        s_nodes,
        max_paths,
    )


def _measure_max_path_hops(
    graph: WeightedGraph,
    ancestors: Dict[Node, List[Node]],
    nearest_s: Dict[Node, Optional[Node]],
) -> int:
    """Max hop length over all embedding paths (v → each ancestor / S)."""
    best = 0
    for v, chain in ancestors.items():
        targets = set(chain)
        if nearest_s[v] is not None:
            targets.add(nearest_s[v])
        for u in targets:
            if u == v:
                continue
            best = max(best, len(graph.shortest_path(v, u)) - 1)
    return best


def _measure_paths_per_node(
    graph: WeightedGraph,
    ancestors: Dict[Node, List[Node]],
    nearest_s: Dict[Node, Optional[Node]],
) -> int:
    """Max number of distinct embedding paths through any physical node."""
    load: Dict[Node, Set[Tuple[Node, Node]]] = {v: set() for v in graph.nodes}
    for v, chain in ancestors.items():
        targets = set(chain)
        if nearest_s[v] is not None:
            targets.add(nearest_s[v])
        for u in targets:
            if u == v:
                continue
            for x in graph.shortest_path(v, u):
                load[x].add((v, u))
    return max((len(paths) for paths in load.values()), default=0)
