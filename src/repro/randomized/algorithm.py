"""The complete randomized algorithm (Theorem 5.2, Appendix G.4).

1. Estimate s (footnote 2: Bellman–Ford capped at √n iterations) to select
   the regime; when s > √n, use the virtual tree truncated at the √n
   highest-rank nodes S.
2. Run the first stage ``repetitions`` times (the paper uses c·log n
   repetitions to turn the expected O(log n) stretch into a w.h.p. bound);
   keep the lightest selected edge set F.
3. If s ≤ √n, F already solves the instance (Corollary G.10). Otherwise,
   build the F-reduced instance (≤ √n super-terminals) and solve it with
   the [17]-style spanner algorithm (Lemma G.15); return F ∪ F′.

The measured round count realizes Õ(k + min{s, √n} + D) and the solution is
O(log n)-approximate w.h.p. (both validated by experiments E5/E6).
"""

import math
import random
from typing import Optional, Set

from repro.baselines.spanner import spanner_steiner_forest
from repro.congest.bellman_ford import bellman_ford
from repro.congest.bfs import build_bfs_tree, default_root
from repro.congest.run import CongestRun
from repro.model.graph import Edge
from repro.model.instance import SteinerForestInstance
from repro.model.solution import ForestSolution
from repro.randomized.embedding import VirtualTreeEmbedding, build_embedding
from repro.randomized.reduced import build_reduced_instance
from repro.randomized.selection import FirstStageResult, first_stage_selection

from fractions import Fraction


class RandomizedResult:
    """Outcome of the randomized algorithm.

    Attributes:
        solution: the returned edge set (F, or F ∪ F′ in the s > √n case).
        run: the round/message ledger.
        truncated: whether the s > √n branch was taken.
        embedding: the virtual tree of the chosen repetition.
        first_stage: the chosen repetition's first-stage result.
        reduced_terminals: t̂ of the reduced instance (0 when not built).
    """

    def __init__(
        self,
        instance: SteinerForestInstance,
        solution: ForestSolution,
        run: CongestRun,
        truncated: bool,
        embedding: VirtualTreeEmbedding,
        first_stage: FirstStageResult,
        reduced_terminals: int,
    ) -> None:
        self.instance = instance
        self.solution = solution
        self.run = run
        self.truncated = truncated
        self.embedding = embedding
        self.first_stage = first_stage
        self.reduced_terminals = reduced_terminals

    @property
    def rounds(self) -> int:
        return self.run.rounds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RandomizedResult(W={self.solution.weight}, "
            f"rounds={self.rounds}, truncated={self.truncated})"
        )


def randomized_steiner_forest(
    instance: SteinerForestInstance,
    rng: Optional[random.Random] = None,
    run: Optional[CongestRun] = None,
    repetitions: int = 1,
    force_truncation: Optional[bool] = None,
) -> RandomizedResult:
    """Solve DSF-IC with the Õ(k + min{s,√n} + D)-round algorithm.

    Args:
        instance: the problem instance.
        rng: randomness source (ranks, β); defaults to a fixed seed for
            reproducibility.
        run: optional pre-existing ledger to charge.
        repetitions: first-stage repetitions; the paper's w.h.p. statement
            uses Θ(log n), the default 1 gives the expectation bound.
        force_truncation: override the s vs √n regime choice (for tests
            and experiments).
    """
    graph = instance.graph
    if rng is None:
        rng = random.Random(0xC0FFEE)
    if run is None:
        run = CongestRun(graph)
    n = graph.num_nodes

    # Footnote 2: determine the regime by running Bellman–Ford for at most
    # √n iterations from the BFS root and checking stabilization.
    run.set_phase("regime-detection")
    root = default_root(graph)
    probe = bellman_ford(
        graph,
        {root: (Fraction(0), root)},
        run,
        max_iterations=max(1, math.isqrt(n)),
    )
    if force_truncation is None:
        truncated = not probe.stabilized or (
            graph.shortest_path_diameter() > math.isqrt(n)
        )
    else:
        truncated = force_truncation

    truncate_at = max(1, math.isqrt(n)) if truncated else None

    best: Optional[FirstStageResult] = None
    best_embedding: Optional[VirtualTreeEmbedding] = None
    for _ in range(max(1, repetitions)):
        run.set_phase("first-stage")
        embedding = build_embedding(
            graph, run, rng, truncate_at=truncate_at
        )
        stage = first_stage_selection(instance, embedding, run)
        # Weight comparison over the BFS tree costs O(D) per repetition.
        tree = build_bfs_tree(graph, run)
        weight = graph.edge_weight_sum(stage.edges)
        if best is None or weight < graph.edge_weight_sum(best.edges):
            best = stage
            best_embedding = embedding
    assert best is not None and best_embedding is not None

    edges: Set[Edge] = set(best.edges)
    reduced_terminals = 0
    if truncated:
        reduced = build_reduced_instance(
            instance, best, best_embedding.s_nodes, run
        )
        if reduced is not None:
            reduced_terminals = reduced.instance.num_terminals
            second = spanner_steiner_forest(reduced.instance, run=None)
            # The reduced instance has Õ(√n) terminals; its Õ(√n + D)
            # rounds are charged on the main ledger.
            run.charge_rounds(
                second.rounds,
                "second stage on the F-reduced instance (Lemma G.15)",
            )
            edges |= reduced.map_back(second.solution.edges)

    solution = ForestSolution(graph, edges)
    solution.assert_feasible(instance)
    return RandomizedResult(
        instance,
        solution,
        run,
        truncated,
        best_embedding,
        best,
        reduced_terminals,
    )
