"""The F-reduced instance (Definition 5.1, Lemmas G.11–G.14).

After the first stage with a truncated virtual tree (s > √n), every input
component is split by the selected edge set F into connected chunks, each
hanging off a node of S. Contracting, for each v ∈ S, the terminal set

    T_v = { w ∈ T : v is the closest S node to w in (V, F),
                    within Õ(√n) hops }

into a super-terminal yields a new instance with at most |S| = √n terminals
that captures exactly the remaining connectivity demands: two super-
terminals share a (new) label iff their original labels are connected in
the helper graph (Λ, E_Λ) linking labels that co-occur in some T_v.

The reduced optimum is at most the original optimum (Lemma G.14), and any
solution of the reduced instance, mapped back through its inducing edges
and united with F, solves the original instance (Lemma G.13).

Robustness note: the paper argues that w.h.p. every terminal is either
captured by some T_v or fully resolved by F (Lemma G.9). To stay feasible
on every run — not just the high-probability event — unresolved terminals
that fall outside every T_v join the reduced instance as singleton
super-terminals; on w.h.p. executions this set is empty.
"""

import math
from typing import Dict, Hashable, Optional, Set, Tuple

from fractions import Fraction

from repro.congest.bellman_ford import bellman_ford
from repro.congest.bfs import build_bfs_tree
from repro.congest.broadcast import broadcast_items, upcast_items
from repro.congest.run import CongestRun
from repro.model.graph import Edge, Node, WeightedGraph, canonical_edge
from repro.model.instance import SteinerForestInstance
from repro.randomized.selection import FirstStageResult
from repro.util import UnionFind

Label = Hashable


class ReducedInstance:
    """The F-reduced instance plus the bookkeeping to map solutions back.

    Attributes:
        instance: the DSF-IC instance over the reduced graph Ĝ.
        cluster_of: original node → reduced node (super-terminal
            representative for captured terminals, itself for V_r nodes).
        inducing_edge: reduced edge → the minimum-weight original edge that
            realizes it (Definition 5.1's argmin).
    """

    def __init__(
        self,
        instance: SteinerForestInstance,
        cluster_of: Dict[Node, Node],
        inducing_edge: Dict[Edge, Edge],
    ) -> None:
        self.instance = instance
        self.cluster_of = cluster_of
        self.inducing_edge = inducing_edge

    def map_back(self, reduced_edges) -> Set[Edge]:
        """Translate reduced-graph edges into their inducing graph edges."""
        return {
            self.inducing_edge[canonical_edge(u, v)] for u, v in reduced_edges
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ReducedInstance(n̂={self.instance.graph.num_nodes}, "
            f"t̂={self.instance.num_terminals})"
        )


def build_reduced_instance(
    instance: SteinerForestInstance,
    first_stage: FirstStageResult,
    s_nodes: Set[Node],
    run: CongestRun,
) -> Optional[ReducedInstance]:
    """Construct the F-reduced instance (Õ(√n + k + D) rounds, Lemma G.12).

    Returns None when no demands remain (every label resolved by F).
    """
    graph = instance.graph
    n = graph.num_nodes

    # T_v assignment: hop-distance Voronoi w.r.t. S inside (V, F), capped at
    # Õ(√n) hops — a real Bellman–Ford over the F-subgraph (Corollary G.11).
    run.set_phase("reduction")
    f_subgraph = WeightedGraph(
        graph.nodes,
        [(u, v, 1) for u, v in first_stage.edges],
        validate=False,
    )
    hop_cap = max(1, math.isqrt(n) * max(1, math.ceil(math.log2(max(2, n)))))
    voronoi = bellman_ford(
        f_subgraph,
        {v: (Fraction(0), v) for v in sorted(s_nodes, key=repr)},
        run,
        max_iterations=hop_cap,
    )

    cluster_of: Dict[Node, Node] = {}
    members: Dict[Node, Set[Node]] = {v: set() for v in s_nodes}
    for w in instance.terminals:
        anchor = voronoi.tag.get(w)
        if anchor is not None:
            cluster_of[w] = anchor
            members[anchor].add(w)

    # Helper graph (Λ, E_Λ): labels co-occurring in one T_v are equivalent.
    label_uf = UnionFind()
    for anchor, terminals in members.items():
        labels_here = sorted(
            {instance.label(w) for w in terminals}, key=repr
        )
        for a, b in zip(labels_here, labels_here[1:]):
            label_uf.union(a, b)
    for label in set(instance.labels.values()):
        label_uf.add(label)

    def label_component(label: Label) -> Label:
        return label_uf.find(label)

    # Unresolved terminals outside every T_v become singleton
    # super-terminals (robustness; empty w.h.p. — Lemma G.9).
    stray_terminals = [
        w
        for w in sorted(instance.terminals, key=repr)
        if w not in cluster_of and instance.label(w) not in first_stage.resolved
    ]

    # Reduced node set: one representative per non-empty T_v, plus V_r.
    reduced_labels: Dict[Node, Label] = {}
    for anchor, terminals in sorted(members.items(), key=lambda kv: repr(kv[0])):
        if not terminals:
            continue
        rep = ("cluster", anchor)
        some_label = instance.label(min(terminals, key=repr))
        reduced_labels[rep] = label_component(some_label)
    for w in stray_terminals:
        reduced_labels[w] = label_component(instance.label(w))

    # Drop labels that occur on a single reduced terminal — no demand left.
    label_counts: Dict[Label, int] = {}
    for lab in reduced_labels.values():
        label_counts[lab] = label_counts.get(lab, 0) + 1
    reduced_labels = {
        node: lab
        for node, lab in reduced_labels.items()
        if label_counts[lab] >= 2
    }
    if not reduced_labels:
        return None

    # Build Ĝ: contract each non-empty T_v; keep all other nodes.
    def reduced_node(x: Node) -> Node:
        anchor = cluster_of.get(x)
        return ("cluster", anchor) if anchor is not None else x

    reduced_nodes: Set[Node] = {reduced_node(x) for x in graph.nodes}
    best_edge: Dict[Edge, Tuple[int, Edge]] = {}
    for u, v, w in graph.edges():
        ru, rv = reduced_node(u), reduced_node(v)
        if ru == rv:
            continue
        key = canonical_edge(ru, rv)
        cand = (w, canonical_edge(u, v))
        if key not in best_edge or cand < best_edge[key]:
            best_edge[key] = cand
    reduced_graph = WeightedGraph(
        reduced_nodes,
        [(a, b, wc[0]) for (a, b), wc in best_edge.items()],
        validate=False,
    )
    reduced = SteinerForestInstance(reduced_graph, reduced_labels)

    # Lemma G.12's coordination: broadcast of S and of the helper-graph
    # forest over the BFS tree — O(√n + k + D), simulated for real.
    tree = build_bfs_tree(graph, run)
    forest_items = upcast_items(
        tree,
        {
            min(terminals, key=repr): [
                (repr(anchor), repr(instance.label(w)))
                for w in sorted(terminals, key=repr)[:2]
            ]
            for anchor, terminals in members.items()
            if terminals
        },
        run,
    )
    broadcast_items(tree, forest_items, run)

    return ReducedInstance(
        reduced,
        cluster_of,
        {edge: wc[1] for edge, wc in best_edge.items()},
    )
