"""Least-element (LE) lists — the substrate of the [14] tree embedding.

Given a random rank order on the nodes, the LE list of a node ``v`` is

    LE(v) = { (wd(v, u), u) :  rank(u) > rank(w)
              for every w with wd(v, w) < wd(v, u) }

— the sequence of "record-rank" nodes by increasing distance. The level-i
ancestor of the tree embedding is exactly the highest-rank node within
distance β·2^i, which is an LE-list entry; Khan et al. compute the lists
distributively in O(s·log n) rounds w.h.p. and show |LE(v)| ∈ O(log n)
w.h.p., which is also why only O(log n) embedding paths cross any node.

This module computes LE lists both centrally (reference) and via a
round-counted distributed emulation (Bellman–Ford-style relaxations where
a node forwards only entries that survive its own list — the standard
algorithm), and exposes the ancestor lookup used by
:mod:`repro.randomized.embedding`.
"""

from typing import Dict, List, Optional, Tuple

from repro.congest.run import CongestRun
from repro.model.graph import Node, WeightedGraph


def le_list_reference(
    graph: WeightedGraph, rank: Dict[Node, int], v: Node
) -> List[Tuple[int, Node]]:
    """LE(v) computed from all-pairs distances (the specification)."""
    apd = graph.all_pairs_distances()
    ordered = sorted(
        graph.nodes, key=lambda u: (apd[v][u], -rank[u], repr(u))
    )
    result: List[Tuple[int, Node]] = []
    best_rank = -1
    for u in ordered:
        if rank[u] > best_rank:
            best_rank = rank[u]
            result.append((apd[v][u], u))
    return result


def distributed_le_lists(
    graph: WeightedGraph,
    rank: Dict[Node, int],
    run: CongestRun,
) -> Dict[Node, List[Tuple[int, Node]]]:
    """Compute all LE lists with round-counted relaxations.

    Per round, every node whose list changed announces the changed entries
    to its neighbors; a received entry (d, u) survives at ``w`` iff no
    known node at distance < d + W(edge) has larger rank. Each announced
    entry is one O(log n)-bit message; per round a node sends the entries
    one by one (the O(log n) expected list length bounds the per-round
    congestion, matching the paper's O(s log n) bound w.h.p.).
    """
    lists: Dict[Node, Dict[Node, int]] = {
        v: {v: 0} for v in graph.nodes
    }

    def prune(v: Node) -> None:
        entries = sorted(
            lists[v].items(),
            key=lambda kv: (kv[1], -rank[kv[0]], repr(kv[0])),
        )
        best_rank = -1
        kept: Dict[Node, int] = {}
        for u, d in entries:
            if rank[u] > best_rank:
                best_rank = rank[u]
                kept[u] = d
        lists[v] = kept

    changed = {v: dict(lists[v]) for v in graph.nodes}
    while any(changed.values()):
        # Entries travel one hop per round; multiple entries from the same
        # node are serialized (we charge one round per batch slot).
        max_batch = max(
            (len(entries) for entries in changed.values()), default=0
        )
        traffic = {}
        for v, entries in changed.items():
            if not entries:
                continue
            for u in graph.neighbors(v):
                traffic[(v, u)] = 1
        # One round per batch slot; every slot may carry one entry per edge.
        for _slot in range(max(1, max_batch)):
            run.tick(traffic)
        next_changed: Dict[Node, Dict[Node, int]] = {
            v: {} for v in graph.nodes
        }
        for v, entries in changed.items():
            for u in graph.neighbors(v):
                w_edge = graph.weight(v, u)
                for cand, d in entries.items():
                    nd = d + w_edge
                    if cand in lists[u] and lists[u][cand] <= nd:
                        continue
                    # Survives only if it would enter u's pruned list.
                    dominated = any(
                        dist < nd and rank[other] >= rank[cand]
                        for other, dist in lists[u].items()
                    )
                    if dominated:
                        continue
                    lists[u][cand] = nd
                    next_changed[u][cand] = nd
        for v in graph.nodes:
            prune(v)
            next_changed[v] = {
                u: d
                for u, d in next_changed[v].items()
                if lists[v].get(u) == d
            }
        changed = next_changed

    return {
        v: sorted(
            ((d, u) for u, d in lists[v].items()),
            key=lambda du: (du[0], repr(du[1])),
        )
        for v in graph.nodes
    }


def ancestor_from_le_list(
    le_list: List[Tuple[int, Node]], radius
) -> Optional[Node]:
    """The highest-rank node within ``radius``: the LAST list entry with
    distance ≤ radius (entries are rank-increasing in distance)."""
    best = None
    for d, u in le_list:
        if d <= radius:
            best = u
    return best
