"""The randomized Õ(k + min{s, √n} + D)-round algorithm (Section 5).

Pipeline (Theorem 5.2):

1. :mod:`repro.randomized.embedding` — the random-rank virtual tree of Khan
   et al. [14]: every node picks a random rank; the level-i ancestor of v is
   the highest-rank node within distance β·2^i (β random in [1,2]). For
   s > √n the tree is truncated at the √n highest-rank nodes S (Lemma G.2).
2. :mod:`repro.randomized.selection` — the first stage: per level,
   label-carriers route (λ, ancestor) messages along shortest paths with
   per-destination round-robin pipelining; filtering keeps one carrier per
   (label, ancestor). The selected edges F cost at most the optimal virtual
   tree solution (Lemma G.8) — O(log n)·OPT in expectation.
3. :mod:`repro.randomized.reduced` — for s > √n, the F-reduced instance
   (Definition 5.1) with ≤ √n super-terminals, solved by the [17]-style
   spanner algorithm (:mod:`repro.baselines.spanner`).
"""

from repro.randomized.embedding import VirtualTreeEmbedding, build_embedding
from repro.randomized.selection import FirstStageResult, first_stage_selection
from repro.randomized.reduced import ReducedInstance, build_reduced_instance
from repro.randomized.algorithm import RandomizedResult, randomized_steiner_forest

__all__ = [
    "VirtualTreeEmbedding",
    "build_embedding",
    "FirstStageResult",
    "first_stage_selection",
    "ReducedInstance",
    "build_reduced_instance",
    "RandomizedResult",
    "randomized_steiner_forest",
]
