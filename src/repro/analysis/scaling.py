"""Scaling fits and approximation-ratio statistics for experiments.

The reproduction validates *shapes* — "rounds grow linearly in s", "the
ratio stays under 2" — so the benchmark harness needs small statistical
helpers: a log-log power-law fit (the exponent distinguishes O(s) from
O(s²) sweeps), normalized-cost series (measured / claimed-bound), and
ratio summaries.
"""

import math
from typing import List, NamedTuple, Sequence


class PowerLawFit(NamedTuple):
    """y ≈ coefficient · x^exponent, fit in log-log space."""

    exponent: float
    coefficient: float
    r_squared: float


def fit_power_law(
    xs: Sequence[float], ys: Sequence[float]
) -> PowerLawFit:
    """Least-squares fit of y = c·x^a on positive data.

    The exponent is the quantity experiments assert on: a sweep whose
    measured rounds scale linearly with the parameter fits a ≈ 1.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fits need positive data")
    # Closed-form degree-1 least squares in log-log space (kept pure
    # python so the analysis helpers stay inside the dependency-free
    # reference path; numpy is an optional extra for the perf tier).
    log_x = [math.log(float(x)) for x in xs]
    log_y = [math.log(float(y)) for y in ys]
    n = len(log_x)
    mean_x = sum(log_x) / n
    mean_y = sum(log_y) / n
    var_x = sum((lx - mean_x) ** 2 for lx in log_x)
    if var_x == 0:
        raise ValueError("power-law fits need at least two distinct x values")
    cov_xy = sum(
        (lx - mean_x) * (ly - mean_y) for lx, ly in zip(log_x, log_y)
    )
    slope = cov_xy / var_x
    intercept = mean_y - slope * mean_x
    residual = sum(
        (ly - (slope * lx + intercept)) ** 2 for lx, ly in zip(log_x, log_y)
    )
    total = sum((ly - mean_y) ** 2 for ly in log_y)
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(float(slope), float(math.exp(intercept)), r_squared)


def normalized_cost(
    measured: Sequence[float], bound: Sequence[float]
) -> List[float]:
    """Element-wise measured/bound — bounded series certify the shape."""
    if len(measured) != len(bound):
        raise ValueError("series lengths differ")
    return [m / max(1e-12, b) for m, b in zip(measured, bound)]


class RatioSummary(NamedTuple):
    count: int
    mean: float
    maximum: float
    minimum: float

    def within(self, bound: float) -> bool:
        """Whether every observed ratio respects ``bound``."""
        return self.maximum <= bound


def summarize_ratios(ratios: Sequence[float]) -> RatioSummary:
    """Summary statistics for a series of approximation ratios."""
    if not ratios:
        raise ValueError("no ratios to summarize")
    values = list(map(float, ratios))
    return RatioSummary(
        count=len(values),
        mean=sum(values) / len(values),
        maximum=max(values),
        minimum=min(values),
    )
