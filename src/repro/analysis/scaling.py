"""Scaling fits and approximation-ratio statistics for experiments.

The reproduction validates *shapes* — "rounds grow linearly in s", "the
ratio stays under 2" — so the benchmark harness needs small statistical
helpers: a log-log power-law fit (the exponent distinguishes O(s) from
O(s²) sweeps), normalized-cost series (measured / claimed-bound), and
ratio summaries.
"""

import math
from typing import List, NamedTuple, Sequence

import numpy as np


class PowerLawFit(NamedTuple):
    """y ≈ coefficient · x^exponent, fit in log-log space."""

    exponent: float
    coefficient: float
    r_squared: float


def fit_power_law(
    xs: Sequence[float], ys: Sequence[float]
) -> PowerLawFit:
    """Least-squares fit of y = c·x^a on positive data.

    The exponent is the quantity experiments assert on: a sweep whose
    measured rounds scale linearly with the parameter fits a ≈ 1.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need at least two (x, y) pairs of equal length")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("power-law fits need positive data")
    log_x = np.log(np.asarray(xs, dtype=float))
    log_y = np.log(np.asarray(ys, dtype=float))
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residual = float(np.sum((log_y - predicted) ** 2))
    total = float(np.sum((log_y - np.mean(log_y)) ** 2))
    r_squared = 1.0 if total == 0 else 1.0 - residual / total
    return PowerLawFit(float(slope), float(math.exp(intercept)), r_squared)


def normalized_cost(
    measured: Sequence[float], bound: Sequence[float]
) -> List[float]:
    """Element-wise measured/bound — bounded series certify the shape."""
    if len(measured) != len(bound):
        raise ValueError("series lengths differ")
    return [m / max(1e-12, b) for m, b in zip(measured, bound)]


class RatioSummary(NamedTuple):
    count: int
    mean: float
    maximum: float
    minimum: float

    def within(self, bound: float) -> bool:
        """Whether every observed ratio respects ``bound``."""
        return self.maximum <= bound


def summarize_ratios(ratios: Sequence[float]) -> RatioSummary:
    """Summary statistics for a series of approximation ratios."""
    if not ratios:
        raise ValueError("no ratios to summarize")
    values = list(map(float, ratios))
    return RatioSummary(
        count=len(values),
        mean=sum(values) / len(values),
        maximum=max(values),
        minimum=min(values),
    )
