"""Experiment analysis utilities: scaling fits and ratio summaries."""

from repro.analysis.scaling import (
    RatioSummary,
    fit_power_law,
    normalized_cost,
    summarize_ratios,
)

__all__ = [
    "fit_power_law",
    "normalized_cost",
    "RatioSummary",
    "summarize_ratios",
]
