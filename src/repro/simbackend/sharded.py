"""The sharded execution engine: one instance across many processes.

Where the experiment runner (PR 1) parallelizes *across jobs*, this
engine parallelizes *within one simulation*: the node set is partitioned
into contiguous shards, each owned by a worker process that runs its
nodes' ``on_start`` / ``on_round`` callbacks, while the parent keeps
everything that must be globally ordered — the message flush, network
model (RNG, crashes, delays), ledger, trace, and quiescence detection.

Per round, the parent exchanges exactly one batched IPC message pair per
shard: it sends the shard's inbox batch (plus the currently crashed node
set) and receives the shard's outbox batch plus newly halted nodes. All
ordering decisions stay in the parent — merged outboxes flush in the same
canonical ``node_sort_key`` order as the reference engine — so the
execution is deterministic and conformant even though node callbacks run
concurrently.

Node programs live in the workers; when the run quiesces (or the backend
is closed) the final program states are collected and written back into
the caller's program objects, so ``programs[v].leader``-style inspection
works unchanged. Programs and payloads must be picklable.
"""

import multiprocessing
import os
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.model.graph import Node, WeightedGraph
from repro.netmodel import NetworkModel, TraceRecorder
from repro.simbackend.base import (
    Context,
    copy_program_state,
    queue_outbox_message,
    register_backend,
)
from repro.simbackend.reference import ReferenceBackend


class _WorkerShard:
    """Worker-process state: the owned nodes, their programs/contexts,
    and the per-command outbox (validated exactly like the reference)."""

    def __init__(self, graph: WeightedGraph, programs: Dict[Node, Any]) -> None:
        self.graph = graph
        self.programs = programs
        self.nodes = [v for v in graph.nodes if v in programs]
        self.contexts = {v: Context(self, v) for v in self.nodes}
        self.outbox: Dict[Tuple[Node, Node], Any] = {}
        self.halted: set = set()
        self.new_halted: List[Node] = []

    # Context hooks (same contract and messages as the reference engine).

    def _queue_message(self, sender: Node, receiver: Node, payload: Any) -> None:
        queue_outbox_message(self.graph, self.outbox, sender, receiver, payload)

    def _halt(self, node: Node) -> None:
        if node not in self.halted:
            self.halted.add(node)
            self.new_halted.append(node)

    # Command handlers.

    def run_start(self) -> None:
        for v in self.nodes:
            self.programs[v].on_start(self.contexts[v])

    def run_round(
        self,
        round_index: int,
        inboxes: Dict[Node, List[Tuple[Node, Any]]],
        dead: set,
    ) -> None:
        for v in self.nodes:
            if v in self.halted or v in dead:
                continue
            ctx = self.contexts[v]
            ctx.round = round_index
            self.programs[v].on_round(ctx, inboxes.get(v, []))

    def take_output(self) -> Tuple[List[Tuple[Tuple[Node, Node], Any]], List[Node]]:
        items = list(self.outbox.items())
        self.outbox = {}
        new_halted, self.new_halted = self.new_halted, []
        return items, new_halted


def _shard_worker(conn, graph: WeightedGraph, programs: Dict[Node, Any]) -> None:
    """Worker entry point: serve start/round/collect commands over a pipe."""
    shard = _WorkerShard(graph, programs)
    try:
        while True:
            message = conn.recv()
            command = message[0]
            if command == "stop":
                break
            try:
                if command == "collect":
                    conn.send(("state", shard.programs))
                    continue
                if command == "start":
                    shard.run_start()
                else:  # "round"
                    shard.run_round(message[1], message[2], message[3])
                outbox, new_halted = shard.take_output()
                conn.send(("ok", outbox, new_halted))
            except Exception as exc:  # propagate to the parent
                try:
                    conn.send(("error", exc))
                except Exception:
                    conn.send(("error", SimulationError(repr(exc))))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        conn.close()


@register_backend
class ShardedBackend(ReferenceBackend):
    """Multiprocess executor: per-shard node callbacks, central routing.

    Args:
        num_shards: worker process count; ``None`` uses ``os.cpu_count()``.
            Clamped to the node count at bind time.
    """

    name = "sharded"

    def __init__(self, num_shards: Optional[int] = None) -> None:
        """See the class docstring; raises ValueError on num_shards < 1."""
        super().__init__()
        if num_shards is not None and num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.num_shards = num_shards
        self._procs: List[multiprocessing.Process] = []
        self._conns: List[Any] = []
        self._owner: Dict[Node, int] = {}
        self._synced = True

    def params(self) -> Dict[str, Any]:
        """Engine configuration (``num_shards`` hashes into job keys)."""
        return {"num_shards": self.num_shards}

    def bind(
        self,
        graph: WeightedGraph,
        programs: Dict[Node, Any],
        run: Any,
        network: NetworkModel,
        trace: Optional[TraceRecorder],
    ) -> None:
        """Attach to one execution (tears down any previous worker pool)."""
        # Rebinding a reused backend instance must not orphan a previous
        # execution's worker pool (close also syncs its final states).
        self.close()
        super().bind(graph, programs, run, network, trace)
        self._procs = []
        self._conns = []
        self._owner = {}
        self._synced = True

    # -- worker pool -----------------------------------------------------

    def _ensure_workers(self) -> None:
        if self._conns:
            return
        nodes = self.graph.nodes
        shards = self.num_shards or os.cpu_count() or 1
        shards = max(1, min(shards, len(nodes)))
        chunk = (len(nodes) + shards - 1) // shards
        ctx = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        for shard_index in range(shards):
            owned = nodes[shard_index * chunk: (shard_index + 1) * chunk]
            if not owned:
                continue
            for v in owned:
                self._owner[v] = len(self._conns)
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker,
                args=(child_conn, self.graph, {v: self.programs[v] for v in owned}),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)

    def _gather(self) -> List[Any]:
        """Receive one reply per shard; raise the first reported error."""
        replies = []
        for conn in self._conns:
            try:
                replies.append(conn.recv())
            except EOFError:
                raise SimulationError(
                    "a shard worker died mid-execution"
                ) from None
        errors = [reply[1] for reply in replies if reply[0] == "error"]
        if errors:
            raise errors[0]
        return replies

    def _absorb(self, replies: List[Any]) -> None:
        """Merge shard outboxes and halt reports into the parent state."""
        for _, outbox_items, new_halted in replies:
            for key, payload in outbox_items:
                self._outbox[key] = payload
            self._halted.update(new_halted)
        self._synced = False

    def _sync_programs(self) -> None:
        """Write final worker program states back into the caller's
        program objects (dict attributes plus ``__slots__``-declared
        ones — see :func:`~repro.simbackend.base.copy_program_state`)."""
        if self._synced or not self._conns:
            return
        for conn in self._conns:
            conn.send(("collect",))
        for conn in self._conns:
            try:
                tag, state = conn.recv()
            except EOFError:
                raise SimulationError(
                    "a shard worker died before its program states could "
                    "be collected"
                ) from None
            if tag == "error":
                raise state
            if tag != "state":  # pragma: no cover - protocol guard
                raise SimulationError(f"unexpected shard reply {tag!r}")
            for v, remote in state.items():
                copy_program_state(self.programs[v], remote)
        self._synced = True

    def close(self) -> None:
        """Sync final program states back, then stop the worker pool."""
        if not self._conns:
            return
        try:
            # A failed sync must surface (silently stale caller-side
            # program state is a wrong answer), but never before the
            # worker pool is torn down.
            self._sync_programs()
        finally:
            for conn in self._conns:
                try:
                    conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
                conn.close()
            for proc in self._procs:
                proc.join(timeout=10)
                if proc.is_alive():  # pragma: no cover - stuck worker guard
                    proc.terminate()
            self._procs = []
            self._conns = []

    # -- execution -------------------------------------------------------

    def start(self) -> None:
        """Spawn the shard workers and run every program's on_start."""
        self._ensure_workers()
        for conn in self._conns:
            conn.send(("start",))
        self._absorb(self._gather())

    def step(self) -> bool:
        """One synchronous round; workers run callbacks, parent routes."""
        if not self.has_pending or self.all_halted:
            # Quiescent: reflect final worker states before reporting done.
            self._sync_programs()
            return False
        return super().step()

    def _dispatch_round(
        self, inboxes: Dict[Node, List[Tuple[Node, Any]]]
    ) -> None:
        """Farm the on_round callbacks out to the shard workers."""
        dead = set()
        if self.network.removes_nodes:
            alive = self.network.alive
            dead = {v for v in self.graph.nodes if not alive(v)}
        per_shard: List[Dict[Node, List[Tuple[Node, Any]]]] = [
            {} for _ in self._conns
        ]
        for receiver, inbox in inboxes.items():
            per_shard[self._owner[receiver]][receiver] = inbox
        for conn, shard_inboxes in zip(self._conns, per_shard):
            conn.send(("round", self.round, shard_inboxes, dead))
        self._absorb(self._gather())
