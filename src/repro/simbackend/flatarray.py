"""The flat-array execution engine: a batched, integer-indexed fast path.

The reference engine pays for generality on every message: tuple dict
keys, a payload-blind sort that calls ``node_sort_key`` twice per entry,
``has_edge`` lookups, per-message ledger validation with ``repr``-based
canonical edges, and JSON-encoding payload sizes even when nobody reads
them. This engine compiles all of that away at bind time:

* the topology becomes CSR-style integer indices — every directed edge
  gets an id assigned in canonical ``(node_sort_key(sender),
  node_sort_key(receiver))`` order, so *sorting plain ints* reproduces
  the reference flush order exactly;
* the outbox is one preallocated payload slot per directed edge plus a
  list of touched edge ids (duplicate sends and non-edges are caught in
  O(1) at ``send`` time);
* ledger traffic updates use precomputed canonical edges (no ``repr``
  per message), and payload bit-sizes are only computed when a trace
  recorder is attached (the only consumer);
* the clean ``reliable`` channel skips the per-message ``schedule``
  call entirely — delivery lands in the current round by definition.

The observable execution — rounds, ledger state, network stats, trace
events, inbox order, final program states — is identical to the
reference engine for every network model; the conformance suite pins
this across the full NodeProgram × graph family × network model matrix.
"""

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import CongestViolationError, SimulationError
from repro.model.graph import Node, WeightedGraph
from repro.netmodel import (
    NetworkModel,
    ReliableSynchronous,
    TraceRecorder,
    node_sort_key,
    payload_bits,
)
from repro.simbackend.base import Context, SimulationBackend, register_backend

#: Sentinel marking an empty outbox slot (payloads may legally be None).
_UNSET = object()


class _FlatContext(Context):
    """Context with O(1) integer-indexed send/halt paths."""

    def __init__(
        self,
        backend: "FlatArrayBackend",
        node: Node,
        idx: int,
        eids: Dict[Node, int],
    ) -> None:
        super().__init__(backend, node)
        self._idx = idx
        self._eids = eids

    def send(self, neighbor: Node, payload: Any) -> None:
        """Queue one message for delivery next round (≤ 1 per neighbor)."""
        eid = self._eids.get(neighbor)
        if eid is None:
            raise CongestViolationError(
                f"{self.node_id!r} cannot reach non-neighbor {neighbor!r}"
            )
        outbox = self._simulator._outbox_payload
        if outbox[eid] is not _UNSET:
            raise CongestViolationError(
                f"{self.node_id!r} already sent to {neighbor!r} this round"
            )
        outbox[eid] = payload
        self._simulator._sent.append(eid)

    def halt(self) -> None:
        """Mark this node as explicitly terminated."""
        self._simulator._halt_idx(self._idx)


@register_backend
class FlatArrayBackend(SimulationBackend):
    """Batched executor over a compiled integer-indexed topology."""

    name = "flatarray"

    def bind(
        self,
        graph: WeightedGraph,
        programs: Dict[Node, Any],
        run: Any,
        network: NetworkModel,
        trace: Optional[TraceRecorder],
    ) -> None:
        """Compile the topology to integer-indexed arrays and attach."""
        super().bind(graph, programs, run, network, trace)
        nodes = graph.nodes
        n = len(nodes)
        self._nodes = nodes
        index = {v: i for i, v in enumerate(nodes)}
        # Per-node key/repr caches: the compile below touches every
        # directed edge, so sort keys and canonical-edge reprs are
        # computed once per node, not once per edge.
        sort_keys = {v: node_sort_key(v) for v in nodes}
        reprs = {v: repr(v) for v in nodes}
        # Directed-edge ids in canonical flush order: ascending eid ==
        # ascending (node_sort_key(sender), node_sort_key(receiver)), so
        # an integer sort of touched eids replays the reference order.
        by_key = sorted(range(n), key=lambda i: sort_keys[nodes[i]])
        eid_sender: List[Node] = []
        eid_receiver: List[Node] = []
        eid_receiver_idx: List[int] = []
        eid_canon: List[Tuple[Node, Node]] = []
        eids_of: Dict[Node, Dict[Node, int]] = {v: {} for v in nodes}
        for si in by_key:
            sender = nodes[si]
            sender_repr = reprs[sender]
            for receiver in sorted(
                graph.neighbors(sender), key=sort_keys.__getitem__
            ):
                eids_of[sender][receiver] = len(eid_sender)
                eid_sender.append(sender)
                eid_receiver.append(receiver)
                eid_receiver_idx.append(index[receiver])
                # canonical_edge(sender, receiver) with cached reprs.
                eid_canon.append(
                    (sender, receiver)
                    if sender_repr <= reprs[receiver]
                    else (receiver, sender)
                )
        self._eid_sender = eid_sender
        self._eid_receiver = eid_receiver
        self._eid_receiver_idx = eid_receiver_idx
        self._eid_canon = eid_canon
        self._outbox_payload: List[Any] = [_UNSET] * len(eid_sender)
        self._sent: List[int] = []
        #: Scheduled messages by absolute delivery round, in flush order:
        #: (sender node, receiver index, payload).
        self._in_flight: Dict[int, List[Tuple[Node, int, Any]]] = {}
        self._halted = bytearray(n)
        self._halted_count = 0
        self._program_list = [programs[v] for v in nodes]
        self.contexts = {
            v: _FlatContext(self, v, i, eids_of[v]) for i, v in enumerate(nodes)
        }
        self._context_list = [self.contexts[v] for v in nodes]
        # The clean channel's schedule() is the identity — skip the call.
        self._reliable_fast = type(network) is ReliableSynchronous

    # -- internal hooks --------------------------------------------------

    def _queue_message(self, sender: Node, receiver: Node, payload: Any) -> None:
        # Generic path (only hit if someone bypasses _FlatContext).
        self.contexts[sender].send(receiver, payload)

    def _halt(self, node: Node) -> None:
        self._halt_idx(self.contexts[node]._idx)

    def _halt_idx(self, idx: int) -> None:
        if not self._halted[idx]:
            self._halted[idx] = 1
            self._halted_count += 1

    def _flush_order(self, sent: List[int]) -> List[int]:
        """Touched edge ids in canonical flush order. Ascending eid is
        ascending (sender key, receiver key) by construction; subclasses
        may override with a faster integer sort (the numpy engine
        does)."""
        sent.sort()
        return sent

    # -- execution -------------------------------------------------------

    @property
    def all_halted(self) -> bool:
        """Every node has halted or been removed by the network model."""
        if self._halted_count == len(self._nodes):
            return True
        if not self.network.removes_nodes:
            return False
        halted, alive = self._halted, self.network.alive
        return all(
            halted[i] or not alive(v) for i, v in enumerate(self._nodes)
        )

    @property
    def has_pending(self) -> bool:
        """Messages queued (touched edge ids) or in flight."""
        return bool(self._sent) or bool(self._in_flight)

    def start(self) -> None:
        """Run every program's on_start (round 0, local only)."""
        for program, ctx in zip(self._program_list, self._context_list):
            program.on_start(ctx)

    def step(self) -> bool:
        """Execute one synchronous round; returns False when quiescent."""
        if not self.has_pending or self.all_halted:
            return False
        self.round = r = self.round + 1
        network = self.network
        network.begin_round(r)
        run = self.run
        trace = self.trace
        removes_nodes = network.removes_nodes
        sent = self._flush_order(self._sent)
        self._sent = []
        outbox = self._outbox_payload
        senders = self._eid_sender
        receivers = self._eid_receiver
        ridxs = self._eid_receiver_idx
        canon = self._eid_canon
        # Messages delayed from earlier rounds arrive before this round's
        # flush, exactly as in the reference in-flight ordering.
        due = self._in_flight.pop(r, [])
        #: eids whose message actually hit the wire (ledger traffic).
        charged: List[int]
        if self._reliable_fast and not removes_nodes and trace is None:
            # Hottest path: clean channel, nobody watching per-message.
            for eid in sent:
                payload = outbox[eid]
                outbox[eid] = _UNSET
                due.append((senders[eid], ridxs[eid], payload))
            charged = sent
        else:
            charged = []
            for eid in sent:
                payload = outbox[eid]
                outbox[eid] = _UNSET
                sender = senders[eid]
                receiver = receivers[eid]
                if removes_nodes and not network.alive(sender):
                    network.stats["lost_sender_crashed"] += 1
                    if trace is not None:
                        trace.record_lost(r, sender, receiver, "sender_crashed")
                    continue
                if self._reliable_fast:
                    delivery_rounds: Any = (r,)
                else:
                    delivery_rounds = network.schedule(sender, receiver, payload, r)
                charged.append(eid)
                for when in delivery_rounds:
                    if when < r:
                        raise SimulationError(
                            f"network model {network.name!r} scheduled a "
                            f"delivery in the past (round {when} < {r})"
                        )
                    if when == r:
                        due.append((sender, ridxs[eid], payload))
                    else:
                        self._in_flight.setdefault(when, []).append(
                            (sender, ridxs[eid], payload)
                        )
                if trace is not None:
                    trace.record_send(r, sender, receiver, payload, delivery_rounds)
        # Charge the ledger only after the whole flush succeeded —
        # reference calls run.tick(traffic) after _flush_outbox, so a
        # network model raising mid-flush (e.g. strict BandwidthCap)
        # must leave the ledger untouched here too. tick() advances the
        # round; charge_messages applies the precomputed canonical
        # edges — the same end state as tick(traffic).
        run.tick()
        sent_count = len(charged)
        run.charge_messages(canon[eid] for eid in charged)
        # Delivery: group due messages into per-receiver inboxes.
        nodes = self._nodes
        inboxes: Dict[int, List[Tuple[Node, Any]]] = {}
        delivered = dropped = bits = 0
        for sender, ridx, payload in due:
            if removes_nodes and not network.alive(nodes[ridx]):
                dropped += 1
                network.stats["lost_receiver_crashed"] += 1
                if trace is not None:
                    trace.record_lost(r, sender, nodes[ridx], "receiver_crashed")
                continue
            bucket = inboxes.get(ridx)
            if bucket is None:
                inboxes[ridx] = [(sender, payload)]
            else:
                bucket.append((sender, payload))
            delivered += 1
            if trace is not None:
                bits += payload_bits(payload)
        # Dispatch in node order (same as the reference engine).
        halted = self._halted
        contexts = self._context_list
        program_list = self._program_list
        get_inbox = inboxes.get
        if removes_nodes:
            alive = network.alive
            for i, program in enumerate(program_list):
                if halted[i] or not alive(nodes[i]):
                    continue
                ctx = contexts[i]
                ctx.round = r
                program.on_round(ctx, get_inbox(i) or [])
        else:
            for i, program in enumerate(program_list):
                if halted[i]:
                    continue
                ctx = contexts[i]
                ctx.round = r
                program.on_round(ctx, get_inbox(i) or [])
        if trace is not None:
            trace.record_round(r, sent_count, delivered, dropped, bits)
        return True
