"""The reference execution engine: the original per-node-object loop.

This is the simulator round loop as it existed before backends were
introduced, moved behind the :class:`SimulationBackend` interface
unchanged: dict outboxes keyed by (sender, receiver) node pairs, one
:class:`Context` per node object, canonical flush order via
``node_sort_key``, delivery through ``network.schedule``. It is the
regression-pinned semantic baseline every other backend must match
event-for-event (see ``tests/test_simbackend_conformance.py``).
"""

from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import SimulationError
from repro.model.graph import Node, WeightedGraph
from repro.netmodel import NetworkModel, TraceRecorder, payload_bits
from repro.simbackend.base import (
    Context,
    SimulationBackend,
    backend_sort_pairs,
    queue_outbox_message,
    register_backend,
)


@register_backend
class ReferenceBackend(SimulationBackend):
    """Synchronous per-node-object executor (the pinned baseline)."""

    name = "reference"

    def bind(
        self,
        graph: WeightedGraph,
        programs: Dict[Node, Any],
        run: Any,
        network: NetworkModel,
        trace: Optional[TraceRecorder],
    ) -> None:
        """Attach to one execution and build the per-node Contexts."""
        super().bind(graph, programs, run, network, trace)
        self.contexts = {v: Context(self, v) for v in graph.nodes}
        self._outbox: Dict[Tuple[Node, Node], Any] = {}
        #: Scheduled messages by absolute delivery round; entries keep
        #: their flush order, so delivery stays deterministic.
        self._in_flight: Dict[int, List[Tuple[Node, Node, Any]]] = {}
        self._halted: set = set()

    # -- internal hooks used by Context --------------------------------

    def _queue_message(self, sender: Node, receiver: Node, payload: Any) -> None:
        queue_outbox_message(self.graph, self._outbox, sender, receiver, payload)

    def _halt(self, node: Node) -> None:
        self._halted.add(node)

    # -- execution -------------------------------------------------------

    @property
    def all_halted(self) -> bool:
        """Every node has halted or been removed by the network model
        (crashed nodes count as terminated)."""
        if len(self._halted) == len(self.graph.nodes):
            return True
        if not self.network.removes_nodes:
            return False
        return all(
            v in self._halted or not self.network.alive(v)
            for v in self.graph.nodes
        )

    @property
    def has_pending(self) -> bool:
        """Messages queued or in flight."""
        return bool(self._outbox) or bool(self._in_flight)

    def start(self) -> None:
        """Run every program's on_start (round 0, local only)."""
        for v in self.graph.nodes:
            self.programs[v].on_start(self.contexts[v])

    def _flush_outbox(self) -> Dict[Tuple[Node, Node], int]:
        """Hand queued messages to the network model; returns the ledger
        traffic for this round (canonical flush order, payload-blind)."""
        traffic: Dict[Tuple[Node, Node], int] = {}
        sent = backend_sort_pairs(self._outbox)
        self._outbox = {}
        removes_nodes = self.network.removes_nodes
        for (sender, receiver), payload in sent:
            if removes_nodes and not self.network.alive(sender):
                # The sender crashed before its queued send hit the wire.
                self.network.stats["lost_sender_crashed"] += 1
                if self.trace is not None:
                    self.trace.record_lost(
                        self.round, sender, receiver, "sender_crashed"
                    )
                continue
            traffic[(sender, receiver)] = 1
            delivery_rounds = self.network.schedule(
                sender, receiver, payload, self.round
            )
            for when in delivery_rounds:
                if when < self.round:
                    raise SimulationError(
                        f"network model {self.network.name!r} scheduled a "
                        f"delivery in the past (round {when} < {self.round})"
                    )
                self._in_flight.setdefault(when, []).append(
                    (sender, receiver, payload)
                )
            if self.trace is not None:
                self.trace.record_send(
                    self.round, sender, receiver, payload, delivery_rounds
                )
        return traffic

    def step(self) -> bool:
        """Execute one synchronous round; returns False when quiescent
        (no messages queued or in flight, and/or all nodes halted)."""
        if not self.has_pending or self.all_halted:
            return False
        self.round += 1
        self.network.begin_round(self.round)
        traffic = self._flush_outbox()
        self.run.tick(traffic)
        due = self._in_flight.pop(self.round, [])
        inboxes: Dict[Node, List[Tuple[Node, Any]]] = {}
        delivered = dropped = bits = 0
        removes_nodes = self.network.removes_nodes
        for sender, receiver, payload in due:
            if removes_nodes and not self.network.alive(receiver):
                dropped += 1
                self.network.stats["lost_receiver_crashed"] += 1
                if self.trace is not None:
                    self.trace.record_lost(
                        self.round, sender, receiver, "receiver_crashed"
                    )
                continue
            inboxes.setdefault(receiver, []).append((sender, payload))
            delivered += 1
            bits += payload_bits(payload)
        self._dispatch_round(inboxes)
        if self.trace is not None:
            self.trace.record_round(
                self.round, len(traffic), delivered, dropped, bits
            )
        return True

    def _dispatch_round(
        self, inboxes: Dict[Node, List[Tuple[Node, Any]]]
    ) -> None:
        """Run on_round for every live, unhalted node (overridable: the
        sharded engine farms this part out to worker processes)."""
        removes_nodes = self.network.removes_nodes
        for v in self.graph.nodes:
            if v in self._halted or (
                removes_nodes and not self.network.alive(v)
            ):
                continue
            ctx = self.contexts[v]
            ctx.round = self.round
            self.programs[v].on_round(ctx, inboxes.get(v, []))
