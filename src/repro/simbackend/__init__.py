"""Simulation backends: pluggable execution engines for the simulator.

The :class:`~repro.congest.simulator.Simulator` front-end stays stable
while the engine that turns the crank is swappable:

* :mod:`repro.simbackend.base` — the :class:`SimulationBackend`
  interface (message queues, network-model routing, quiescence/halt
  detection), canonical spec normalization, and the shared
  :class:`Context` node view.
* :mod:`repro.simbackend.reference` — the original per-node-object
  loop, byte-identical and regression-pinned.
* :mod:`repro.simbackend.flatarray` — a batched fast path over a
  compiled CSR-style integer-indexed topology (no per-round dict churn
  or node-object hashing on the hot path).
* :mod:`repro.simbackend.sharded` — a multiprocess engine that
  partitions nodes across worker processes with per-round batched IPC,
  so one large instance uses many cores.
* :mod:`repro.simbackend.npbackend` — the optional ``numpy`` tier's
  message-level engine (flat-array execution with numpy flush
  ordering); registered only when numpy imports, so the reference path
  stays dependency-free. Its ledger-level counterpart is
  :class:`repro.perf.npkernels.NumpyCongestRun`.
* :mod:`repro.simbackend.auto` — resolves to ``reference``,
  ``flatarray``, or ``numpy`` at bind time from the instance size (the
  measured crossovers), sharing its heuristic with the ledger-level
  fast path in :mod:`repro.perf`.

**Invariant: reference is the byte-identical ground truth.** Every
other engine — and the ledger-level fast path the backend axis selects
for the paper's solvers — must reproduce the reference execution
exactly (rounds, ledger traffic, network statistics, trace events,
final program states); the conformance suites pin this and the
reference loop itself is never optimized.

The experiment engine threads canonical backend specs through scenario
definitions and job identities exactly like network conditions: the
default ``reference`` backend is omitted from cache keys (existing
stores keep absorbing re-runs), and every other engine hashes to its
own key.
"""

from repro.simbackend.auto import (
    AUTO_THRESHOLD_NODES,
    NUMPY_THRESHOLD_NODES,
    AutoBackend,
    choose_engine_name,
    numpy_tier_available,
)
from repro.simbackend.base import (
    BACKENDS,
    DEFAULT_BACKEND,
    Context,
    SimulationBackend,
    build_backend,
    is_default_backend,
    normalize_backend,
    register_backend,
)
from repro.simbackend.flatarray import FlatArrayBackend
from repro.simbackend.reference import ReferenceBackend
from repro.simbackend.sharded import ShardedBackend

try:  # The numpy tier is an optional extra: absence is not an error.
    from repro.simbackend.npbackend import NumpyBackend
except ImportError:  # pragma: no cover - exercised by the no-numpy CI job
    NumpyBackend = None  # type: ignore[assignment,misc]

__all__ = [
    "AUTO_THRESHOLD_NODES",
    "BACKENDS",
    "DEFAULT_BACKEND",
    "NUMPY_THRESHOLD_NODES",
    "AutoBackend",
    "choose_engine_name",
    "numpy_tier_available",
    "Context",
    "NumpyBackend",
    "SimulationBackend",
    "build_backend",
    "is_default_backend",
    "normalize_backend",
    "register_backend",
    "FlatArrayBackend",
    "ReferenceBackend",
    "ShardedBackend",
]
