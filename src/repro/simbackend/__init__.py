"""Simulation backends: pluggable execution engines for the simulator.

The :class:`~repro.congest.simulator.Simulator` front-end stays stable
while the engine that turns the crank is swappable:

* :mod:`repro.simbackend.base` — the :class:`SimulationBackend`
  interface (message queues, network-model routing, quiescence/halt
  detection), canonical spec normalization, and the shared
  :class:`Context` node view.
* :mod:`repro.simbackend.reference` — the original per-node-object
  loop, byte-identical and regression-pinned.
* :mod:`repro.simbackend.flatarray` — a batched fast path over a
  compiled CSR-style integer-indexed topology (no per-round dict churn
  or node-object hashing on the hot path).
* :mod:`repro.simbackend.sharded` — a multiprocess engine that
  partitions nodes across worker processes with per-round batched IPC,
  so one large instance uses many cores.

The experiment engine threads canonical backend specs through scenario
definitions and job identities exactly like network conditions: the
default ``reference`` backend is omitted from cache keys (existing
stores keep absorbing re-runs), and every other engine hashes to its
own key.
"""

from repro.simbackend.base import (
    BACKENDS,
    DEFAULT_BACKEND,
    Context,
    SimulationBackend,
    build_backend,
    is_default_backend,
    normalize_backend,
    register_backend,
)
from repro.simbackend.flatarray import FlatArrayBackend
from repro.simbackend.reference import ReferenceBackend
from repro.simbackend.sharded import ShardedBackend

__all__ = [
    "BACKENDS",
    "DEFAULT_BACKEND",
    "Context",
    "SimulationBackend",
    "build_backend",
    "is_default_backend",
    "normalize_backend",
    "register_backend",
    "FlatArrayBackend",
    "ReferenceBackend",
    "ShardedBackend",
]
