"""The message-level face of the numpy tier.

NodeProgram callbacks are arbitrary Python — there is nothing legal to
vectorize inside ``on_round`` — so the numpy *message-level* engine
inherits the flat-array machinery wholesale (compiled integer topology,
O(1) sends, batched ledger charging) and swaps in numpy only where an
array primitive genuinely wins: the per-round flush-order sort of
touched edge ids, which dominates the routing cost on dense rounds.
The real vectorization wins of the tier live at the *ledger* level
(:mod:`repro.perf.npkernels`), which :func:`repro.perf.make_ledger_run`
selects for the same ``numpy`` backend spec — registering the name here
keeps one ``--backend numpy`` valid across the whole stack, exactly
like ``flatarray``.

This module imports numpy at module scope on purpose: with numpy absent
the import fails and :mod:`repro.simbackend` simply does not register
the tier, so ``numpy`` never appears in the registry and every spec
naming it is rejected with the standard unknown-backend error.

Conformance: the engine inherits the flatarray execution verbatim (the
flush order is identical — ascending edge id either way), so the full
cross-backend matrix (tests/test_simbackend_conformance.py) pins it
byte-identical to reference like every other engine.
"""

from typing import List

import numpy as np

from repro.simbackend.base import register_backend
from repro.simbackend.flatarray import FlatArrayBackend

#: Below this many touched edges per round, list.sort() beats the
#: ndarray round-trip; above it numpy's integer sort wins.
_NP_SORT_MIN = 2048


@register_backend
class NumpyBackend(FlatArrayBackend):
    """Flat-array execution with numpy-accelerated flush ordering."""

    name = "numpy"

    def _flush_order(self, sent: List[int]) -> List[int]:
        """Ascending edge ids — via ``np.sort`` on dense rounds."""
        if len(sent) >= _NP_SORT_MIN:
            return np.sort(np.asarray(sent, dtype=np.int64)).tolist()
        sent.sort()
        return sent
