"""The simulation-backend interface: who owns the round loop.

The CONGEST :class:`~repro.congest.simulator.Simulator` is a thin facade;
the actual execution engine — message queues, network-model routing,
quiescence and halt detection — is a :class:`SimulationBackend`. Backends
are swappable implementations of one contract: given a graph, one
:class:`~repro.congest.simulator.NodeProgram` per node, a shared
:class:`~repro.congest.run.CongestRun` ledger, a bound
:class:`~repro.netmodel.NetworkModel`, and an optional
:class:`~repro.netmodel.TraceRecorder`, produce the *same* execution —
identical rounds, ledger traffic, trace events, and final program states —
while being free to choose the data layout and process topology that
computes it.

Like network conditions, backends are hashable experiment input: a
backend is identified by a canonical ``{"name", "params"}`` spec dict
(:func:`normalize_backend`), and the engine omits the default
``reference`` backend from job identities so existing result-store cache
keys are unchanged.

The network-model delivery hooks (``begin_round`` / ``schedule`` /
``alive``) are backend-agnostic by construction: every backend calls them
through the same :class:`~repro.netmodel.NetworkModel` interface, in the
same canonical message order, so one model implementation serves every
execution engine.
"""

from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.exceptions import CongestViolationError, SimulationError
from repro.model.graph import Node, WeightedGraph
from repro.netmodel import NetworkModel, TraceRecorder

# NOTE: this package must not import repro.congest at module scope —
# repro.congest.simulator imports the backends, and the ledger type
# (CongestRun) is only passed through, so ``Any``-typed hooks suffice.

#: The canonical spec of the default execution engine.
DEFAULT_BACKEND: Dict[str, Any] = {"name": "reference", "params": {}}

#: Anything :func:`normalize_backend` accepts.
BackendLike = Union[None, str, Mapping[str, Any], "SimulationBackend"]


class Context:
    """Per-node view handed to a NodeProgram each round.

    ``_simulator`` is the owning :class:`SimulationBackend` (historically
    the simulator itself); backends may subclass Context to specialize the
    send/halt hot path, but the NodeProgram-facing surface is fixed.
    """

    def __init__(self, simulator: "SimulationBackend", node: Node) -> None:
        """Bind the view to one node of the engine's graph."""
        self._simulator = simulator
        self.node_id = node
        self.neighbors = simulator.graph.neighbors(node)
        self.round = 0

    def edge_weight(self, neighbor: Node) -> int:
        """Weight of the incident edge to ``neighbor``."""
        return self._simulator.graph.weight(self.node_id, neighbor)

    def send(self, neighbor: Node, payload: Any) -> None:
        """Queue one message for delivery next round (≤ 1 per neighbor)."""
        self._simulator._queue_message(self.node_id, neighbor, payload)

    def halt(self) -> None:
        """Mark this node as explicitly terminated (Section 2's notion of
        termination; a halted node no longer receives on_round calls)."""
        self._simulator._halt(self.node_id)


class SimulationBackend:
    """Base class for execution engines behind the simulator facade.

    Lifecycle: construct (with engine parameters only), then
    :meth:`bind` once per execution, then :meth:`start` / :meth:`step`
    or :meth:`run_to_completion`. :meth:`close` releases any resources a
    backend holds (worker processes); it is idempotent and called
    automatically by :meth:`run_to_completion`.
    """

    name = "abstract"

    def __init__(self) -> None:
        """Engines construct unbound; :meth:`bind` attaches an execution."""
        self.graph: Optional[WeightedGraph] = None
        self.programs: Dict[Node, Any] = {}
        self.run: Any = None
        self.network: Optional[NetworkModel] = None
        self.trace: Optional[TraceRecorder] = None
        self.round = 0

    # -- identity --------------------------------------------------------

    def params(self) -> Dict[str, Any]:
        """JSON-serializable engine configuration (empty when
        parameter-free)."""
        return {}

    def spec(self) -> Dict[str, Any]:
        """The canonical spec dict identifying this backend + parameters."""
        return {"name": self.name, "params": self.params()}

    # -- lifecycle -------------------------------------------------------

    def bind(
        self,
        graph: WeightedGraph,
        programs: Dict[Node, Any],
        run: Any,
        network: NetworkModel,
        trace: Optional[TraceRecorder],
    ) -> None:
        """Attach to one execution (called by the Simulator facade)."""
        self.graph = graph
        self.programs = programs
        self.run = run
        self.network = network
        self.trace = trace
        self.round = 0

    def close(self) -> None:
        """Release backend resources (worker processes, buffers)."""

    # -- execution contract ----------------------------------------------

    @property
    def all_halted(self) -> bool:
        """Every node has halted (or been removed by the network model)."""
        raise NotImplementedError

    @property
    def has_pending(self) -> bool:
        """Messages queued or in flight."""
        raise NotImplementedError

    def start(self) -> None:
        """Run every program's on_start (round 0, local only)."""
        raise NotImplementedError

    def step(self) -> bool:
        """Execute one synchronous round; returns False when quiescent."""
        raise NotImplementedError

    def run_to_completion(self, max_rounds: int = 100_000) -> int:
        """start() + step() until quiescence; returns rounds executed.

        ``max_rounds`` is inclusive: quiescing in exactly ``max_rounds``
        rounds succeeds, and :class:`SimulationError` is raised as soon as
        the limit is reached with work still pending (never executing a
        ``max_rounds + 1``-th round).
        """
        self.start()
        rounds = 0
        try:
            while self.has_pending and not self.all_halted:
                if rounds >= max_rounds:
                    raise SimulationError(
                        f"node programs did not quiesce in {max_rounds} rounds"
                    )
                self.step()
                rounds += 1
        except BaseException:
            # Best-effort cleanup; the original error is what matters.
            try:
                self.close()
            except Exception:
                pass
            self._close_trace(swallow=True)
            raise
        # On success close() must not be silenced: a sharded engine that
        # cannot sync final program states back has to fail loudly, not
        # return a round count with stale caller-side state.
        self.close()
        self._close_trace(swallow=False)
        return rounds

    def _close_trace(self, swallow: bool) -> None:
        """Release a streaming trace's file handle when the execution
        ends — completed or dying, the JSONL stream must not be left on
        an open handle. Closing is idempotent and the recorder stays
        usable (re-streaming appends), so eager closing is safe even
        when the caller keeps the recorder around."""
        if self.trace is None:
            return
        try:
            self.trace.close()
        except Exception:
            if not swallow:
                raise

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params().items()))
        return f"{type(self).__name__}({params})"


#: Registered backend classes by canonical name (populated on import of
#: the implementation modules; see :func:`register_backend`).
BACKENDS: Dict[str, type] = {}


def register_backend(cls: type) -> type:
    """Class decorator adding a backend to the :data:`BACKENDS` registry."""
    BACKENDS[cls.name] = cls
    return cls


def normalize_backend(backend: BackendLike) -> Dict[str, Any]:
    """Turn user shorthand into one canonical ``{"name", "params"}`` dict.

    Accepts ``None`` (the default reference engine), a backend name
    string, a mapping with ``name`` and optional ``params`` keys, or a
    constructed :class:`SimulationBackend`. The result is
    JSON-round-trippable with deterministic content, so it is safe to
    hash into job identities.
    """
    if backend is None:
        return dict(DEFAULT_BACKEND, params={})
    if isinstance(backend, SimulationBackend):
        return backend.spec()
    if isinstance(backend, str):
        return {"name": backend, "params": {}}
    if isinstance(backend, Mapping):
        unknown = set(backend) - {"name", "params"}
        if unknown:
            raise ValueError(
                f"unexpected backend spec keys {sorted(unknown)}; "
                'expected {"name": name, "params": {...}}'
            )
        return {
            "name": str(backend.get("name", DEFAULT_BACKEND["name"])),
            "params": dict(backend.get("params", {})),
        }
    raise TypeError(f"cannot interpret backend spec {backend!r}")


def is_default_backend(backend: BackendLike) -> bool:
    """Whether ``backend`` denotes the default reference engine."""
    spec = normalize_backend(backend)
    return spec["name"] == DEFAULT_BACKEND["name"] and not spec["params"]


def build_backend(backend: BackendLike = None) -> "SimulationBackend":
    """Instantiate a backend from anything :func:`normalize_backend`
    accepts.

    A constructed :class:`SimulationBackend` passes through unchanged, so
    callers can hand the simulator a pre-configured engine.
    """
    if isinstance(backend, SimulationBackend):
        return backend
    import repro.simbackend  # noqa: F401 — populate the registry

    spec = normalize_backend(backend)
    try:
        cls = BACKENDS[spec["name"]]
    except KeyError:
        raise ValueError(
            f"unknown simulation backend {spec['name']!r}; "
            f"choose from {sorted(BACKENDS)}"
        ) from None
    try:
        return cls(**spec["params"])
    except TypeError as exc:
        raise ValueError(
            f"bad parameters for simulation backend {spec['name']!r}: {exc}"
        ) from None


def backend_sort_pairs(
    items: Mapping[Tuple[Node, Node], Any]
) -> List[Tuple[Tuple[Node, Node], Any]]:
    """Outbox entries in canonical flush order (shared by backends).

    Deterministic order must depend on the (sender, receiver) key only,
    never on the payload — and on a type-stable total order, never on
    ``repr`` (under which ``repr(9) > repr(10)``).
    """
    from repro.netmodel import node_sort_key

    return sorted(
        items.items(),
        key=lambda item: (node_sort_key(item[0][0]), node_sort_key(item[0][1])),
    )


def queue_outbox_message(
    graph: WeightedGraph,
    outbox: Dict[Tuple[Node, Node], Any],
    sender: Node,
    receiver: Node,
    payload: Any,
) -> None:
    """The shared CONGEST send validation: one message per neighbor per
    round, edges only. Used by every dict-outbox engine (reference and
    the sharded workers) so the contract and error wording cannot
    diverge; the flatarray engine enforces the same checks (and strings)
    on its integer-indexed path."""
    if not graph.has_edge(sender, receiver):
        raise CongestViolationError(
            f"{sender!r} cannot reach non-neighbor {receiver!r}"
        )
    key = (sender, receiver)
    if key in outbox:
        raise CongestViolationError(
            f"{sender!r} already sent to {receiver!r} this round"
        )
    outbox[key] = payload


def copy_program_state(local: Any, remote: Any) -> None:
    """Copy a program's final state from ``remote`` onto ``local`` in
    place (the sharded engine's sync-back): dict attributes plus any
    ``__slots__`` attributes anywhere in the MRO."""
    if hasattr(local, "__dict__"):
        local.__dict__.clear()
        local.__dict__.update(getattr(remote, "__dict__", {}))
    for cls in type(remote).__mro__:
        for name in getattr(cls, "__slots__", ()) or ():
            if name in ("__dict__", "__weakref__"):
                continue
            try:
                setattr(local, name, getattr(remote, name))
            except AttributeError:
                # Never assigned in the worker: clear locally too.
                try:
                    delattr(local, name)
                except AttributeError:
                    pass
