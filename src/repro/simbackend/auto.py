"""The auto backend: pick the execution engine from the instance.

``backend="auto"`` resolves to a concrete engine at :meth:`bind` time
using the measured crossover from ``BENCH_backends.json`` /
``BENCH_profile.json``:

* below :data:`AUTO_THRESHOLD_NODES` nodes the ``reference`` engine
  wins — the flat-array topology compile is pure overhead on graphs
  that finish in microseconds, and the per-node-object loop is the
  regression-pinned baseline anyway;
* from the threshold up, ``flatarray`` wins and keeps winning (the
  benchmarks show 3–4× on message-level programs and ≥ 2× on the paper
  pipeline at n = 256);
* ``sharded`` is **never** auto-picked: its per-round IPC only pays off
  when ``on_round`` does heavy per-node computation, which cannot be
  detected from the topology alone — opt into it explicitly.

The same heuristic drives the ledger-level fast path for the paper's
solvers (see :func:`repro.perf.make_ledger_run`), so ``--backend auto``
means one thing across the whole stack. Because auto only ever
delegates to conformance-pinned engines, it is byte-identical to
``reference`` across the conformance matrix by construction — and the
matrix re-verifies it anyway (``tests/test_simbackend_conformance.py``).
"""

from typing import Any, Dict, Optional

from repro.model.graph import Node, WeightedGraph
from repro.netmodel import NetworkModel, TraceRecorder
from repro.simbackend.base import (
    SimulationBackend,
    build_backend,
    register_backend,
)

#: Node count from which ``flatarray`` beats ``reference`` end-to-end
#: (including its bind-time topology compile); measured in
#: ``benchmarks/bench_e16_backends.py`` and ``bench_e18_profile.py``.
AUTO_THRESHOLD_NODES = 64

#: Node count from which the vectorized ``numpy`` tier beats
#: ``flatarray`` end-to-end (its array compilation and per-round kernel
#: launch overheads amortize; measured in
#: ``benchmarks/bench_e22_numpy.py``). Only reachable when the optional
#: numpy extra is installed — otherwise the heuristic stays two-tier.
NUMPY_THRESHOLD_NODES = 1024


def numpy_tier_available() -> bool:
    """Whether the optional ``numpy`` engine registered (numpy installed).

    Checked lazily at choice time: the registry is populated by the
    package import, which tolerates a missing numpy by simply not
    registering the tier.
    """
    from repro.simbackend.base import BACKENDS

    return "numpy" in BACKENDS


def choose_engine_name(
    num_nodes: int,
    threshold: int = AUTO_THRESHOLD_NODES,
    numpy_threshold: int = NUMPY_THRESHOLD_NODES,
) -> str:
    """The engine the auto heuristic picks for an ``num_nodes``-node graph.

    Three tiers: ``reference`` below ``threshold``, ``flatarray`` in the
    mid-range, and ``numpy`` from ``numpy_threshold`` up when the
    optional extra is installed (without numpy the top tier cleanly
    degrades to ``flatarray``). Shared by :class:`AutoBackend`
    (message-level executions) and :func:`repro.perf.make_ledger_run`
    (ledger-level solvers) so the two halves of ``backend="auto"``
    cannot drift apart.
    """
    if num_nodes < threshold:
        return "reference"
    if num_nodes >= numpy_threshold and numpy_tier_available():
        return "numpy"
    return "flatarray"


@register_backend
class AutoBackend(SimulationBackend):
    """Size-heuristic engine selection behind the standard backend spec.

    Args:
        threshold: node count at which the choice flips from
            ``reference`` to ``flatarray``. The default is the measured
            crossover; a non-default value hashes into the backend spec
            (and therefore into result-store cache keys).
        numpy_threshold: node count at which the choice flips from
            ``flatarray`` to the vectorized ``numpy`` tier (when the
            optional extra is installed). Same identity semantics: only
            non-default values hash into the spec.
    """

    name = "auto"

    def __init__(
        self,
        threshold: int = AUTO_THRESHOLD_NODES,
        numpy_threshold: int = NUMPY_THRESHOLD_NODES,
    ) -> None:
        """See the class docstring for the threshold semantics."""
        # Before the base constructor: its ``self.round = 0`` goes
        # through the delegating property setter below, which needs
        # ``_engine`` to exist (still None pre-bind).
        self._engine: Optional[SimulationBackend] = None
        super().__init__()
        self.threshold = int(threshold)
        self.numpy_threshold = int(numpy_threshold)

    # -- identity --------------------------------------------------------

    def params(self) -> Dict[str, Any]:
        """Spec parameters: empty at the default thresholds, so plain
        ``"auto"`` round-trips through :func:`normalize_backend`."""
        params: Dict[str, Any] = {}
        if self.threshold != AUTO_THRESHOLD_NODES:
            params["threshold"] = self.threshold
        if self.numpy_threshold != NUMPY_THRESHOLD_NODES:
            params["numpy_threshold"] = self.numpy_threshold
        return params

    # -- delegation ------------------------------------------------------

    @property
    def engine(self) -> SimulationBackend:
        """The concrete engine chosen at bind time.

        Raises:
            RuntimeError: before :meth:`bind` resolved the choice.
        """
        if self._engine is None:
            raise RuntimeError("AutoBackend is unbound; call bind() first")
        return self._engine

    def bind(
        self,
        graph: WeightedGraph,
        programs: Dict[Node, Any],
        run: Any,
        network: NetworkModel,
        trace: Optional[TraceRecorder],
    ) -> None:
        """Resolve the engine for ``graph`` and bind it to the execution."""
        super().bind(graph, programs, run, network, trace)
        self._engine = build_backend(
            choose_engine_name(
                graph.num_nodes, self.threshold, self.numpy_threshold
            )
        )
        self._engine.bind(graph, programs, run, network, trace)

    def close(self) -> None:
        """Release the delegate engine's resources (idempotent)."""
        if self._engine is not None:
            self._engine.close()

    # -- execution contract (pure delegation) ----------------------------

    @property
    def contexts(self) -> Dict[Node, Any]:
        """The delegate engine's per-node Context objects."""
        return self.engine.contexts

    @property
    def round(self) -> int:  # type: ignore[override]
        """The delegate engine's round counter (0 before bind)."""
        return self._engine.round if self._engine is not None else 0

    @round.setter
    def round(self, value: int) -> None:
        # The base-class constructor assigns round = 0 before any engine
        # exists; after bind the delegate owns the counter.
        if self._engine is not None:
            self._engine.round = value

    @property
    def all_halted(self) -> bool:
        """Delegates to the bound engine."""
        return self.engine.all_halted

    @property
    def has_pending(self) -> bool:
        """Delegates to the bound engine."""
        return self.engine.has_pending

    def start(self) -> None:
        """Run every program's on_start on the delegate engine."""
        self.engine.start()

    def step(self) -> bool:
        """Execute one round on the delegate engine."""
        return self.engine.step()
