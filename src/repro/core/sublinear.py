"""The sublinear-in-t deterministic algorithm (Section 4.2, Appendix F).

Structure of the paper's algorithm, per *growth phase* (the maximal moat
radius grows by a factor 1 + ε/2 per phase, Lemma F.1 bounds the number of
phases by O(log n / ε)):

* Step 3a — merge phases inside the growth phase: terminal decompositions
  by reduced-weight Bellman–Ford, O(s) rounds each; the number of merge
  phases k_g counts merges involving inactive moats (Definition 4.19);
* Step 3b — *small* moats (component smaller than σ = √min{st, n} nodes,
  Definition 4.18) merge locally: each proposes its least-weight candidate
  merge, a maximal matching on the proposal graph (Cole–Vishkin, Lemma F.4)
  bounds merge chains, O(log σ) iterations of O(σ + s) rounds;
* Step 3c–3f — at most σ *large* moats remain (Lemma F.2); their merges are
  collected by the pipelined filtered upcast in O(D + σ) rounds;
* Step 3g–3i — activity recomputation in O(D + k + σ) rounds.

Fidelity note (cf. DESIGN.md): this module drives the merge *semantics*
from an exact Algorithm 2 run (:func:`repro.core.rounded.
rounded_moat_growing` — Lemma F.4 shows the distributed schedule selects
exactly that merge set, merely reordering within growth phases) and
*simulates the communication* of the schedule: the per-merge-phase
Bellman–Ford is executed for real on the simulator, the small-moat matching
iterations run the real Cole–Vishkin matching on the actual proposal graphs
with rounds charged at the measured moat diameters, and the large-moat
collection is a real pipelined upcast over the BFS tree. The measured
rounds therefore scale as Õ(s·k + σ) (Corollary 4.20/4.21), which
experiment E4 contrasts with the O(ks + t) of Section 4.1.
"""

import math
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple, Union

from repro.congest.bfs import build_bfs_tree
from repro.congest.bellman_ford import bellman_ford
from repro.congest.broadcast import broadcast_items, upcast_items
from repro.congest.run import CongestRun
from repro.core.matching import maximal_matching_from_proposals
from repro.core.moat import MergeEvent, MoatGrowingResult
from repro.core.pruning import fast_pruning
from repro.core.rounded import rounded_moat_growing
from repro.model.graph import Edge, Node
from repro.model.instance import SteinerForestInstance
from repro.perf.profiler import maybe_span
from repro.util import UnionFind


class SublinearResult:
    """Outcome of the Section 4.2 algorithm (including fast pruning)."""

    def __init__(
        self,
        instance: SteinerForestInstance,
        central: MoatGrowingResult,
        run: CongestRun,
        sigma: int,
        num_growth_phases: int,
        num_merge_phases: int,
    ) -> None:
        self.instance = instance
        self.central = central
        self.forest = central.forest
        self.solution = central.solution
        self.run = run
        self.sigma = sigma
        self.num_growth_phases = num_growth_phases
        self.num_merge_phases = num_merge_phases

    @property
    def rounds(self) -> int:
        return self.run.rounds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SublinearResult(W={self.solution.weight}, "
            f"rounds={self.rounds}, growth_phases={self.num_growth_phases})"
        )


def _growth_phase_groups(events: List[MergeEvent]) -> List[List[MergeEvent]]:
    """Split an Algorithm 2 event list into growth phases at checkpoints."""
    groups: List[List[MergeEvent]] = []
    current: List[MergeEvent] = []
    for event in events:
        current.append(event)
        if event.v is None:  # checkpoint ends the growth phase
            groups.append(current)
            current = []
    if current:
        groups.append(current)
    return groups


def _component_nodes(
    graph, forest_edges: Set[Edge]
) -> Tuple[UnionFind, Dict[Node, int]]:
    uf = UnionFind(graph.nodes)
    for u, v in forest_edges:
        uf.union(u, v)
    sizes: Dict[Node, int] = {}
    for v in graph.nodes:
        root = uf.find(v)
        sizes[root] = sizes.get(root, 0) + 1
    return uf, sizes


def sublinear_moat_growing(
    instance: SteinerForestInstance,
    epsilon: Union[int, float, Fraction] = Fraction(1, 2),
    run: Optional[CongestRun] = None,
    sigma: Optional[int] = None,
) -> SublinearResult:
    """Run the Õ(sk + √min{st,n})-round deterministic algorithm.

    Returns a :class:`SublinearResult`; the solution is (2+ε)-approximate
    (Corollary 4.21) and equals the Algorithm 2 output.
    """
    graph = instance.graph
    if run is None:
        run = CongestRun(graph)
    # The compiled-ledger fast path (repro.perf.fastpath): identical
    # execution with precompiled charging for the broadcast steps.
    compiled = getattr(run, "compiled", None)
    profiler = getattr(run, "profiler", None)
    n = graph.num_nodes
    t = max(1, instance.num_terminals)
    s = graph.shortest_path_diameter()
    if sigma is None:
        sigma = max(1, math.isqrt(min(s * t, n)))

    with maybe_span(profiler, "central-schedule"):
        central = rounded_moat_growing(instance, epsilon)

    # ------------------------------------------------------------------
    # Setup: BFS tree + labels global (as in Section 4.1). O(D + t).
    # ------------------------------------------------------------------
    run.set_phase("setup")
    tree = build_bfs_tree(graph, run)
    terminal_items = upcast_items(
        tree,
        {
            v: ([(v, instance.label(v))] if instance.label(v) is not None else [])
            for v in graph.nodes
        },
        run,
    )
    broadcast_items(tree, terminal_items, run)

    groups = _growth_phase_groups(central.events)
    forest_so_far: Set[Edge] = set()
    total_merge_phases = 0

    for g, group in enumerate(groups, start=1):
        run.set_phase(f"growth-{g}")
        merges = [e for e in group if e.v is not None]

        # ----- Step 3a: merge-phase decompositions -----------------------
        # k_g = 1 + number of merges that involve an inactive moat; each
        # merge phase recomputes the decomposition with one real
        # Bellman–Ford from all terminals (O(s) rounds, measured).
        k_g = 1 + sum(1 for e in merges if e.phase_boundary)
        total_merge_phases += k_g
        for _ in range(k_g):
            with maybe_span(profiler, "bellman-ford"):
                bellman_ford(
                    graph,
                    {v: (Fraction(0), v) for v in instance.terminals},
                    run,
                )
            # One round of owner exchange plus the min-candidate
            # convergecast of Step 3aiv over the BFS tree.
            if compiled is not None:
                run.tick()
                run.charge_counter(compiled.full_counter, compiled.num_directed)
            else:
                run.tick({
                    (x, y): 1 for x in graph.nodes for y in graph.neighbors(x)
                })
            run.charge_rounds(
                2 * tree.depth, "min-candidate convergecast (Step 3aiv)"
            )

        # ----- Step 3b: small moats merge locally via matching -----------
        remaining = list(merges)
        iterations_budget = max(1, math.ceil(math.log2(max(2, sigma))))
        for _ in range(iterations_budget):
            if not remaining:
                break
            uf, sizes = _component_nodes(graph, forest_so_far)
            terminal_root = {v: uf.find(v) for v in instance.terminals}

            def moat_of(terminal: Node) -> Node:
                return terminal_root[terminal]

            small = {
                root
                for root in set(terminal_root.values())
                if sizes[root] < sigma
            }
            # Each small moat proposes its least-weight remaining merge.
            proposal: Dict[Node, Node] = {}
            proposal_event: Dict[Node, MergeEvent] = {}
            for event in sorted(remaining, key=lambda e: (e.mu, e.index)):
                a, b = moat_of(event.v), moat_of(event.w)
                if a == b:
                    continue
                for mine, other in ((a, b), (b, a)):
                    if mine in small and mine not in proposal:
                        proposal[mine] = other
                        proposal_event[mine] = event
            if not proposal:
                break
            matching, cv_iterations = maximal_matching_from_proposals(
                proposal
            )
            max_diam = max(
                (sizes[root] for root in small), default=1
            )
            run.charge_rounds(
                (cv_iterations + 1) * min(sigma, max_diam),
                "Cole-Vishkin matching over moat spanning trees (Step 3b)",
            )
            chosen: List[MergeEvent] = []
            used: Set[Node] = set()
            for a, b in sorted(matching, key=repr):
                event = proposal_event.get(a, proposal_event.get(b))
                if event is not None:
                    chosen.append(event)
                    used.add(a)
                    used.add(b)
            for moat, event in sorted(
                proposal_event.items(), key=lambda kv: repr(kv[0])
            ):
                if moat not in used:
                    chosen.append(event)
            applied: Set[int] = set()
            for event in chosen:
                if event.index in applied:
                    continue
                applied.add(event.index)
                for edge in event.added_edges:
                    forest_so_far.add(edge)
            remaining = [e for e in remaining if e.index not in applied]

        # ----- Steps 3c–3f: remaining (large-moat) merges via the BFS
        # tree, pipelined: O(D + #remaining) rounds, simulated for real. ---
        if remaining:
            upcast_items(
                tree,
                {
                    min(e.path, key=repr): [(e.index, str(e.mu))]
                    for e in remaining
                },
                run,
            )
            broadcast_items(
                tree, [(e.index, str(e.mu)) for e in remaining], run
            )
            for event in remaining:
                for edge in event.added_edges:
                    forest_so_far.add(edge)

        # ----- Steps 3g–3i: new moats + activity recomputation -----------
        # Small moats resolve internally (≤ σ rounds); large moats use the
        # BFS tree with ≤ 2 witness messages per label (Lemma 2.4 style).
        run.charge_rounds(
            sigma + tree.depth + instance.num_components,
            "activity recomputation at growth-phase end (Step 3i)",
        )

    # ------------------------------------------------------------------
    # Fast pruning (Appendix F.3) replaces the trivial minimal-subforest
    # collection; Õ(σ + k + D) rounds charged on the same ledger.
    # ------------------------------------------------------------------
    fast_pruning(instance, central.forest, run=run, sigma=sigma)
    return SublinearResult(
        instance,
        central,
        run,
        sigma,
        num_growth_phases=len(groups),
        num_merge_phases=total_merge_phases,
    )
