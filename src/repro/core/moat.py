"""Centralized moat growing — Algorithm 1 of the paper (Appendix C).

All terminals grow *moats* (weighted balls) around themselves at unit rate.
When two moats touch, growth pauses, the edges of a least-weight path
connecting two terminals of the touching moats are emitted (cycle-closing
edges dropped), and the moats merge. A merged moat stays *active* while some
input component is split between it and the rest of the graph; once a moat
contains all terminals of every label it touches, it goes inactive and stops
growing. The minimal feasible subforest of the emitted edges is a
2-approximation (Theorem 4.1).

The implementation works directly with terminal-to-terminal distances: moats
of active terminals ``v, w`` in different moats touch after additional growth

    µ = (wd(v, w) − rad(v) − rad(w)) / 2          (both active)
    µ =  wd(v, w) − rad(v) − rad(w)               (exactly one active)

so each iteration picks the globally minimal event (ties broken by terminal
identifiers, the paper's lexicographic convention). Radii are
:class:`~fractions.Fraction`s since active–active events are half-integral.

Besides the forest the run records a *dual lower bound* Σᵢ actᵢ·µᵢ which, by
Lemma C.4, is a certified lower bound on the optimum — the test-suite and
benchmarks use it to verify the 2-approximation without exact solvers.
"""

from fractions import Fraction
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.model.graph import Edge, Node, canonical_edge
from repro.model.instance import SteinerForestInstance
from repro.model.solution import ForestSolution
from repro.perf.profiler import maybe_span
from repro.util import UnionFind


class MergeEvent:
    """One merge step of Algorithm 1/2.

    Attributes:
        index: 1-based merge index ``i``.
        mu: the growth increment µᵢ of this step.
        v, w: the terminals whose moats merged (None for Algorithm 2's
            growth-phase checkpoints, which merge nothing).
        path: node sequence of the selected least-weight path (empty for
            checkpoints).
        added_edges: path edges actually added (cycle-closers dropped).
        active_moats: number of active moats *during* the step (actᵢ).
        phase_boundary: True when some terminal's activity status changed
            at the end of this step — the merge-phase boundaries of
            Definition 4.3.
    """

    __slots__ = (
        "index",
        "mu",
        "v",
        "w",
        "path",
        "added_edges",
        "active_moats",
        "phase_boundary",
    )

    def __init__(
        self,
        index: int,
        mu: Fraction,
        v: Optional[Node],
        w: Optional[Node],
        path: Sequence[Node],
        added_edges: FrozenSet[Edge],
        active_moats: int,
        phase_boundary: bool,
    ) -> None:
        self.index = index
        self.mu = mu
        self.v = v
        self.w = w
        self.path = list(path)
        self.added_edges = added_edges
        self.active_moats = active_moats
        self.phase_boundary = phase_boundary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MergeEvent(i={self.index}, mu={self.mu}, "
            f"{self.v!r}~{self.w!r}, act={self.active_moats})"
        )


class MoatGrowingResult:
    """Outcome of a (centralized) moat-growing run.

    Attributes:
        forest: all edges emitted during merging (the set F of Algorithm 1).
        solution: the minimal feasible subforest (the returned output).
        events: the full merge history.
        radii: final rad(v) per terminal.
        dual_lower_bound: Σᵢ actᵢ µᵢ (Lemma C.4 / Corollary D.1); for
            Algorithm 1 this lower-bounds OPT directly, for Algorithm 2
            OPT ≥ dual_lower_bound / (1 + ε/2).
        num_merge_phases: number of maximal merge subsequences with
            constant activity pattern (Definition 4.3; at most 2k by
            Lemma 4.4).
    """

    def __init__(
        self,
        instance: SteinerForestInstance,
        forest_edges: FrozenSet[Edge],
        events: List[MergeEvent],
        radii: Dict[Node, Fraction],
    ) -> None:
        self.instance = instance
        self.forest = ForestSolution(instance.graph, forest_edges)
        self.solution = self.forest.minimal_subforest(instance)
        self.events = events
        self.radii = radii

    @property
    def dual_lower_bound(self) -> Fraction:
        return sum(
            (e.active_moats * e.mu for e in self.events), Fraction(0)
        )

    @property
    def num_merge_phases(self) -> int:
        return 1 + sum(1 for e in self.events[:-1] if e.phase_boundary)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MoatGrowingResult(W={self.solution.weight}, "
            f"merges={len(self.events)}, LB={self.dual_lower_bound})"
        )


class _MoatSystem:
    """Shared mutable state of Algorithms 1 and 2.

    Tracks the moat partition of the terminals (union-find), per-moat labels
    and activity flags (keyed by union-find representative), and per-terminal
    radii. Exposes the event computation and the merge transition exactly as
    the pseudocode's lines 10–33 prescribe.
    """

    def __init__(self, instance: SteinerForestInstance) -> None:
        self.instance = instance
        self.graph = instance.graph
        self.terminals: Tuple[Node, ...] = tuple(
            sorted(instance.terminals, key=repr)
        )
        self.moats = UnionFind(self.terminals)
        self.label: Dict[Node, Hashable] = {}
        self.active: Dict[Node, bool] = {}
        self.rad: Dict[Node, Fraction] = {
            v: Fraction(0) for v in self.terminals
        }
        components = instance.components
        for v in self.terminals:
            self.label[v] = instance.label(v)
            # A singleton input component is satisfied from the start.
            self.active[v] = len(components[instance.label(v)]) >= 2
        self.forest_uf = UnionFind(self.graph.nodes)
        self.forest_edges: Set[Edge] = set()
        self._dist = self.graph.all_pairs_distances()

    # -- state queries --------------------------------------------------

    def rep(self, v: Node) -> Node:
        return self.moats.find(v)

    def is_active(self, v: Node) -> bool:
        return self.active[self.rep(v)]

    def moat_label(self, v: Node) -> Hashable:
        return self.label[self.rep(v)]

    def active_moat_count(self) -> int:
        reps = {self.rep(v) for v in self.terminals}
        return sum(1 for r in reps if self.active[r])

    def has_active(self) -> bool:
        return any(self.active[self.rep(v)] for v in self.terminals)

    def activity_snapshot(self) -> Dict[Node, bool]:
        return {v: self.is_active(v) for v in self.terminals}

    # -- event computation (pseudocode lines 10–14) ----------------------

    def next_event(self) -> Optional[Tuple[Fraction, Node, Node]]:
        """The minimal growth µ at which two distinct moats touch.

        Returns (µ, v, w) with v's moat active, or None when no event can
        ever occur (all moats inactive or only one moat left).
        """
        best: Optional[Tuple[Fraction, str, str, Node, Node]] = None
        for i, v in enumerate(self.terminals):
            for w in self.terminals[i + 1:]:
                rv, rw = self.rep(v), self.rep(w)
                if rv == rw:
                    continue
                act_v, act_w = self.active[rv], self.active[rw]
                if not act_v and not act_w:
                    continue
                gap = (
                    Fraction(self._dist[v][w]) - self.rad[v] - self.rad[w]
                )
                if act_v and act_w:
                    mu = gap / 2
                else:
                    mu = gap
                assert mu >= 0, "moats may not overlap before merging"
                # Orient so the first terminal is in an active moat.
                a, b = (v, w) if act_v else (w, v)
                key = (mu, repr(a), repr(b), a, b)
                if best is None or key[:3] < best[:3]:
                    best = key
        if best is None:
            return None
        return best[0], best[3], best[4]

    # -- transitions -----------------------------------------------------

    def grow(self, mu: Fraction) -> None:
        """Grow all active moats by µ (pseudocode lines 15–16 / 40–41)."""
        for v in self.terminals:
            if self.is_active(v):
                self.rad[v] += mu

    def emit_path(self, v: Node, w: Node) -> Tuple[List[Node], FrozenSet[Edge]]:
        """Add a least-weight v–w path to the forest, dropping cycle edges."""
        path = self.graph.shortest_path(v, w)
        added: Set[Edge] = set()
        for a, b in zip(path, path[1:]):
            if self.forest_uf.union(a, b):
                edge = canonical_edge(a, b)
                added.add(edge)
                self.forest_edges.add(edge)
        return path, frozenset(added)

    def merge(self, v: Node, w: Node, always_active: bool) -> None:
        """Merge the moats of v and w (pseudocode lines 20–33).

        ``always_active`` distinguishes Algorithm 2 (merged moats stay
        active until the next growth-phase checkpoint) from Algorithm 1
        (activity re-evaluated immediately).
        """
        rv, rw = self.rep(v), self.rep(w)
        assert rv != rw
        label_v, label_w = self.label[rv], self.label[rw]
        self.moats.union(rv, rw)
        new_rep = self.rep(v)
        # Relabel: every moat carrying label_w now carries label_v.
        if label_v != label_w:
            for t in self.terminals:
                r = self.rep(t)
                if self.label[r] == label_w:
                    self.label[r] = label_v
        self.label[new_rep] = label_v
        if always_active:
            self.active[new_rep] = True
        else:
            self.active[new_rep] = not self._label_class_is_single_moat(
                label_v
            )

    def _label_class_is_single_moat(self, label: Hashable) -> bool:
        reps = {
            self.rep(t) for t in self.terminals if self.moat_label(t) == label
        }
        return len(reps) <= 1

    def recompute_all_activity(self) -> None:
        """Growth-phase checkpoint of Algorithm 2 (lines 20–25): a moat is
        active iff another moat carries the same label."""
        reps = {self.rep(t) for t in self.terminals}
        label_count: Dict[Hashable, int] = {}
        for r in reps:
            label_count[self.label[r]] = label_count.get(self.label[r], 0) + 1
        for r in reps:
            self.active[r] = label_count[self.label[r]] >= 2


def moat_growing(
    instance: SteinerForestInstance, profiler: Optional[Any] = None
) -> MoatGrowingResult:
    """Run Algorithm 1 and return the 2-approximate Steiner forest.

    Args:
        instance: the DSF-IC instance.
        profiler: optional :class:`repro.perf.PhaseProfiler`; the
            centralized algorithm has no CONGEST ledger, so its phases
            are wall-time spans — the all-pairs preprocessing, the
            grow/merge event loop, and the minimal-subforest extraction.
    """
    with maybe_span(profiler, "moat/apsp-setup"):
        system = _MoatSystem(instance)
    events: List[MergeEvent] = []
    index = 0
    with maybe_span(profiler, "moat/event-loop"):
        while system.has_active():
            event = system.next_event()
            assert event is not None, (
                "an active moat exists, so its label occurs in another moat "
                "and a future merge event must exist"
            )
            mu, v, w = event
            index += 1
            active_count = system.active_moat_count()
            before = system.activity_snapshot()
            system.grow(mu)
            path, added = system.emit_path(v, w)
            system.merge(v, w, always_active=False)
            after = system.activity_snapshot()
            events.append(
                MergeEvent(
                    index=index,
                    mu=mu,
                    v=v,
                    w=w,
                    path=path,
                    added_edges=added,
                    active_moats=active_count,
                    phase_boundary=(before != after),
                )
            )
    with maybe_span(profiler, "moat/minimal-subforest"):
        return MoatGrowingResult(
            instance, frozenset(system.forest_edges), events, dict(system.rad)
        )
