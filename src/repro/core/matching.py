"""Deterministic matching on moat-proposal graphs (Cole–Vishkin [6]).

Step 3b of the Section 4.2 algorithm lets every *small* moat propose its
least-weight outgoing candidate merge. The proposal graph (one out-edge per
small moat) is a pseudo-forest; the paper 3-colours it by simulating the
Cole–Vishkin deterministic coin-tossing colour reduction in O(log* n)
iterations, then extracts a maximal matching from the colouring, so merge
chains have constant length.

This module implements the colour reduction and the matching extraction on
explicit proposal graphs; the caller charges the simulated communication
(each Cole–Vishkin iteration costs O(σ + s) rounds when routed through moat
spanning trees, Lemma F.4).
"""

from typing import Dict, Hashable, Optional, Set, Tuple

Vertex = Hashable


def _bit_length_reduce(
    colors: Dict[Vertex, int], successor: Dict[Vertex, Optional[Vertex]]
) -> Dict[Vertex, int]:
    """One Cole–Vishkin iteration: c ← 2i + bit_i(c), where i is the lowest
    bit position in which c differs from the successor's colour."""
    new_colors: Dict[Vertex, int] = {}
    for v, c in colors.items():
        succ = successor.get(v)
        if succ is None or succ == v:
            # Roots recolour against a virtual successor of colour c ^ 1 so
            # that they always find a differing bit (bit 0).
            succ_color = c ^ 1
        else:
            succ_color = colors[succ]
        diff = c ^ succ_color
        i = (diff & -diff).bit_length() - 1
        new_colors[v] = 2 * i + ((c >> i) & 1)
    return new_colors


def cole_vishkin_coloring(
    successor: Dict[Vertex, Optional[Vertex]],
) -> Tuple[Dict[Vertex, int], int]:
    """Colour a pseudo-forest with O(1) colours deterministically.

    Args:
        successor: each vertex's unique out-neighbor (None for roots).

    Returns (colors, iterations): a colouring from {0..5} that is proper
    along successor edges, reached after O(log* n) reduction iterations.
    (The paper reduces further to 3 colours; any O(1) palette yields the
    same O(log* n)-round matching, and 6 avoids the shift-down machinery
    that requires bounded degree.)
    """
    vertices = sorted(successor, key=repr)
    colors = {v: i for i, v in enumerate(vertices)}
    iterations = 0
    # Reduce until colours fit in {0..5} (2i + bit with i ≤ 2).
    while max(colors.values(), default=0) > 5:
        colors = _bit_length_reduce(colors, successor)
        iterations += 1
        if iterations > 64:  # log* of anything practical is tiny
            raise RuntimeError("Cole-Vishkin failed to converge")
    return colors, iterations


def maximal_matching_from_proposals(
    proposal: Dict[Vertex, Vertex],
) -> Tuple[Set[Tuple[Vertex, Vertex]], int]:
    """A maximal matching on the proposal pseudo-forest (paper Step 3bii).

    Args:
        proposal: small moat → the moat it proposes to merge with. Only
            proposals between two *proposing* vertices form the matching
            graph F'_C; the caller re-adds proposals of unmatched vertices
            afterwards (Step 3biii).

    Returns (matching, iterations): matched unordered pairs, plus the number
    of simulated colour/matching iterations (for round accounting).
    """
    successor: Dict[Vertex, Optional[Vertex]] = {}
    for v, target in proposal.items():
        successor[v] = target if target in proposal else None
    colors, iterations = cole_vishkin_coloring(successor)

    matched: Set[Vertex] = set()
    matching: Set[Tuple[Vertex, Vertex]] = set()
    # Colour classes take turns claiming their proposal edge; a vertex may
    # match only if both endpoints are still free. O(1) more simulated
    # rounds (one per colour).
    for color in range(6):
        iterations += 1
        for v in sorted(proposal, key=repr):
            if colors[v] != color or v in matched:
                continue
            target = proposal[v]
            if target in proposal and target not in matched:
                matched.add(v)
                matched.add(target)
                pair = (
                    (v, target) if repr(v) <= repr(target) else (target, v)
                )
                matching.add(pair)
    return matching, iterations
