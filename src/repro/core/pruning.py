"""Fast pruning of a solving forest (Appendix F.3).

Given a forest ``F`` that solves a DSF-IC instance, the final output must be
the *minimal* subforest that still solves it. Collecting everything at one
node costs Ω(t) rounds and tree depths can be Ω(st), so the paper prunes in
Õ(σ + k + D) rounds, σ = √min{st, n}:

1. components of (V, F) with diameter ≤ σ prune themselves locally;
2. larger components are partitioned into ≤ σ clusters of depth Õ(σ) by
   iterated matching-based cluster merging (Lemma F.7);
3. the contracted cluster forest (C, F_C) is made global knowledge
   (O(D + σ) rounds) and the label sets l_e of inter-cluster edges are
   derived by the pipelined label propagation of Lemma F.8
   (O(σ + k + D) rounds) — an inter-cluster edge survives iff some label
   has terminals on both of its sides;
4. each cluster selects the minimal intra-cluster subtrees spanning its
   demanded labels (Lemma F.6, O(σ + k) rounds).

In a forest the minimal feasible subset is *unique* (union of the unique
tree paths between same-group terminals), so the routine's output equals
``ForestSolution.minimal_subforest``; the implementation cross-checks this
invariant and the tests rely on it.
"""

import math
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.congest.bfs import build_bfs_tree
from repro.congest.broadcast import broadcast_items, upcast_items
from repro.congest.run import CongestRun
from repro.core.matching import maximal_matching_from_proposals
from repro.model.graph import Edge, Node, canonical_edge
from repro.model.instance import SteinerForestInstance
from repro.model.solution import ForestSolution
from repro.perf.profiler import maybe_span
from repro.util import UnionFind


class PruningResult:
    """Outcome of the fast pruning routine."""

    def __init__(
        self,
        solution: ForestSolution,
        run: CongestRun,
        num_clusters: int,
        sigma: int,
    ) -> None:
        self.solution = solution
        self.run = run
        self.num_clusters = num_clusters
        self.sigma = sigma

    @property
    def rounds(self) -> int:
        return self.run.rounds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PruningResult(W={self.solution.weight}, "
            f"rounds={self.rounds}, clusters={self.num_clusters})"
        )


def _forest_components(
    nodes, edges: FrozenSet[Edge]
) -> List[Set[Node]]:
    uf = UnionFind(nodes)
    for u, v in edges:
        uf.union(u, v)
    by_root: Dict[Node, Set[Node]] = {}
    for u, v in edges:
        for x in (u, v):
            by_root.setdefault(uf.find(x), set()).add(x)
    return list(by_root.values())


def _grow_clusters(
    component: Set[Node],
    adjacency: Dict[Node, Set[Node]],
    sigma: int,
) -> Tuple[Dict[Node, Node], int]:
    """Partition one forest component into clusters of ≥ σ nodes (except
    possibly when the merging stalls at component boundaries) via iterated
    matching on cluster proposal graphs (Lemma F.7).

    Returns (node → cluster leader, iterations used).
    """
    leader: Dict[Node, Node] = {v: v for v in component}

    def cluster_sizes() -> Dict[Node, int]:
        sizes: Dict[Node, int] = {}
        for v in component:
            sizes[leader[v]] = sizes.get(leader[v], 0) + 1
        return sizes

    iterations = 0
    max_iterations = max(1, math.ceil(math.log2(max(2, sigma))))
    for _ in range(max_iterations):
        sizes = cluster_sizes()
        small = {c for c, size in sizes.items() if size < sigma}
        if not small:
            break
        iterations += 1
        # Each small cluster proposes an arbitrary (deterministic: smallest)
        # outgoing forest edge.
        proposal: Dict[Node, Node] = {}
        for v in sorted(component, key=repr):
            c = leader[v]
            if c not in small or c in proposal:
                continue
            for u in sorted(adjacency[v], key=repr):
                if leader[u] != c:
                    proposal[c] = leader[u]
                    break
        if not proposal:
            break
        matching, _ = maximal_matching_from_proposals(proposal)
        merged: Set[Node] = set()
        pairs: List[Tuple[Node, Node]] = sorted(matching, key=repr)
        for c, target in sorted(proposal.items(), key=repr):
            if c not in merged and all(c not in pair for pair in pairs):
                pairs.append((c, target))
                merged.add(c)
        uf = UnionFind()
        for a, b in pairs:
            uf.union(a, b)
        remap: Dict[Node, Node] = {}
        for group in uf.sets():
            rep = min(group, key=repr)
            for c in group:
                remap[c] = rep
        for v in component:
            leader[v] = remap.get(leader[v], leader[v])
    return leader, iterations


def fast_pruning(
    instance: SteinerForestInstance,
    forest: ForestSolution,
    run: Optional[CongestRun] = None,
    sigma: Optional[int] = None,
) -> PruningResult:
    """Prune ``forest`` to the minimal subforest solving ``instance``.

    Simulates/charges the communication of Appendix F.3 and returns the
    (unique) minimal feasible subforest.
    """
    graph = instance.graph
    if run is None:
        run = CongestRun(graph)
    n = graph.num_nodes
    t = max(1, instance.num_terminals)
    if sigma is None:
        s = graph.shortest_path_diameter()
        sigma = max(1, math.isqrt(min(s * t, n)))

    run.set_phase("pruning")
    tree = build_bfs_tree(graph, run)
    # Step 1: make the label set Λ known to all nodes — O(D + k).
    labels = upcast_items(
        tree,
        {
            v: ([instance.label(v)] if instance.label(v) is not None else [])
            for v in graph.nodes
        },
        run,
    )
    broadcast_items(tree, labels, run)

    adjacency: Dict[Node, Set[Node]] = {v: set() for v in graph.nodes}
    for u, v in forest.edges:
        adjacency[u].add(v)
        adjacency[v].add(u)

    components = _forest_components(graph.nodes, forest.edges)
    num_clusters = 0
    for component in components:
        # Step 2/3: small components prune locally in O(σ) rounds; larger
        # ones first grow clusters (Lemma F.7, Õ(σ) rounds per iteration).
        if len(component) <= sigma:
            run.charge_rounds(
                min(sigma, len(component)),
                "local pruning inside a small component (Lemma F.6)",
            )
            num_clusters += 1
            continue
        with maybe_span(getattr(run, "profiler", None), "cluster-growing"):
            leader, iterations = _grow_clusters(component, adjacency, sigma)
        clusters = {leader[v] for v in component}
        num_clusters += len(clusters)
        run.charge_rounds(
            iterations * (sigma + 3),
            "matching-based cluster growing (Lemma F.7)",
        )
        # Step 4: contracted cluster forest made global knowledge.
        inter_edges = {
            canonical_edge(leader[u], leader[v])
            for u, v in forest.edges
            if u in component and leader[u] != leader[v]
        }
        run.charge_rounds(
            tree.depth + len(inter_edges),
            "broadcast of the contracted cluster forest (Step 4)",
        )
        # Steps 5–8: pipelined label propagation along the BFS tree; at
        # most k + |F_C| non-redundant messages per node (Lemma F.8).
        run.charge_rounds(
            tree.depth + len(labels) + len(inter_edges),
            "label propagation on the cluster forest (Lemma F.8)",
        )
        # Steps 9–10: intra-cluster minimal subtree selection (Lemma F.6).
        run.charge_rounds(
            sigma + len(labels),
            "intra-cluster subtree selection (Lemma F.6)",
        )

    # The communication above reconstructs exactly the unique minimal
    # feasible subforest; compute it and cross-check the cluster-level
    # selection rule (an inter-cluster edge survives iff some label has
    # terminals on both of its sides within the tree — Lemma F.9).
    with maybe_span(getattr(run, "profiler", None), "minimal-subforest"):
        solution = forest.minimal_subforest(instance)
        if len(forest.edges) <= 200:  # the check is quadratic in |F|
            _check_cluster_selection(instance, forest, solution)
    return PruningResult(solution, run, num_clusters, sigma)


def _check_cluster_selection(
    instance: SteinerForestInstance,
    forest: ForestSolution,
    solution: ForestSolution,
) -> None:
    """Lemma F.9 invariant: a forest edge is kept iff removing it separates
    two terminals of the same input component."""
    components = {
        label: nodes
        for label, nodes in instance.components.items()
        if len(nodes) >= 2
    }
    uf_all = UnionFind(instance.graph.nodes)
    for u, v in forest.edges:
        uf_all.union(u, v)
    for u, v in sorted(forest.edges, key=repr):
        uf = UnionFind(instance.graph.nodes)
        for a, b in forest.edges:
            if (a, b) != (u, v):
                uf.union(a, b)
        separates = any(
            len({uf.find(x) for x in nodes if uf_all.connected(x, u)}) > 1
            for nodes in components.values()
        )
        kept = canonical_edge(u, v) in solution.edges
        assert kept == separates, (
            f"cluster selection rule violated at edge ({u!r}, {v!r})"
        )
