"""Convenience APIs for the special cases the paper discusses (Section 1).

Steiner Forest strictly generalizes three classic problems; these wrappers
express them through the library's instance model:

* **Steiner Tree** (k = 1): the deterministic algorithm becomes a
  2-approximation of the minimum Steiner tree — "one can interpret the
  output as the edge set induced by an MST of the complete graph on the
  terminals".
* **MST** (k = 1, t = n): the output is an *exact* MST and the running
  time becomes Õ(√n + D).
* **Shortest s–t path** (t = 2, k = 1): moat growing from both endpoints
  returns exactly a least-weight s–t path (the two moats meet halfway),
  which is also the t = 2 hard case of Lemma 3.4.
"""

from typing import Optional, Tuple

from repro.congest.run import CongestRun
from repro.core.distributed import DistributedResult, distributed_moat_growing
from repro.model.graph import Node, WeightedGraph
from repro.model.instance import SteinerForestInstance


def steiner_tree_instance(
    graph: WeightedGraph, terminals
) -> SteinerForestInstance:
    """The k = 1 instance spanning ``terminals``."""
    return SteinerForestInstance(
        graph, {v: "steiner-tree" for v in terminals}
    )


def distributed_steiner_tree(
    graph: WeightedGraph,
    terminals,
    run: Optional[CongestRun] = None,
) -> DistributedResult:
    """2-approximate Steiner tree via the deterministic algorithm."""
    return distributed_moat_growing(
        steiner_tree_instance(graph, terminals), run
    )


def distributed_mst(
    graph: WeightedGraph, run: Optional[CongestRun] = None
) -> DistributedResult:
    """Exact MST via the k = 1, t = n specialization."""
    instance = SteinerForestInstance(
        graph, {v: "mst" for v in graph.nodes}
    )
    return distributed_moat_growing(instance, run)


def distributed_shortest_path(
    graph: WeightedGraph,
    source: Node,
    target: Node,
    run: Optional[CongestRun] = None,
) -> Tuple[DistributedResult, int]:
    """Least-weight s–t path via the t = 2 specialization.

    Returns (result, path_weight); the solution's edge set is a least-
    weight path between ``source`` and ``target``.
    """
    instance = SteinerForestInstance(
        graph, {source: "pair", target: "pair"}
    )
    result = distributed_moat_growing(instance, run)
    return result, result.solution.weight
