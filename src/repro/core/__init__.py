"""The paper's primary contribution: moat-growing Steiner forest algorithms.

* :mod:`repro.core.moat` — the centralized moat-growing Algorithm 1
  (2-approximation, Theorem 4.1) and its event/merge bookkeeping.
* :mod:`repro.core.rounded` — Algorithm 2 with rounded moat radii
  ((2+ε)-approximation, Theorem 4.2) and O(log n/ε) growth phases.
* :mod:`repro.core.distributed` — the distributed emulation of Section 4.1
  (O(ks + t) rounds, Theorem 4.17).
* :mod:`repro.core.sublinear` — the Section 4.2 variant with small/large
  moats (Õ(sk + √min{st,n}) rounds before pruning, Corollary 4.20).
* :mod:`repro.core.pruning` — the fast pruning routine of Appendix F.3.
* :mod:`repro.core.matching` — deterministic matching on moat proposal
  graphs via Cole–Vishkin colour reduction.
"""

from repro.core.moat import MoatGrowingResult, moat_growing
from repro.core.rounded import rounded_moat_growing
from repro.core.distributed import DistributedResult, distributed_moat_growing
from repro.core.sublinear import SublinearResult, sublinear_moat_growing
from repro.core.pruning import PruningResult, fast_pruning

__all__ = [
    "MoatGrowingResult",
    "moat_growing",
    "rounded_moat_growing",
    "DistributedResult",
    "distributed_moat_growing",
    "SublinearResult",
    "sublinear_moat_growing",
    "PruningResult",
    "fast_pruning",
]
