"""Algorithm 2 — moat growing with rounded radii (Appendix D).

Identical to Algorithm 1 except that moats change their activity status only
at *growth-phase checkpoints*: growth is clamped at thresholds µ̂ that grow by
a factor (1 + ε/2) per checkpoint, and between checkpoints merged moats
always remain active. Merges may therefore occur at only O(log_{1+ε/2} WD)
⊆ O(log n / ε) distinct radii, which the distributed Section 4.2 algorithm
exploits; the price is an approximation factor of 2 + ε (Theorem 4.2).

The dual bound recorded in the result satisfies
OPT ≥ dual_lower_bound / (1 + ε/2) (Corollary D.1).
"""

from fractions import Fraction
from typing import Any, List, Optional, Union

from repro.core.moat import MergeEvent, MoatGrowingResult, _MoatSystem
from repro.model.instance import SteinerForestInstance
from repro.perf.profiler import maybe_span


def _as_fraction(value: Union[int, float, Fraction]) -> Fraction:
    """Convert ε to an exact Fraction (via str for floats, so 0.1 → 1/10)."""
    if isinstance(value, float):
        return Fraction(str(value))
    return Fraction(value)


def rounded_moat_growing(
    instance: SteinerForestInstance,
    epsilon: Union[int, float, Fraction] = Fraction(1, 2),
    profiler: Optional[Any] = None,
) -> MoatGrowingResult:
    """Run Algorithm 2 and return the (2+ε)-approximate Steiner forest.

    Args:
        instance: the DSF-IC instance.
        epsilon: the rounding parameter ε > 0 (growth phases multiply the
            radius threshold by 1 + ε/2).
        profiler: optional :class:`repro.perf.PhaseProfiler`; like
            Algorithm 1, the phases are wall-time spans (all-pairs
            preprocessing, the checkpointed event loop, the
            minimal-subforest extraction).

    Returns a :class:`~repro.core.moat.MoatGrowingResult`; checkpoint steps
    appear in ``events`` with ``v = w = None``. The number of growth phases
    equals the number of checkpoint events and is O(log WD / ε)
    (Lemma F.1).

    Raises:
        ValueError: when ``epsilon`` is not positive.
    """
    eps = _as_fraction(epsilon)
    if eps <= 0:
        raise ValueError("epsilon must be positive")
    growth_factor = 1 + eps / 2

    with maybe_span(profiler, "rounded/apsp-setup"):
        system = _MoatSystem(instance)
    events: List[MergeEvent] = []
    index = 0
    cumulative = Fraction(0)
    mu_hat = Fraction(1)
    with maybe_span(profiler, "rounded/event-loop"):
        while system.has_active():
            event = system.next_event()
            # Unlike Algorithm 1, a moat may be flagged active here although its
            # label class is already united (activity is only re-evaluated at
            # checkpoints), so a merge event need not exist — e.g. when a single
            # moat remains. The pseudocode's min over an empty set is +∞ and the
            # µ̂ test then forces a checkpoint.
            if event is None:
                mu, v, w = mu_hat - cumulative, None, None
            else:
                mu, v, w = event
            index += 1
            active_count = system.active_moat_count()
            before = system.activity_snapshot()
            if event is None or cumulative + mu >= mu_hat:
                # Growth-phase checkpoint (pseudocode lines 16–26): clamp the
                # growth at µ̂, merge nothing, re-evaluate every moat's activity.
                clamped = mu_hat - cumulative
                system.grow(clamped)
                cumulative += clamped
                system.recompute_all_activity()
                mu_hat *= growth_factor
                after = system.activity_snapshot()
                events.append(
                    MergeEvent(
                        index=index,
                        mu=clamped,
                        v=None,
                        w=None,
                        path=[],
                        added_edges=frozenset(),
                        active_moats=active_count,
                        phase_boundary=(before != after),
                    )
                )
                continue
            # Regular merge (pseudocode lines 28–39); the merged moat stays
            # active until the next checkpoint.
            system.grow(mu)
            cumulative += mu
            path, added = system.emit_path(v, w)
            system.merge(v, w, always_active=True)
            after = system.activity_snapshot()
            events.append(
                MergeEvent(
                    index=index,
                    mu=mu,
                    v=v,
                    w=w,
                    path=path,
                    added_edges=added,
                    active_moats=active_count,
                    phase_boundary=(before != after),
                )
            )
    with maybe_span(profiler, "rounded/minimal-subforest"):
        return MoatGrowingResult(
            instance, frozenset(system.forest_edges), events, dict(system.rad)
        )


def num_growth_phases(result: MoatGrowingResult) -> int:
    """Number of growth-phase checkpoints executed in an Algorithm 2 run."""
    return sum(1 for e in result.events if e.v is None)
