"""Distributed deterministic moat growing (Section 4.1, Appendix E.1).

The algorithm emulates the centralized Algorithm 1 phase by phase:

1. a BFS tree is built and all (terminal, label) pairs are made global
   knowledge (O(D + t) rounds);
2. per *merge phase* j (Definition 4.3 — a maximal run of merges during
   which no terminal's activity status changes):

   a. the j-th terminal decomposition is computed by multi-source
      Bellman–Ford with *reduced* weights Ŵ_j (Definition 4.5) from all
      nodes covered by active moats (Lemma 4.8; O(s) rounds, measured);
   b. every node exchanges its tree owner with its neighbors (1 round) and
      proposes *candidate merges* for edges crossing between trees
      (Definition 4.11) — the candidate weight is the moat growth µ at
      which the two balls would meet along that edge;
   c. the candidates are piped up the BFS tree with Kruskal-style cycle
      filtering, stopping at the first activity-changing merge
      (Lemma 4.14 / Corollary 4.16; O(D + |F_c^{(j)}|) rounds, measured);
   d. the accepted merges are broadcast; every node locally updates moats,
      labels, activity flags and radii (all inputs are global knowledge).

3. the selected merge paths are materialized by token passing along the
   per-phase shortest-path trees (O(s) rounds) and the minimal feasible
   subforest is returned.

Geometry used by steps (a)–(b): each covered node x stores its *leftover*
l(x) = max_v (rad(v) − wd(v, x)) ≥ 0; an uncovered node reached by the
phase's Bellman–Ford stores its reduced distance d(x) from the active moat
boundary. With ψ(x) = d(x) − l(x) (so ψ ≤ 0 inside moats), the balls of two
distinct moats meet along the uncovered part of edge e = {x, y} after growth

    µ = (Ŵ-gap)/2 = (W(e) + ψ(x) + ψ(y)) / 2      both moats active,
    µ =  W(e) + ψ(x) − l(y)                        y's moat inactive,

which is exactly the candidate weight of Definition 4.11 expressed through
locally known quantities. Candidates whose µ exceeds the phase-ending growth
are *false candidates* (Definition 4.15); they order after all genuine ones
(Lemma E.1) and are cut off by the early stop.

The run matches Algorithm 1 merge by merge (same µ sequence, same moat
evolution) — the tests assert this against :func:`repro.core.moat.
moat_growing` — and the measured round count realizes the O(ks + t) bound of
Theorem 4.17.
"""

from fractions import Fraction
from typing import Dict, FrozenSet, Hashable, List, Optional, Set, Tuple

from repro.congest.bfs import build_bfs_tree
from repro.congest.bellman_ford import bellman_ford
from repro.congest.broadcast import broadcast_items, upcast_items
from repro.congest.pipeline import MergeItem, pipelined_filtered_upcast
from repro.congest.run import CongestRun
from repro.exceptions import SimulationError
from repro.model.graph import Edge, Node, canonical_edge
from repro.model.instance import SteinerForestInstance
from repro.model.solution import ForestSolution
from repro.perf.profiler import maybe_span
from repro.util import UnionFind


class AcceptedMerge:
    """A merge selected into F_c, with its realizing path."""

    __slots__ = ("phase", "mu", "terminal_a", "terminal_b", "edge", "path")

    def __init__(
        self,
        phase: int,
        mu: Fraction,
        terminal_a: Node,
        terminal_b: Node,
        edge: Edge,
        path: List[Node],
    ) -> None:
        self.phase = phase
        self.mu = mu
        self.terminal_a = terminal_a
        self.terminal_b = terminal_b
        self.edge = edge
        self.path = path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AcceptedMerge(j={self.phase}, mu={self.mu}, "
            f"{self.terminal_a!r}~{self.terminal_b!r})"
        )


class DistributedResult:
    """Outcome of the distributed deterministic algorithm.

    Attributes:
        solution: the minimal feasible subforest (the algorithm's output).
        forest: all selected path edges before pruning.
        merges: the accepted merges in execution order.
        rounds: total simulated CONGEST rounds.
        run: the full ledger (per-phase breakdown, per-edge traffic).
        num_phases: number of merge phases executed (≤ 2k, Lemma 4.4).
    """

    def __init__(
        self,
        instance: SteinerForestInstance,
        forest_edges: FrozenSet[Edge],
        merges: List[AcceptedMerge],
        run: CongestRun,
        num_phases: int,
    ) -> None:
        self.instance = instance
        self.forest = ForestSolution(instance.graph, forest_edges)
        self.solution = self.forest.minimal_subforest(instance)
        self.merges = merges
        self.run = run
        self.num_phases = num_phases

    @property
    def rounds(self) -> int:
        return self.run.rounds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DistributedResult(W={self.solution.weight}, "
            f"rounds={self.rounds}, phases={self.num_phases})"
        )


class _MoatBookkeeping:
    """Moat partition / label / activity state, replicated at every node.

    After each phase the accepted merges are broadcast, so every node tracks
    this state locally with identical deterministic updates (Algorithm 1
    lines 20–33). The class is also used as the ``stop_predicate`` engine:
    simulating a candidate prefix tells whether its last merge changes some
    terminal's activity status, which ends the merge phase.
    """

    def __init__(self, instance: SteinerForestInstance) -> None:
        self.terminals = tuple(sorted(instance.terminals, key=repr))
        self.moats = UnionFind(self.terminals)
        self.label: Dict[Node, Hashable] = {}
        self.active: Dict[Node, bool] = {}
        components = instance.components
        for v in self.terminals:
            self.label[v] = instance.label(v)
            self.active[v] = len(components[instance.label(v)]) >= 2

    def clone(self) -> "_MoatBookkeeping":
        other = object.__new__(_MoatBookkeeping)
        other.terminals = self.terminals
        other.moats = UnionFind(self.terminals)
        for v in self.terminals:
            other.moats.union(v, self.moats.find(v))
        # The fresh union-find may elect different representatives, so
        # normalize: give *every* terminal its moat's current label and
        # activity, making lookups valid under any representative choice.
        other.label = {v: self.label[self.rep(v)] for v in self.terminals}
        other.active = {v: self.active[self.rep(v)] for v in self.terminals}
        return other

    def rep(self, v: Node) -> Node:
        return self.moats.find(v)

    def is_active(self, v: Node) -> bool:
        return self.active[self.rep(v)]

    def snapshot(self) -> Tuple[bool, ...]:
        return tuple(self.is_active(v) for v in self.terminals)

    def has_active(self) -> bool:
        return any(self.is_active(v) for v in self.terminals)

    def apply_merge(self, a: Node, b: Node) -> bool:
        """Merge the moats of terminals a and b; returns True if some
        terminal's activity status changed (phase boundary)."""
        before = self.snapshot()
        ra, rb = self.rep(a), self.rep(b)
        if ra == rb:
            return False
        label_a, label_b = self.label[ra], self.label[rb]
        self.moats.union(ra, rb)
        new_rep = self.rep(a)
        if label_a != label_b:
            for t in self.terminals:
                r = self.rep(t)
                if self.label[r] == label_b:
                    self.label[r] = label_a
        self.label[new_rep] = label_a
        reps_with_label = {
            self.rep(t)
            for t in self.terminals
            if self.label[self.rep(t)] == label_a
        }
        self.active[new_rep] = len(reps_with_label) > 1
        return self.snapshot() != before

    def component_map(self) -> Dict[Node, Node]:
        """terminal → moat representative (the Kruskal filter's base)."""
        return {v: self.rep(v) for v in self.terminals}


def distributed_moat_growing(
    instance: SteinerForestInstance,
    run: Optional[CongestRun] = None,
) -> DistributedResult:
    """Run the Section 4.1 distributed algorithm on the CONGEST simulator.

    Returns a :class:`DistributedResult` whose ``solution`` is 2-approximate
    (Theorem 4.17) and whose ``rounds`` realize the O(ks + t) bound.
    """
    graph = instance.graph
    if run is None:
        run = CongestRun(graph)
    # The compiled-ledger fast path (repro.perf.fastpath): identical
    # execution, precompiled charging and memoized per-phase geometry.
    compiled = getattr(run, "compiled", None)
    profiler = getattr(run, "profiler", None)
    # The vectorized numpy tier (repro.perf.npkernels): same contract —
    # the kernels are byte-identical or they decline and the python
    # branches below run unchanged.
    npc = getattr(run, "npc", None)

    # ------------------------------------------------------------------
    # Step 1: BFS tree; make (v, λ(v)) global knowledge. O(D + t) rounds.
    # ------------------------------------------------------------------
    run.set_phase("setup")
    tree = build_bfs_tree(graph, run)
    terminal_labels = upcast_items(
        tree,
        {
            v: ([(v, instance.label(v))] if instance.label(v) is not None else [])
            for v in graph.nodes
        },
        run,
    )
    broadcast_items(tree, terminal_labels, run)

    state = _MoatBookkeeping(instance)

    # Per-node geometry, replicated consistently after each phase broadcast:
    owner: Dict[Node, Optional[Node]] = {v: None for v in graph.nodes}
    parent: Dict[Node, Optional[Node]] = {v: None for v in graph.nodes}
    leftover: Dict[Node, Fraction] = {}
    for t in instance.terminals:
        owner[t] = t
        leftover[t] = Fraction(0)

    merges: List[AcceptedMerge] = []
    forest_edges: Set[Edge] = set()
    phase = 0
    max_phases = 2 * max(1, instance.num_components) + 1
    while state.has_active():
        phase += 1
        if phase > max_phases:
            raise SimulationError(
                f"exceeded the 2k merge-phase bound (Lemma 4.4): {phase}"
            )
        run.set_phase(f"phase-{phase}")

        # --------------------------------------------------------------
        # Step (a): terminal decomposition by reduced-weight Bellman–Ford.
        # Sources: all nodes covered by *active* moats, distance 0, tagged
        # by their tree owner. Nodes of inactive regions are blocked.
        # --------------------------------------------------------------
        def reduced_weight(x: Node, y: Node) -> Fraction:
            w = Fraction(graph.weight(x, y))
            cov = Fraction(0)
            for endpoint in (x, y):
                lo = leftover.get(endpoint)
                if lo is not None and lo > 0:
                    cov += min(w, lo)
            return max(Fraction(0), w - cov)

        if compiled is not None:
            # Ŵ_j is fixed within the phase (leftover only changes at
            # phase end), so each directed edge's reduced weight is
            # computed once instead of once per relaxation round.
            rw_cache: Dict[Tuple[Node, Node], Fraction] = {}
            plain_reduced_weight = reduced_weight

            def reduced_weight(x: Node, y: Node) -> Fraction:
                value = rw_cache.get((x, y))
                if value is None:
                    # Ŵ_j is symmetric in the endpoints: fill both
                    # directions from one computation.
                    value = plain_reduced_weight(x, y)
                    rw_cache[(x, y)] = rw_cache[(y, x)] = value
                return value

            if npc is not None:
                # Precompute the whole phase's Ŵ_j on the scaled int64
                # grid; the Bellman–Ford kernel picks it up through the
                # ``np_scaled`` hook. None (unscalable leftovers) simply
                # leaves the hook unset — the kernel then scales the
                # python callable itself or declines entirely.
                from repro.perf.npkernels import scaled_reduced_weights

                np_scaled = scaled_reduced_weights(npc, leftover)
                if np_scaled is not None:
                    reduced_weight.np_scaled = np_scaled  # type: ignore[attr-defined]

        sources = {}
        blocked: Set[Node] = set()
        for x, own in owner.items():
            if own is None:
                continue
            if state.is_active(own):
                sources[x] = (Fraction(0), own)
            else:
                blocked.add(x)
        with maybe_span(profiler, "bellman-ford"):
            bf = bellman_ford(
                graph, sources, run, edge_weight=reduced_weight, blocked=blocked
            )

        # Phase-local overlay: tree owner / reduced distance / parent.
        tree_owner: Dict[Node, Optional[Node]] = dict(owner)
        tree_dist: Dict[Node, Fraction] = {}
        tree_parent: Dict[Node, Optional[Node]] = dict(parent)
        for x in bf.dist:
            tree_owner[x] = bf.tag[x]
            tree_dist[x] = Fraction(bf.dist[x])
            if bf.parent[x] is not None:
                tree_parent[x] = bf.parent[x]

        def psi(x: Node) -> Fraction:
            lo = leftover.get(x, Fraction(0))
            return tree_dist.get(x, Fraction(0)) - lo

        if compiled is not None:
            # ψ is fixed for the rest of the phase; each endpoint of a
            # cross-tree edge queries it once instead of per direction.
            psi_cache: Dict[Node, Fraction] = {}
            plain_psi = psi

            def psi(x: Node) -> Fraction:
                value = psi_cache.get(x)
                if value is None:
                    value = psi_cache[x] = plain_psi(x)
                return value

        def path_to_owner(x: Node) -> List[Node]:
            chain = [x]
            while tree_parent[chain[-1]] is not None:
                chain.append(tree_parent[chain[-1]])
            return chain

        # --------------------------------------------------------------
        # Step (b): one round of owner exchange, then local candidate
        # construction for cross-tree edges.
        # --------------------------------------------------------------
        if compiled is not None:
            run.tick()
            run.charge_counter(compiled.full_counter, compiled.num_directed)
        else:
            run.tick({
                (x, y): 1 for x in graph.nodes for y in graph.neighbors(x)
            })
        local_candidates: Dict[Node, List[MergeItem]] = {
            v: [] for v in graph.nodes
        }
        if compiled is not None:
            # Activity is constant during candidate construction, and
            # the compiled topology memoizes node/edge reprs and the
            # directed-pair → canonical-edge map.
            reprs = compiled.repr_of
            canon = compiled.canon
            edge_repr = compiled.edge_repr
            active_memo: Dict[Node, bool] = {}

            def is_active(owner_terminal: Node) -> bool:
                value = active_memo.get(owner_terminal)
                if value is None:
                    value = active_memo[owner_terminal] = state.is_active(
                        owner_terminal
                    )
                return value

            edge_iter = compiled.undirected_edges
        else:
            is_active = state.is_active
            edge_iter = graph.edges()
        for x, y, w in edge_iter:
            ox, oy = tree_owner.get(x), tree_owner.get(y)
            if ox is None or oy is None or ox == oy:
                continue
            for a, b in ((x, y), (y, x)):
                oa, ob = tree_owner[a], tree_owner[b]
                if not is_active(oa):
                    continue  # Definition 4.11 requires the active side
                if is_active(ob):
                    mu = (Fraction(w) + psi(a) + psi(b)) / 2
                else:
                    mu = Fraction(w) + psi(a) - leftover.get(b, Fraction(0))
                if compiled is not None:
                    ra, rb = reprs[oa], reprs[ob]
                    edge = canon[(a, b)]
                    item = MergeItem(
                        key=(
                            mu,
                            (ra, rb) if ra <= rb else (rb, ra),
                            edge_repr(edge),
                        ),
                        a=oa,
                        b=ob,
                        payload=(edge, a, b),
                    )
                else:
                    item = MergeItem(
                        key=(
                            mu,
                            tuple(sorted((repr(oa), repr(ob)))),
                            repr(canonical_edge(a, b)),
                        ),
                        a=oa,
                        b=ob,
                        payload=(canonical_edge(a, b), a, b),
                    )
                local_candidates[a].append(item)

        # --------------------------------------------------------------
        # Step (c): pipelined filtered collection with phase-end stop.
        # --------------------------------------------------------------
        base = state.component_map()

        def phase_ends_with(prefix: List[MergeItem]) -> bool:
            sim = state.clone()
            changed = False
            for item in prefix:
                changed = sim.apply_merge(item.a, item.b)
            return changed

        accepted = pipelined_filtered_upcast(
            tree, local_candidates, base, run, stop_predicate=phase_ends_with
        )
        if not accepted:
            raise SimulationError(
                "no candidate merges found although active moats remain"
            )

        # --------------------------------------------------------------
        # Step (d): broadcast the accepted merges; all nodes update their
        # replicated bookkeeping locally.
        # --------------------------------------------------------------
        broadcast_items(
            tree,
            [(item.a, item.b, item.key[0]) for item in accepted],
            run,
        )
        mu_phase: Fraction = accepted[-1].key[0]
        for item in accepted:
            edge, a_side, b_side = item.payload  # type: ignore[misc]
            path = list(reversed(path_to_owner(a_side)))
            path += path_to_owner(b_side)
            merges.append(
                AcceptedMerge(
                    phase=phase,
                    mu=item.key[0],
                    terminal_a=item.a,
                    terminal_b=item.b,
                    edge=edge,
                    path=path,
                )
            )
            state.apply_merge(item.a, item.b)

        # Radii / coverage update: every covered node of an active moat
        # gains µ_phase of leftover; nodes the Bellman–Ford reached within
        # µ_phase are newly absorbed. Activity *during* the phase is the
        # activity at phase start, i.e. membership in ``sources``.
        grown = False
        if npc is not None:
            from repro.perf.npkernels import apply_radius_growth

            grown = apply_radius_growth(
                npc,
                leftover,
                owner,
                parent,
                sources,
                tree_owner,
                tree_parent,
                tree_dist,
                mu_phase,
            )
        if not grown:
            for x, lo in list(leftover.items()):
                own = owner[x]
                if own is not None and x in sources:
                    leftover[x] = lo + mu_phase
            for x, d in tree_dist.items():
                if x in sources:
                    continue
                if d <= mu_phase:
                    owner[x] = tree_owner[x]
                    parent[x] = tree_parent[x]
                    leftover[x] = mu_phase - d

    # ------------------------------------------------------------------
    # Step 5: materialize the merge paths by token passing along the
    # per-phase trees. Tokens travel at most the maximal tree depth, with
    # constant congestion per tree (each node forwards one token per tree).
    # ------------------------------------------------------------------
    run.set_phase("path-selection")
    max_hops = max((len(m.path) for m in merges), default=0)
    run.charge_rounds(
        max_hops + tree.depth,
        "token passing along decomposition trees (Appendix E, Step 5)",
    )
    for merge in merges:
        for a, b in zip(merge.path, merge.path[1:]):
            forest_edges.add(canonical_edge(a, b))

    return DistributedResult(
        instance, frozenset(forest_edges), merges, run, phase
    )
