"""Exception hierarchy for the repro library."""


class ReproError(Exception):
    """Base class for all library-specific errors."""


class GraphValidationError(ReproError):
    """The input graph violates a model assumption (Section 2 of the paper).

    Examples: non-positive or non-integer edge weights, disconnected graph,
    self-loops.
    """


class InstanceValidationError(ReproError):
    """The Steiner forest instance is malformed.

    Examples: a terminal label on a node that is not in the graph, or a
    connection request that refers to an unknown node.
    """


class InfeasibleSolutionError(ReproError):
    """An edge set claimed as a solution does not connect some component."""


class CongestViolationError(ReproError):
    """A node attempted to exceed the CONGEST per-edge bandwidth budget.

    In the CONGEST(log n) model each edge carries at most one O(log n)-bit
    message per direction per round; the simulator raises this error when an
    algorithm tries to send more.
    """


class SimulationError(ReproError):
    """Internal inconsistency in the round simulator (e.g. exceeding the
    configured maximum number of rounds, which usually indicates a
    non-terminating algorithm)."""


class WorkerCrashError(ReproError):
    """A pool worker process died (killed, OOM, segfault) and the affected
    jobs exhausted their retry budget.

    Raised by the batch runner after every surviving job has completed
    and every crash has been surfaced as a structured ``job_failed``
    telemetry event — the sweep fails loudly and attributably instead of
    aborting on a bare ``BrokenProcessPool``.
    """

    def __init__(self, message: str, job_keys=()):
        super().__init__(message)
        #: Cache keys of the jobs that could not be completed.
        self.job_keys = tuple(job_keys)
