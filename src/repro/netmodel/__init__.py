"""Network-model subsystem: pluggable adversity for the CONGEST simulator.

The paper analyzes its algorithms in the clean synchronous CONGEST model;
this package makes the network condition a first-class, swappable layer
beneath the algorithms:

* :mod:`repro.netmodel.base` — the :class:`NetworkModel` delivery
  interface, canonical spec normalization, and the type-stable node
  ordering shared with the simulator.
* :mod:`repro.netmodel.models` — built-in conditions: reliable
  synchronous (default), bounded-delay asynchrony, lossy channels with
  retransmit budgets, crash-stop failures, and bandwidth caps.
* :mod:`repro.netmodel.trace` — :class:`TraceRecorder`, JSONL
  message/volume traces for replay and congestion profiling.

The experiment engine threads canonical network specs through scenario
definitions and job identities, so a sweep crosses algorithms × graph
families × network conditions with one result-store cache key per cell.
"""

from repro.netmodel.base import (
    DEFAULT_NETWORK,
    NetworkModel,
    is_default_network,
    node_sort_key,
    normalize_network,
    payload_bits,
)
from repro.netmodel.models import (
    NETWORK_MODELS,
    BandwidthCap,
    BoundedDelayAsync,
    CrashStop,
    LossyChannel,
    ReliableSynchronous,
    build_network_model,
)
from repro.netmodel.trace import TraceRecorder

__all__ = [
    "DEFAULT_NETWORK",
    "NetworkModel",
    "is_default_network",
    "node_sort_key",
    "normalize_network",
    "payload_bits",
    "NETWORK_MODELS",
    "BandwidthCap",
    "BoundedDelayAsync",
    "CrashStop",
    "LossyChannel",
    "ReliableSynchronous",
    "build_network_model",
    "TraceRecorder",
]
