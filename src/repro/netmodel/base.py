"""The network-model interface: who owns message delivery each round.

The CONGEST simulator hands every queued message to a :class:`NetworkModel`
at the start of the round that would normally deliver it; the model decides
*when* (which absolute round), *whether* (drop), and *how often* (duplicate)
the message arrives. The default model, ``reliable``, reproduces the clean
synchronous CONGEST channel exactly, so algorithms analyzed in the paper's
model behave byte-identically unless an adverse model is requested.

Models are pure data plus a seeded RNG: :meth:`NetworkModel.params` returns
the JSON-serializable configuration, :func:`normalize_network` turns user
shorthand (a name, a ``name`` + ``params`` dict) into one canonical spec
dict, and :meth:`NetworkModel.bind` (re)seeds the model for one execution.
That makes a network condition hashable experiment input — the engine
threads the canonical spec through job identities so each model gets its
own result-store cache key.
"""

import json
import random
from collections import Counter
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.model.graph import Node, WeightedGraph

#: The canonical spec of the default network condition.
DEFAULT_NETWORK: Dict[str, Any] = {"model": "reliable", "params": {}}

#: Anything :func:`normalize_network` accepts.
NetworkLike = Union[None, str, Mapping[str, Any], "NetworkModel"]


def node_sort_key(node: Node) -> Tuple[Any, ...]:
    """A type-stable total-order key for node identifiers.

    Numbers sort numerically, strings lexically, and any other node type
    by ``(type name, repr)``. Values of different kinds never reach a
    cross-type comparison (the leading tag differs), so mixed-ID graphs
    sort deterministically — unlike plain ``repr``, under which
    ``repr(9) > repr(10)``.
    """
    if isinstance(node, bool):
        return (0, "", int(node))
    if isinstance(node, (int, float)):
        return (0, "", node)
    if isinstance(node, str):
        return (1, "", node)
    return (2, type(node).__qualname__, repr(node))


def payload_bits(payload: Any) -> int:
    """Encoded size of a payload in bits (8 × its canonical JSON length,
    falling back to ``repr`` for non-JSON payloads)."""
    try:
        encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError):
        encoded = repr(payload)
    return 8 * len(encoded)


class NetworkModel:
    """Base class: the clean synchronous channel.

    Subclasses override :meth:`schedule` (and optionally
    :meth:`begin_round` / :meth:`alive`) to inject adversity, and
    :meth:`params` so their configuration round-trips through JSON.
    ``stats`` accumulates model-specific event counters (drops,
    retransmissions, crashes, …) during a bound execution.
    """

    name = "reliable"

    #: Whether this model can remove nodes from the execution (i.e. its
    #: :meth:`alive` can return False). Models that override ``alive``
    #: must set this to True — the simulator uses it to skip a per-round
    #: O(n) liveness scan on channels that never kill nodes.
    removes_nodes = False

    def __init__(self) -> None:
        self.graph: Optional[WeightedGraph] = None
        self.rng = random.Random(0)
        self.stats: Counter = Counter()

    # -- identity --------------------------------------------------------

    def params(self) -> Dict[str, Any]:
        """JSON-serializable configuration (empty for parameter-free
        models)."""
        return {}

    def spec(self) -> Dict[str, Any]:
        """The canonical spec dict identifying this model + parameters."""
        return {"model": self.name, "params": self.params()}

    # -- lifecycle -------------------------------------------------------

    def bind(self, graph: WeightedGraph, rng: random.Random) -> None:
        """Attach to one execution: reset state and seed the RNG."""
        self.graph = graph
        self.rng = rng
        self.stats = Counter()
        self.reset()

    def reset(self) -> None:
        """Subclass hook: clear per-execution state (called by bind)."""

    # -- per-round behavior ----------------------------------------------

    def begin_round(self, round_index: int) -> None:
        """Called once at the start of each round, before any delivery
        decision (e.g. to trigger scheduled crashes)."""

    def alive(self, node: Node) -> bool:
        """Whether ``node`` still participates (False after a crash)."""
        return True

    def schedule(
        self, sender: Node, receiver: Node, payload: Any, round_index: int
    ) -> List[int]:
        """Decide the fate of one in-flight message.

        Returns the absolute rounds at which copies of the message arrive:
        ``[round_index]`` is clean synchronous delivery, a later round is a
        delay, an empty list is a drop, and multiple entries are
        duplicates. Every entry must be ``>= round_index``.
        """
        return [round_index]

    # -- analytic accounting for ledger-level algorithms -----------------

    def emulated_rounds(
        self, rounds: int, bandwidth_bits: Optional[int] = None
    ) -> int:
        """Rounds needed to emulate ``rounds`` clean synchronous rounds on
        this network with a simple synchronizer.

        The paper's Steiner-forest algorithms run against the
        :class:`~repro.congest.run.CongestRun` ledger rather than the
        message-level simulator; this hook lets the experiment engine
        surface each network condition's latency overhead for them without
        re-deriving the algorithms for the adverse model. The default
        (clean) network has no overhead.
        """
        return rounds

    def extra_metrics(self) -> Dict[str, int]:
        """Model event counters worth recording alongside run metrics."""
        return dict(self.stats)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.params().items()))
        return f"{type(self).__name__}({params})"


def normalize_network(network: NetworkLike) -> Dict[str, Any]:
    """Turn user shorthand into one canonical ``{"model", "params"}`` dict.

    Accepts ``None`` (the default reliable network), a model name string,
    a mapping with ``model`` and optional ``params`` keys, or a constructed
    :class:`NetworkModel`. The result is JSON-round-trippable and has
    deterministic content (params pass through ``json`` canonicalization
    downstream), so it is safe to hash into job identities.
    """
    if network is None:
        return dict(DEFAULT_NETWORK, params={})
    if isinstance(network, NetworkModel):
        return network.spec()
    if isinstance(network, str):
        return {"model": network, "params": {}}
    if isinstance(network, Mapping):
        unknown = set(network) - {"model", "params"}
        if unknown:
            raise ValueError(
                f"unexpected network spec keys {sorted(unknown)}; "
                'expected {"model": name, "params": {...}}'
            )
        return {
            "model": str(network.get("model", DEFAULT_NETWORK["model"])),
            "params": dict(network.get("params", {})),
        }
    raise TypeError(f"cannot interpret network spec {network!r}")


def is_default_network(network: NetworkLike) -> bool:
    """Whether ``network`` denotes the clean synchronous default."""
    spec = normalize_network(network)
    return spec["model"] == DEFAULT_NETWORK["model"] and not spec["params"]
