"""Per-round message tracing for simulator executions.

A :class:`TraceRecorder` attached to a :class:`~repro.congest.simulator.
Simulator` captures one event per message transmission (send round, fate,
delivery round) plus one summary event per round (sent/delivered/dropped
counts and payload volume). Events are plain JSON-able dicts so traces
dump to JSONL for offline congestion profiling and load back for replay
assertions — the same append-only format as the engine's result store
and the telemetry bus.

Resource discipline: the recorder is a context manager, and the
simulation backends close it when an execution completes or dies
(:meth:`repro.simbackend.base.SimulationBackend.run_to_completion`), so
a streaming trace file is never left on an open handle. Closing is
idempotent and does not end the recorder's life — a later event reopens
the stream in append mode, continuing the same file.

Identity: a recorder created with ``run_id`` (or wired to a
:class:`~repro.telemetry.Telemetry` bus, which supplies its manifest's
id) stamps that id on every event, so message traces from many runs
interleave attributably with the rest of the run's telemetry.
"""

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.netmodel.base import payload_bits


def _describe(payload: Any) -> str:
    """A short, JSON-safe rendering of a payload for trace events."""
    text = repr(payload)
    return text if len(text) <= 80 else text[:77] + "..."


def _encode(event: Dict[str, Any]) -> str:
    """The one JSONL encoding for trace events — shared by streaming
    and :meth:`TraceRecorder.dump` so the two paths cannot drift."""
    return json.dumps(event, sort_keys=True)


class TraceRecorder:
    """Accumulates message/round events; optionally streams to JSONL.

    Args:
        path: stream events to this JSONL file as they are recorded
            (flushed per event; None keeps events in memory only).
        run_id: stamped on every event when given.
        telemetry: a :class:`~repro.telemetry.Telemetry` bus to forward
            events onto (as ``trace.send`` / ``trace.lost`` /
            ``trace.round`` bus events); also supplies ``run_id`` when
            none was given.
    """

    def __init__(
        self,
        path: Optional[os.PathLike] = None,
        run_id: Optional[str] = None,
        telemetry: Optional[Any] = None,
    ) -> None:
        self.events: List[Dict[str, Any]] = []
        self.path = Path(path) if path is not None else None
        self.telemetry = telemetry
        if run_id is None and telemetry is not None:
            run_id = telemetry.run_id
        self.run_id = run_id
        self._handle = None
        self._created = False

    # -- resource handling ----------------------------------------------

    def __enter__(self) -> "TraceRecorder":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def close(self) -> None:
        """Release the streaming handle (idempotent). The recorder stays
        usable: a later event reopens the stream appending."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- recording (called by the simulator) -----------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        if self.run_id is not None:
            event["run_id"] = self.run_id
        self.events.append(event)
        if self.path is not None:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                # First open truncates (a fresh stream); reopening after
                # a close appends, so one recorder = one coherent file.
                self._handle = self.path.open(
                    "a" if self._created else "w", encoding="utf-8"
                )
                self._created = True
            self._handle.write(_encode(event) + "\n")
            # Streaming mode promises a live file: flush per event so a
            # concurrent reader (or a dying run) sees every record.
            self._handle.flush()
        if self.telemetry is not None:
            kind = f"trace.{event['event']}"
            self.telemetry.emit(
                kind, **{k: v for k, v in event.items() if k != "event"}
            )

    def record_send(
        self,
        round_index: int,
        sender: Any,
        receiver: Any,
        payload: Any,
        delivery_rounds: Iterable[int],
    ) -> None:
        """One transmission: empty ``delivery_rounds`` means dropped."""
        rounds = sorted(delivery_rounds)
        self._emit(
            {
                "event": "send",
                "round": round_index,
                "sender": _describe(sender),
                "receiver": _describe(receiver),
                "payload": _describe(payload),
                "bits": payload_bits(payload),
                "delivery_rounds": rounds,
                "dropped": not rounds,
            }
        )

    def record_lost(
        self, round_index: int, sender: Any, receiver: Any, reason: str
    ) -> None:
        """A message lost outside ``schedule`` (e.g. receiver crashed)."""
        self._emit(
            {
                "event": "lost",
                "round": round_index,
                "sender": _describe(sender),
                "receiver": _describe(receiver),
                "reason": reason,
            }
        )

    def record_round(
        self, round_index: int, sent: int, delivered: int, dropped: int, bits: int
    ) -> None:
        """Per-round traffic summary (the congestion-profile row)."""
        self._emit(
            {
                "event": "round",
                "round": round_index,
                "sent": sent,
                "delivered": delivered,
                "dropped": dropped,
                "bits": bits,
            }
        )

    # -- inspection ------------------------------------------------------

    def sends(self) -> Iterator[Dict[str, Any]]:
        return (e for e in self.events if e["event"] == "send")

    def rounds(self) -> Iterator[Dict[str, Any]]:
        return (e for e in self.events if e["event"] == "round")

    def volume_by_round(self) -> Dict[int, int]:
        """Bits put on the wire per round (the congestion profile)."""
        return {e["round"]: e["bits"] for e in self.rounds()}

    def total_dropped(self) -> int:
        drops = sum(1 for e in self.sends() if e["dropped"])
        return drops + sum(1 for e in self.events if e["event"] == "lost")

    def __len__(self) -> int:
        return len(self.events)

    # -- persistence -----------------------------------------------------

    def dump(self, path: os.PathLike) -> int:
        """Write every event to ``path`` as JSONL; returns event count."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(_encode(event) + "\n")
        return len(self.events)

    @classmethod
    def load(cls, path: os.PathLike) -> "TraceRecorder":
        """Read a dumped trace back for replay/profiling assertions."""
        recorder = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    recorder.events.append(json.loads(line))
        return recorder
