"""Per-round message tracing for simulator executions.

A :class:`TraceRecorder` attached to a :class:`~repro.congest.simulator.
Simulator` captures one event per message transmission (send round, fate,
delivery round) plus one summary event per round (sent/delivered/dropped
counts and payload volume). Events are plain JSON-able dicts so traces
dump to JSONL for offline congestion profiling and load back for replay
assertions — the same append-only format as the engine's result store.
"""

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, List, Optional

from repro.netmodel.base import payload_bits


def _describe(payload: Any) -> str:
    """A short, JSON-safe rendering of a payload for trace events."""
    text = repr(payload)
    return text if len(text) <= 80 else text[:77] + "..."


class TraceRecorder:
    """Accumulates message/round events; optionally streams to JSONL."""

    def __init__(self, path: Optional[os.PathLike] = None) -> None:
        self.events: List[Dict[str, Any]] = []
        self.path = Path(path) if path is not None else None
        self._handle = None

    # -- recording (called by the simulator) -----------------------------

    def _emit(self, event: Dict[str, Any]) -> None:
        self.events.append(event)
        if self.path is not None:
            if self._handle is None:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("w", encoding="utf-8")
            self._handle.write(json.dumps(event, sort_keys=True) + "\n")
            # Streaming mode promises a live file: flush per event so a
            # concurrent reader (or a dying run) sees every record.
            self._handle.flush()

    def record_send(
        self,
        round_index: int,
        sender: Any,
        receiver: Any,
        payload: Any,
        delivery_rounds: Iterable[int],
    ) -> None:
        """One transmission: empty ``delivery_rounds`` means dropped."""
        rounds = sorted(delivery_rounds)
        self._emit(
            {
                "event": "send",
                "round": round_index,
                "sender": _describe(sender),
                "receiver": _describe(receiver),
                "payload": _describe(payload),
                "bits": payload_bits(payload),
                "delivery_rounds": rounds,
                "dropped": not rounds,
            }
        )

    def record_lost(
        self, round_index: int, sender: Any, receiver: Any, reason: str
    ) -> None:
        """A message lost outside ``schedule`` (e.g. receiver crashed)."""
        self._emit(
            {
                "event": "lost",
                "round": round_index,
                "sender": _describe(sender),
                "receiver": _describe(receiver),
                "reason": reason,
            }
        )

    def record_round(
        self, round_index: int, sent: int, delivered: int, dropped: int, bits: int
    ) -> None:
        """Per-round traffic summary (the congestion-profile row)."""
        self._emit(
            {
                "event": "round",
                "round": round_index,
                "sent": sent,
                "delivered": delivered,
                "dropped": dropped,
                "bits": bits,
            }
        )

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- inspection ------------------------------------------------------

    def sends(self) -> Iterator[Dict[str, Any]]:
        return (e for e in self.events if e["event"] == "send")

    def rounds(self) -> Iterator[Dict[str, Any]]:
        return (e for e in self.events if e["event"] == "round")

    def volume_by_round(self) -> Dict[int, int]:
        """Bits put on the wire per round (the congestion profile)."""
        return {e["round"]: e["bits"] for e in self.rounds()}

    def total_dropped(self) -> int:
        drops = sum(1 for e in self.sends() if e["dropped"])
        return drops + sum(1 for e in self.events if e["event"] == "lost")

    def __len__(self) -> int:
        return len(self.events)

    # -- persistence -----------------------------------------------------

    def dump(self, path: os.PathLike) -> int:
        """Write every event to ``path`` as JSONL; returns event count."""
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        with target.open("w", encoding="utf-8") as handle:
            for event in self.events:
                handle.write(json.dumps(event, sort_keys=True) + "\n")
        return len(self.events)

    @classmethod
    def load(cls, path: os.PathLike) -> "TraceRecorder":
        """Read a dumped trace back for replay/profiling assertions."""
        recorder = cls()
        with Path(path).open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    recorder.events.append(json.loads(line))
        return recorder
