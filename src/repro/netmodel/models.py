"""Built-in network models: the clean channel and four adversities.

Each model is a small, independently testable delivery policy:

* :class:`ReliableSynchronous` — the paper's model; zero overhead.
* :class:`BoundedDelayAsync` — every message takes 1..``max_delay``
  rounds (seeded i.i.d. uniform), the classic bounded-delay
  asynchronous channel.
* :class:`LossyChannel` — i.i.d. drop probability ``p`` per
  transmission, with an optional sender-side retransmit budget; a
  retransmission costs one extra round of latency per attempt.
* :class:`CrashStop` — an adversary kills a scheduled set of nodes at
  the start of a chosen round; crashed nodes stop executing, their
  queued messages are lost, and in-flight messages addressed to them
  vanish at delivery time.
* :class:`BandwidthCap` — enforces a ``cap_bits`` payload budget: an
  oversized payload is serialized over ⌈size/cap⌉ fragment rounds
  (arriving when the last fragment does), or rejected outright in
  ``strict`` mode, mirroring the ledger's B-bit message bound.
"""

import math
from typing import Any, Dict, Iterable, List, Mapping, Optional, Set

from repro.exceptions import CongestViolationError
from repro.model.graph import Node
from repro.netmodel.base import NetworkModel, payload_bits


class ReliableSynchronous(NetworkModel):
    """The default clean channel (explicit alias of the base class)."""

    name = "reliable"


class BoundedDelayAsync(NetworkModel):
    """Each message is delayed a uniform 1..``max_delay`` rounds.

    ``max_delay=1`` degenerates to the synchronous channel. Delivery
    order within a round stays deterministic (the simulator drains
    messages in flush order), but messages from different senders may
    overtake each other — the standard bounded-delay adversary.
    """

    name = "delay"

    def __init__(self, max_delay: int = 3) -> None:
        super().__init__()
        if max_delay < 1:
            raise ValueError("max_delay must be >= 1")
        self.max_delay = int(max_delay)

    def params(self) -> Dict[str, Any]:
        return {"max_delay": self.max_delay}

    def schedule(
        self, sender: Node, receiver: Node, payload: Any, round_index: int
    ) -> List[int]:
        delay = self.rng.randint(1, self.max_delay)
        if delay > 1:
            self.stats["delayed"] += 1
        return [round_index + delay - 1]

    def emulated_rounds(
        self, rounds: int, bandwidth_bits: Optional[int] = None
    ) -> int:
        # An α-synchronizer waits out the worst-case delay each pulse.
        return rounds * self.max_delay


class LossyChannel(NetworkModel):
    """i.i.d. message loss with an optional retransmit budget.

    Every transmission attempt independently fails with probability
    ``drop_p``. With ``retransmit=r`` the sender retries up to ``r``
    times; attempt ``i`` (0-based) arrives at ``round + i``, so each
    retry costs one round of latency. A message whose every attempt
    fails is dropped for good.
    """

    name = "lossy"

    def __init__(self, drop_p: float = 0.1, retransmit: int = 0) -> None:
        super().__init__()
        if not 0.0 <= drop_p < 1.0:
            raise ValueError("drop_p must be in [0, 1)")
        if retransmit < 0:
            raise ValueError("retransmit must be >= 0")
        self.drop_p = float(drop_p)
        self.retransmit = int(retransmit)

    def params(self) -> Dict[str, Any]:
        return {"drop_p": self.drop_p, "retransmit": self.retransmit}

    def schedule(
        self, sender: Node, receiver: Node, payload: Any, round_index: int
    ) -> List[int]:
        for attempt in range(1 + self.retransmit):
            if self.rng.random() >= self.drop_p:
                if attempt:
                    self.stats["retransmissions"] += attempt
                return [round_index + attempt]
        self.stats["dropped"] += 1
        return []

    def emulated_rounds(
        self, rounds: int, bandwidth_bits: Optional[int] = None
    ) -> int:
        # Expected attempts per message under the truncated-geometric
        # retry policy: sum_{i<a} p^i with a = 1 + retransmit.
        attempts = 1 + self.retransmit
        expected = (1.0 - self.drop_p ** attempts) / (1.0 - self.drop_p)
        return math.ceil(rounds * expected)


class CrashStop(NetworkModel):
    """Crash-stop failures: ``victims`` die at the start of ``at_round``.

    A crashed node stops executing (``on_round`` is never called again),
    its not-yet-flushed outbox is lost, and in-flight messages addressed
    to it disappear silently — the receiver side of crash-stop. Messages
    it put on the wire in earlier rounds still arrive.
    """

    name = "crash"
    removes_nodes = True

    def __init__(self, victims: Iterable[Node] = (), at_round: int = 1) -> None:
        super().__init__()
        if at_round < 1:
            raise ValueError("at_round must be >= 1")
        self.victims = tuple(victims)
        self.at_round = int(at_round)
        self._crashed: Set[Node] = set()

    def params(self) -> Dict[str, Any]:
        return {"victims": list(self.victims), "at_round": self.at_round}

    def reset(self) -> None:
        self._crashed = set()

    def begin_round(self, round_index: int) -> None:
        if round_index >= self.at_round and not self._crashed:
            self._crashed = set(self.victims)
            self.stats["crashed"] = len(self._crashed)

    def alive(self, node: Node) -> bool:
        return node not in self._crashed

    def schedule(
        self, sender: Node, receiver: Node, payload: Any, round_index: int
    ) -> List[int]:
        return [round_index]

    def extra_metrics(self) -> Dict[str, int]:
        metrics = dict(self.stats)
        metrics.setdefault("crashed", 0)
        return metrics


class BandwidthCap(NetworkModel):
    """Enforce a ``cap_bits`` payload budget per message.

    The ledger (:class:`~repro.congest.run.CongestRun`) already accounts
    every message at B bits; this model makes the bound bite at the
    payload level. A payload of ``payload_bits(p) > cap_bits`` is either
    rejected (``strict=True``, raising
    :class:`~repro.exceptions.CongestViolationError`) or serialized over
    ``ceil(size / cap_bits)`` fragment rounds, arriving with the last
    fragment.
    """

    name = "bandwidth"

    def __init__(self, cap_bits: int = 64, strict: bool = False) -> None:
        super().__init__()
        if cap_bits < 1:
            raise ValueError("cap_bits must be >= 1")
        self.cap_bits = int(cap_bits)
        self.strict = bool(strict)

    def params(self) -> Dict[str, Any]:
        return {"cap_bits": self.cap_bits, "strict": self.strict}

    def schedule(
        self, sender: Node, receiver: Node, payload: Any, round_index: int
    ) -> List[int]:
        size = payload_bits(payload)
        fragments = max(1, math.ceil(size / self.cap_bits))
        if fragments > 1:
            if self.strict:
                raise CongestViolationError(
                    f"payload from {sender!r} to {receiver!r} needs {size} "
                    f"bits but the channel caps messages at {self.cap_bits}"
                )
            self.stats["fragmented"] += 1
            self.stats["fragments"] += fragments
        return [round_index + fragments - 1]

    def emulated_rounds(
        self, rounds: int, bandwidth_bits: Optional[int] = None
    ) -> int:
        # Re-encoding B-bit ledger messages into cap-bit fragments costs
        # ceil(B / cap) rounds per original round.
        if bandwidth_bits is None:
            return rounds
        return rounds * max(1, math.ceil(bandwidth_bits / self.cap_bits))


#: Registered model classes by canonical name.
NETWORK_MODELS: Mapping[str, type] = {
    cls.name: cls
    for cls in (
        ReliableSynchronous,
        BoundedDelayAsync,
        LossyChannel,
        CrashStop,
        BandwidthCap,
    )
}


def build_network_model(network: Any = None) -> NetworkModel:
    """Instantiate a model from anything :func:`normalize_network` accepts.

    A constructed :class:`NetworkModel` passes through unchanged, so
    callers can hand the simulator a pre-configured instance.
    """
    if isinstance(network, NetworkModel):
        return network
    from repro.netmodel.base import normalize_network

    spec = normalize_network(network)
    try:
        cls = NETWORK_MODELS[spec["model"]]
    except KeyError:
        raise ValueError(
            f"unknown network model {spec['model']!r}; "
            f"choose from {sorted(NETWORK_MODELS)}"
        ) from None
    try:
        return cls(**spec["params"])
    except TypeError as exc:
        raise ValueError(
            f"bad parameters for network model {spec['model']!r}: {exc}"
        ) from None
