"""Pluggable terminal-placement strategies.

A placement turns a graph plus ``(k, component_size)`` into a seeded
:class:`~repro.model.instance.SteinerForestInstance`. Where the graph
family fixes the topology regime, the placement fixes the *demand*
regime — the paper's bounds react to terminal clustering (how fast
moats merge) and terminal spread (how far moats must grow) at least as
strongly as to density, so families and placements compose as
independent axes in :data:`TERMINAL_PLACEMENTS` and the engine's
scenario grids.

Every strategy validates the request through
:func:`~repro.workloads.generators.check_placement_request` and is
exactly reproducible from its ``random.Random``; ties in distance or
degree break deterministically on node ``repr``, matching the library's
ordering convention.
"""

import random
from typing import Callable, List, Mapping, NamedTuple

from repro.model.graph import Node, WeightedGraph
from repro.model.instance import (
    SteinerForestInstance,
    instance_from_components,
)
from repro.workloads.generators import (
    check_placement_request,
    terminals_on_graph,
)


class TerminalPlacement(NamedTuple):
    """A named placement: ``place(graph, k, component_size, rng)``."""

    name: str
    place: Callable[
        [WeightedGraph, int, int, random.Random], SteinerForestInstance
    ]
    description: str = ""


def _nearest(
    dist: Mapping[Node, int], candidates: List[Node], count: int
) -> List[Node]:
    """The ``count`` candidates closest under ``dist`` (repr tie-break)."""
    if count <= 0:
        return []
    return sorted(candidates, key=lambda v: (dist[v], repr(v)))[:count]


def place_uniform(
    graph: WeightedGraph, k: int, component_size: int, rng: random.Random
) -> SteinerForestInstance:
    """Disjoint components drawn uniformly at random (the classic mix)."""
    return terminals_on_graph(graph, k, component_size, rng)


def place_clustered(
    graph: WeightedGraph, k: int, component_size: int, rng: random.Random
) -> SteinerForestInstance:
    """Each component huddles around a random seed node.

    Members are the seed plus its nearest unused nodes by weighted
    distance — terminals of one demand sit close together, so moats
    merge almost immediately (small-moat regime; fast k-driven bounds).
    """
    check_placement_request(graph, k, component_size)
    dist = graph.all_pairs_distances()
    unused = list(graph.nodes)
    components = []
    for _ in range(k):
        seed = unused.pop(rng.randrange(len(unused)))
        members = [seed]
        for v in _nearest(dist[seed], unused, component_size - 1):
            unused.remove(v)
            members.append(v)
        components.append(members)
    return instance_from_components(graph, components)


def place_far_pairs(
    graph: WeightedGraph, k: int, component_size: int, rng: random.Random
) -> SteinerForestInstance:
    """Each component anchors on a maximally distant node pair.

    A random anchor is paired with its weighted-distance-farthest
    unused node; extra members (sizes > 2) pad near the anchor. Moats
    must grow across the whole weighted diameter before merging — the
    worst case for growth-phase counts and WD-driven terms.
    """
    check_placement_request(graph, k, component_size)
    dist = graph.all_pairs_distances()
    unused = list(graph.nodes)
    components = []
    for _ in range(k):
        anchor = unused.pop(rng.randrange(len(unused)))
        members = [anchor]
        if component_size >= 2:
            partner = max(
                unused, key=lambda v: (dist[anchor][v], repr(v))
            )
            unused.remove(partner)
            members.append(partner)
        for v in _nearest(
            dist[anchor], unused, component_size - len(members)
        ):
            unused.remove(v)
            members.append(v)
        components.append(members)
    return instance_from_components(graph, components)


def place_hub_spoke(
    graph: WeightedGraph, k: int, component_size: int, rng: random.Random
) -> SteinerForestInstance:
    """Every component owns one node near the highest-degree hub.

    The k nearest nodes to the hub (the hub itself first) seed one
    component each; remaining members are uniform random spokes. All
    demands funnel through one neighborhood, concentrating congestion
    on the hub's edges — the regime the lower-bound gadgets bottleneck
    on a cut.
    """
    check_placement_request(graph, k, component_size)
    dist = graph.all_pairs_distances()
    hub = max(graph.nodes, key=lambda v: (graph.degree(v), repr(v)))
    cores = _nearest(dist[hub], list(graph.nodes), k)
    spokes = [v for v in graph.nodes if v not in set(cores)]
    rng.shuffle(spokes)
    components, index = [], 0
    for core in cores:
        members = [core] + spokes[index: index + component_size - 1]
        index += component_size - 1
        components.append(members)
    return instance_from_components(graph, components)


#: The default placement — the engine omits it from job identities so
#: pre-placement cache keys stay valid.
DEFAULT_PLACEMENT = "uniform"

TERMINAL_PLACEMENTS: Mapping[str, TerminalPlacement] = {
    placement.name: placement
    for placement in (
        TerminalPlacement(
            "uniform", place_uniform, "disjoint components, uniform at random"
        ),
        TerminalPlacement(
            "clustered", place_clustered, "components huddle around seed nodes"
        ),
        TerminalPlacement(
            "far_pairs", place_far_pairs, "components anchor on distant pairs"
        ),
        TerminalPlacement(
            "hub_spoke", place_hub_spoke, "every component touches the hub"
        ),
    )
}


def place_terminals(
    placement: str,
    graph: WeightedGraph,
    k: int,
    component_size: int,
    rng: random.Random,
) -> SteinerForestInstance:
    """Dispatch to a registered placement strategy by name."""
    try:
        strategy = TERMINAL_PLACEMENTS[placement]
    except KeyError:
        raise ValueError(
            f"unknown terminal placement {placement!r}; "
            f"choose from {sorted(TERMINAL_PLACEMENTS)}"
        ) from None
    return strategy.place(graph, k, component_size, rng)
