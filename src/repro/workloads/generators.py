"""Deterministic (seeded) workload generators.

Each generator takes a ``random.Random`` so experiment rows are exactly
reproducible. Graph families cover the regimes the paper's bounds
distinguish: dense random graphs (small s, small D), grids (s ≈ √n),
geometric graphs (locality), and ring-of-blobs constructions whose
shortest-path diameter s is directly controllable.
"""

import random
from typing import List, Tuple

import networkx as nx

from repro.model.graph import WeightedGraph
from repro.model.instance import SteinerForestInstance, instance_from_components


def ensure_connected(graph: "nx.Graph") -> "nx.Graph":
    """Connectivity fallback shared by the random generators: overlay a
    Hamiltonian path over the integer node labels when the sampled graph
    is disconnected.

    The composed graph keeps every sampled edge and node attribute; the
    caller assigns weights *after* the fallback, so path edges always
    receive weights through the same code path as sampled edges.

    The overlay only connects graphs whose nodes are labeled 0..n-1 (as
    every networkx sampler used here produces); anything else would gain
    fresh phantom nodes instead of connecting the existing ones, so that
    case raises rather than returning a corrupted graph.
    """
    if not nx.is_connected(graph):
        n = graph.number_of_nodes()
        if set(graph) != set(range(n)):
            raise ValueError(
                "ensure_connected requires integer node labels 0..n-1 "
                "(relabel with nx.convert_node_labels_to_integers first)"
            )
        graph = nx.compose(graph, nx.path_graph(n))
    return graph


def random_connected_graph(
    n: int,
    p: float,
    rng: random.Random,
    max_weight: int = 20,
) -> WeightedGraph:
    """G(n, p) with a Hamiltonian-path fallback for connectivity and
    uniform random integer weights in [1, max_weight]."""
    graph = ensure_connected(
        nx.gnp_random_graph(n, p, seed=rng.randrange(1 << 30))
    )
    for u, v in graph.edges:
        graph[u][v]["weight"] = rng.randint(1, max_weight)
    return WeightedGraph.from_networkx(graph)


def random_geometric_graph(
    n: int,
    radius: float,
    rng: random.Random,
    weight_scale: int = 100,
) -> WeightedGraph:
    """Random geometric graph; weights ≈ Euclidean distance (scaled ints)."""
    graph = ensure_connected(
        nx.random_geometric_graph(n, radius, seed=rng.randrange(1 << 30))
    )
    pos = nx.get_node_attributes(graph, "pos")
    for u, v in graph.edges:
        if u in pos and v in pos:
            dist = (
                (pos[u][0] - pos[v][0]) ** 2 + (pos[u][1] - pos[v][1]) ** 2
            ) ** 0.5
            graph[u][v]["weight"] = max(1, int(dist * weight_scale))
        else:
            graph[u][v]["weight"] = rng.randint(1, weight_scale)
    return WeightedGraph.from_networkx(graph)


def grid_graph(
    rows: int, cols: int, rng: random.Random, max_weight: int = 10
) -> WeightedGraph:
    """rows × cols grid with random integer weights."""
    graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(rows, cols))
    for u, v in graph.edges:
        graph[u][v]["weight"] = rng.randint(1, max_weight)
    return WeightedGraph.from_networkx(graph)


def ring_of_blobs(
    num_blobs: int,
    blob_size: int,
    rng: random.Random,
    path_weight: int = 1,
    blob_weight: int = 3,
) -> WeightedGraph:
    """A cycle of cliques: the shortest-path diameter s grows with the ring
    length while the clique structure keeps density up. Useful for sweeping
    s independently of n."""
    edges: List[Tuple[int, int, int]] = []
    nodes: List[int] = []

    def blob_node(b: int, i: int) -> int:
        return b * blob_size + i

    for b in range(num_blobs):
        members = [blob_node(b, i) for i in range(blob_size)]
        nodes.extend(members)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                edges.append((u, v, blob_weight + rng.randint(0, 2)))
        nxt = (b + 1) % num_blobs
        edges.append((blob_node(b, 0), blob_node(nxt, 0), path_weight))
    return WeightedGraph(nodes, edges)


def terminals_on_graph(
    graph: WeightedGraph,
    k: int,
    component_size: int,
    rng: random.Random,
) -> SteinerForestInstance:
    """Place k disjoint input components of the given size uniformly."""
    nodes = list(graph.nodes)
    needed = k * component_size
    if needed > len(nodes):
        raise ValueError(
            f"need {needed} terminals but the graph has {len(nodes)} nodes"
        )
    rng.shuffle(nodes)
    components = [
        nodes[i * component_size: (i + 1) * component_size]
        for i in range(k)
    ]
    return instance_from_components(graph, components)


def random_instance(
    n: int,
    k: int,
    rng: random.Random,
    p: float = 0.35,
    component_size: int = 2,
    max_weight: int = 20,
) -> SteinerForestInstance:
    """A random connected graph with k random components (convenience)."""
    graph = random_connected_graph(n, p, rng, max_weight=max_weight)
    return terminals_on_graph(graph, k, component_size, rng)


def grid_instance(
    rows: int,
    cols: int,
    k: int,
    rng: random.Random,
    component_size: int = 2,
) -> SteinerForestInstance:
    """A random-weight grid with k random components (convenience)."""
    graph = grid_graph(rows, cols, rng)
    return terminals_on_graph(graph, k, component_size, rng)
