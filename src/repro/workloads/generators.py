"""Deterministic (seeded) workload generators.

Each generator takes a ``random.Random`` so experiment rows are exactly
reproducible. Graph families cover the regimes the paper's bounds
distinguish: dense random graphs (small s, small D), grids (s ≈ √n),
geometric graphs (locality), and ring-of-blobs constructions whose
shortest-path diameter s is directly controllable.
"""

import random
from typing import List, Tuple

import networkx as nx

from repro.model.graph import WeightedGraph
from repro.model.instance import SteinerForestInstance, instance_from_components


def ensure_connected(graph: "nx.Graph") -> "nx.Graph":
    """Connectivity fallback shared by the random generators: overlay a
    Hamiltonian path over the integer node labels when the sampled graph
    is disconnected.

    The composed graph keeps every sampled edge and node attribute; the
    caller assigns weights *after* the fallback, so path edges always
    receive weights through the same code path as sampled edges.

    The overlay only connects graphs whose nodes are labeled 0..n-1 (as
    every networkx sampler used here produces); anything else would gain
    fresh phantom nodes instead of connecting the existing ones, so that
    case raises rather than returning a corrupted graph.
    """
    if not nx.is_connected(graph):
        n = graph.number_of_nodes()
        if set(graph) != set(range(n)):
            raise ValueError(
                "ensure_connected requires integer node labels 0..n-1 "
                "(relabel with nx.convert_node_labels_to_integers first)"
            )
        graph = nx.compose(graph, nx.path_graph(n))
    return graph


def random_connected_graph(
    n: int,
    p: float,
    rng: random.Random,
    max_weight: int = 20,
) -> WeightedGraph:
    """G(n, p) with a Hamiltonian-path fallback for connectivity and
    uniform random integer weights in [1, max_weight]."""
    graph = ensure_connected(
        nx.gnp_random_graph(n, p, seed=rng.randrange(1 << 30))
    )
    for u, v in graph.edges:
        graph[u][v]["weight"] = rng.randint(1, max_weight)
    return WeightedGraph.from_networkx(graph)


def random_geometric_graph(
    n: int,
    radius: float,
    rng: random.Random,
    weight_scale: int = 100,
) -> WeightedGraph:
    """Random geometric graph; weights ≈ Euclidean distance (scaled ints)."""
    graph = ensure_connected(
        nx.random_geometric_graph(n, radius, seed=rng.randrange(1 << 30))
    )
    pos = nx.get_node_attributes(graph, "pos")
    for u, v in graph.edges:
        if u in pos and v in pos:
            dist = (
                (pos[u][0] - pos[v][0]) ** 2 + (pos[u][1] - pos[v][1]) ** 2
            ) ** 0.5
            graph[u][v]["weight"] = max(1, int(dist * weight_scale))
        else:
            graph[u][v]["weight"] = rng.randint(1, weight_scale)
    return WeightedGraph.from_networkx(graph)


def grid_graph(
    rows: int, cols: int, rng: random.Random, max_weight: int = 10
) -> WeightedGraph:
    """rows × cols grid with random integer weights."""
    graph = nx.convert_node_labels_to_integers(nx.grid_2d_graph(rows, cols))
    for u, v in graph.edges:
        graph[u][v]["weight"] = rng.randint(1, max_weight)
    return WeightedGraph.from_networkx(graph)


def ring_of_blobs(
    num_blobs: int,
    blob_size: int,
    rng: random.Random,
    path_weight: int = 1,
    blob_weight: int = 3,
) -> WeightedGraph:
    """A cycle of cliques: the shortest-path diameter s grows with the ring
    length while the clique structure keeps density up. Useful for sweeping
    s independently of n."""
    edges: List[Tuple[int, int, int]] = []
    nodes: List[int] = []

    def blob_node(b: int, i: int) -> int:
        return b * blob_size + i

    for b in range(num_blobs):
        members = [blob_node(b, i) for i in range(blob_size)]
        nodes.extend(members)
        for i, u in enumerate(members):
            for v in members[i + 1:]:
                edges.append((u, v, blob_weight + rng.randint(0, 2)))
        nxt = (b + 1) % num_blobs
        edges.append((blob_node(b, 0), blob_node(nxt, 0), path_weight))
    return WeightedGraph(nodes, edges)


def powerlaw_graph(
    n: int,
    m_attach: int,
    rng: random.Random,
    max_weight: int = 20,
) -> WeightedGraph:
    """Barabási–Albert preferential-attachment graph (power-law degrees).

    Regime probed: hub-dominated topologies with tiny unweighted
    diameter D and skewed congestion — most least-weight paths cross a
    few hubs, stressing the CONGEST bandwidth accounting and the
    O(ks + t) term rather than the √n term. Connected by construction
    for ``m_attach >= 1``; uniform random integer weights.
    """
    graph = nx.barabasi_albert_graph(
        n, m_attach, seed=rng.randrange(1 << 30)
    )
    for u, v in graph.edges:
        graph[u][v]["weight"] = rng.randint(1, max_weight)
    return WeightedGraph.from_networkx(graph)


def smallworld_graph(
    n: int,
    k_nearest: int,
    rewire_p: float,
    rng: random.Random,
    max_weight: int = 20,
) -> WeightedGraph:
    """Watts–Strogatz small-world ring (local clustering + shortcuts).

    Regime probed: high clustering with a few long-range shortcuts —
    the weighted diameter WD stays ring-like while the hop diameter D
    collapses, separating the D-dependent pipelining terms from the
    shortest-path-diameter s the moat emulation pays for.
    """
    graph = ensure_connected(
        nx.watts_strogatz_graph(
            n, k_nearest, rewire_p, seed=rng.randrange(1 << 30)
        )
    )
    for u, v in graph.edges:
        graph[u][v]["weight"] = rng.randint(1, max_weight)
    return WeightedGraph.from_networkx(graph)


def random_regular_graph(
    n: int,
    degree: int,
    rng: random.Random,
    max_weight: int = 20,
) -> WeightedGraph:
    """Random ``degree``-regular graph (an expander w.h.p. for degree ≥ 3).

    Regime probed: expanders have logarithmic diameter, no hubs, and no
    exploitable locality — the adversarial middle ground between dense
    G(n,p) and grids, where the Õ(sk + √min{st, n}) bound's √n term
    dominates. ``n * degree`` must be even (networkx requirement).
    """
    graph = ensure_connected(
        nx.random_regular_graph(degree, n, seed=rng.randrange(1 << 30))
    )
    for u, v in graph.edges:
        graph[u][v]["weight"] = rng.randint(1, max_weight)
    return WeightedGraph.from_networkx(graph)


def torus_graph(
    rows: int, cols: int, rng: random.Random, max_weight: int = 10
) -> WeightedGraph:
    """rows × cols torus (grid with periodic boundary, no border effects).

    Regime probed: like the grid, s ≈ √n, but vertex-transitive — every
    terminal placement sees the same local geometry, isolating
    placement effects from the grid's corner/edge artifacts.
    """
    graph = nx.convert_node_labels_to_integers(
        nx.grid_2d_graph(rows, cols, periodic=True)
    )
    for u, v in graph.edges:
        graph[u][v]["weight"] = rng.randint(1, max_weight)
    return WeightedGraph.from_networkx(graph)


def caterpillar_graph(
    spine: int,
    legs: int,
    rng: random.Random,
    max_weight: int = 10,
) -> WeightedGraph:
    """Caterpillar tree: a ``spine``-node path with ``legs`` leaves each.

    Regime probed: trees are the sparsest connected inputs — s equals
    the (hop) diameter and grows linearly in the spine, the worst case
    for the O(ks + t) deterministic bound, while the unique-path
    structure makes every algorithm's output cost coincide with OPT.
    """
    edges: List[Tuple[int, int, int]] = []
    next_leaf = spine
    for i in range(spine):
        if i + 1 < spine:
            edges.append((i, i + 1, rng.randint(1, max_weight)))
        for _ in range(legs):
            edges.append((i, next_leaf, rng.randint(1, max_weight)))
            next_leaf += 1
    nodes = list(range(next_leaf))
    return WeightedGraph(nodes, edges)


def broom_graph(
    handle: int,
    bristles: int,
    rng: random.Random,
    max_weight: int = 10,
) -> WeightedGraph:
    """Broom tree: a ``handle``-node path ending in a ``bristles``-leaf star.

    Regime probed: the extreme terminal-clustering tree — a long handle
    (large s) funnelling into one high-degree node where all demands
    meet, the single-bottleneck counterpart of the caterpillar's evenly
    spread legs.
    """
    edges: List[Tuple[int, int, int]] = [
        (i, i + 1, rng.randint(1, max_weight)) for i in range(handle - 1)
    ]
    for leaf in range(handle, handle + bristles):
        edges.append((handle - 1, leaf, rng.randint(1, max_weight)))
    nodes = list(range(handle + bristles))
    return WeightedGraph(nodes, edges)


def clustered_geometric_graph(
    n: int,
    clusters: int,
    rng: random.Random,
    spread: float = 0.08,
    radius: float = 0.22,
    weight_scale: int = 100,
) -> WeightedGraph:
    """Gaussian clusters of points in the unit square, radius-connected.

    Regime probed: strong terminal locality — intra-cluster distances
    are tiny against inter-cluster ones, so moats merge within clusters
    almost immediately and the cost concentrates on a few long
    cluster-bridging paths (the regime where clustered placement and
    the randomized embedding shine). Weights ≈ Euclidean distance,
    including on any connectivity-fallback edges.
    """
    centers = [
        (rng.random(), rng.random()) for _ in range(clusters)
    ]
    pos = {}
    for v in range(n):
        cx, cy = centers[v % clusters]
        pos[v] = (
            min(1.0, max(0.0, rng.gauss(cx, spread))),
            min(1.0, max(0.0, rng.gauss(cy, spread))),
        )

    def dist(u: int, v: int) -> float:
        return (
            (pos[u][0] - pos[v][0]) ** 2 + (pos[u][1] - pos[v][1]) ** 2
        ) ** 0.5

    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for u in range(n):
        for v in range(u + 1, n):
            if dist(u, v) <= radius:
                graph.add_edge(u, v)
    graph = ensure_connected(graph)
    for u, v in graph.edges:
        graph[u][v]["weight"] = max(1, int(dist(u, v) * weight_scale))
    return WeightedGraph.from_networkx(graph)


def check_placement_request(
    graph: WeightedGraph, k: int, component_size: int
) -> None:
    """Validate a terminal-placement request against the graph.

    Components are node-disjoint, so ``k`` components of
    ``component_size`` terminals need ``k * component_size`` distinct
    nodes. Degenerate requests (``k < 1``, ``component_size < 1``) and
    requests for more distinct terminals than the graph has nodes raise
    a clear ``ValueError`` here — every placement strategy funnels
    through this check, so none can silently drop components, duplicate
    a node across components, or loop forever hunting for free nodes.
    """
    if k < 1:
        raise ValueError(f"need at least one input component, got k={k}")
    if component_size < 1:
        raise ValueError(
            f"components need at least one terminal, got "
            f"component_size={component_size}"
        )
    needed = k * component_size
    if needed > graph.num_nodes:
        raise ValueError(
            f"need {needed} distinct terminals for {k} disjoint "
            f"components of size {component_size} but the graph has only "
            f"{graph.num_nodes} nodes"
        )


def terminals_on_graph(
    graph: WeightedGraph,
    k: int,
    component_size: int,
    rng: random.Random,
) -> SteinerForestInstance:
    """Place k disjoint input components of the given size uniformly."""
    check_placement_request(graph, k, component_size)
    nodes = list(graph.nodes)
    rng.shuffle(nodes)
    components = [
        nodes[i * component_size: (i + 1) * component_size]
        for i in range(k)
    ]
    return instance_from_components(graph, components)


def random_instance(
    n: int,
    k: int,
    rng: random.Random,
    p: float = 0.35,
    component_size: int = 2,
    max_weight: int = 20,
) -> SteinerForestInstance:
    """A random connected graph with k random components (convenience)."""
    graph = random_connected_graph(n, p, rng, max_weight=max_weight)
    return terminals_on_graph(graph, k, component_size, rng)


def grid_instance(
    rows: int,
    cols: int,
    k: int,
    rng: random.Random,
    component_size: int = 2,
) -> SteinerForestInstance:
    """A random-weight grid with k random components (convenience)."""
    graph = grid_graph(rows, cols, rng)
    return terminals_on_graph(graph, k, component_size, rng)
