"""Workload generators for experiments and tests."""

from repro.workloads.generators import (
    broom_graph,
    caterpillar_graph,
    check_placement_request,
    clustered_geometric_graph,
    ensure_connected,
    grid_graph,
    grid_instance,
    powerlaw_graph,
    random_connected_graph,
    random_geometric_graph,
    random_instance,
    random_regular_graph,
    ring_of_blobs,
    smallworld_graph,
    terminals_on_graph,
    torus_graph,
)
from repro.workloads.placements import (
    DEFAULT_PLACEMENT,
    TERMINAL_PLACEMENTS,
    TerminalPlacement,
    place_terminals,
)

__all__ = [
    "ensure_connected",
    "check_placement_request",
    "grid_graph",
    "random_connected_graph",
    "random_geometric_graph",
    "ring_of_blobs",
    "powerlaw_graph",
    "smallworld_graph",
    "random_regular_graph",
    "torus_graph",
    "caterpillar_graph",
    "broom_graph",
    "clustered_geometric_graph",
    "terminals_on_graph",
    "random_instance",
    "grid_instance",
    "DEFAULT_PLACEMENT",
    "TERMINAL_PLACEMENTS",
    "TerminalPlacement",
    "place_terminals",
]
