"""Workload generators for experiments and tests."""

from repro.workloads.generators import (
    ensure_connected,
    grid_graph,
    grid_instance,
    random_connected_graph,
    random_geometric_graph,
    random_instance,
    ring_of_blobs,
    terminals_on_graph,
)

__all__ = [
    "ensure_connected",
    "grid_graph",
    "random_connected_graph",
    "random_geometric_graph",
    "ring_of_blobs",
    "terminals_on_graph",
    "random_instance",
    "grid_instance",
]
