"""Tree communication primitives: broadcast, convergecast, pipelined upcast.

These are the workhorses behind the paper's O(D + k) / O(D + t) style steps:
moving ``m`` distinct O(log n)-bit items between the root and all nodes over
a BFS tree takes depth + m rounds with pipelining (one item per tree edge per
round). All three primitives simulate the communication round-by-round and
charge the enclosing :class:`~repro.congest.run.CongestRun`.
"""

from bisect import insort
from collections import deque
from typing import Callable, Dict, Hashable, Iterable, List, Optional, Set, Tuple, TypeVar

from repro.congest.bfs import BFSTree
from repro.congest.run import CongestRun
from repro.model.graph import Node

Item = TypeVar("Item")


def broadcast_items(
    tree: BFSTree,
    items: Iterable[Item],
    run: CongestRun,
) -> List[Item]:
    """Pipelined broadcast of a sequence of items from the root to all nodes.

    Completes in depth + |items| rounds: the root injects one item per round
    and every internal node forwards one item per round to each child (the
    same item to all children — one message per edge, respecting CONGEST).

    Returns the broadcast items as a list (what every node now knows).
    """
    items = list(items)
    if not items or tree.depth == 0:
        # Nothing to send or a single-node tree: knowledge is already local.
        return items
    if getattr(run, "npc", None) is not None:
        from repro.perf.npkernels import broadcast_items_numpy

        return broadcast_items_numpy(tree, items, run)
    compiled = getattr(run, "compiled", None)
    canon = compiled.canon if compiled is not None else None
    top_down = tree.nodes_top_down()
    queue: Dict[Node, deque] = {v: deque() for v in tree.parent}
    queue[tree.root].extend(items)
    while True:
        traffic: Dict[Tuple[Node, Node], int] = {}
        deliveries: List[Tuple[Node, Item]] = []
        for v in top_down:
            if queue[v] and tree.children[v]:
                item = queue[v].popleft()
                for child in tree.children[v]:
                    traffic[(v, child)] = 1
                    deliveries.append((child, item))
            elif queue[v] and not tree.children[v]:
                queue[v].popleft()  # leaf consumes the item locally
        if not traffic and not any(queue[v] for v in queue):
            break
        if canon is not None:
            run.tick()
            run.charge_messages(canon[pair] for pair in traffic)
        else:
            run.tick(traffic)
        for child, item in deliveries:
            queue[child].append(item)
    return items


def convergecast_aggregate(
    tree: BFSTree,
    values: Dict[Node, Item],
    combine: Callable[[Item, Item], Item],
    run: CongestRun,
) -> Item:
    """Aggregate one value per node up to the root in depth rounds.

    ``combine`` must be associative and commutative, and the combined value
    must still fit in one message (e.g. min, max, sum of O(log n)-bit
    numbers). Returns the aggregate of all values.

    A :class:`~repro.perf.npkernels.NumpyCongestRun` replaces the
    per-round bottom-up re-sort with a precomputed subtree-height
    schedule; the combine order, rounds, and ledger end state are
    identical (tests/test_npkernels.py).
    """
    if getattr(run, "npc", None) is not None:
        from repro.perf.npkernels import convergecast_aggregate_numpy

        return convergecast_aggregate_numpy(tree, values, combine, run)
    acc: Dict[Node, Item] = dict(values)
    waiting: Dict[Node, int] = {
        v: len(tree.children[v]) for v in tree.parent
    }
    sent: Set[Node] = set()
    while True:
        traffic: Dict[Tuple[Node, Node], int] = {}
        arrivals: List[Tuple[Node, Item]] = []
        for v in tree.nodes_bottom_up():
            if v == tree.root or v in sent or waiting[v] > 0:
                continue
            parent = tree.parent[v]
            assert parent is not None
            traffic[(v, parent)] = 1
            arrivals.append((parent, acc[v]))
            sent.add(v)
        if not traffic:
            break
        run.tick(traffic)
        for parent, value in arrivals:
            acc[parent] = combine(acc[parent], value)
            waiting[parent] -= 1
    return acc[tree.root]


def upcast_items(
    tree: BFSTree,
    local_items: Dict[Node, Iterable[Item]],
    run: CongestRun,
    key: Optional[Callable[[Item], Hashable]] = None,
) -> List[Item]:
    """Pipelined collection of all distinct items at the root.

    Every node holds a buffer of items (its own plus everything received
    from children) and forwards one not-yet-forwarded item per round to its
    parent, skipping duplicates (two items are duplicates when ``key`` maps
    them to the same value; by default the items themselves are compared).
    With ``m`` distinct items the collection finishes in O(depth + m) rounds
    — the pipelining argument of Lemma 4.14 / the MST filtering of [11, 16].

    Returns the distinct items known to the root, in sorted order.

    A :class:`~repro.perf.FastCongestRun` engages the compiled fast
    branch: buffers are kept sorted incrementally (``insort`` on
    arrival, with ``repr`` computed once per item) instead of re-sorted
    every round, and ledger charges use precompiled canonical edges.
    The forwarded items, their order, and the ledger end state are
    identical either way (tests/test_perf.py).
    """
    if key is None:
        key = lambda item: item  # noqa: E731 - identity key
    if getattr(run, "compiled", None) is not None:
        return _upcast_items_fast(tree, local_items, run, key)
    buffers: Dict[Node, List[Item]] = {v: [] for v in tree.parent}
    seen: Dict[Node, Set[Hashable]] = {v: set() for v in tree.parent}
    forwarded: Dict[Node, Set[Hashable]] = {v: set() for v in tree.parent}
    for v, items in local_items.items():
        for item in items:
            k = key(item)
            if k not in seen[v]:
                seen[v].add(k)
                buffers[v].append(item)
    while True:
        traffic: Dict[Tuple[Node, Node], int] = {}
        arrivals: List[Tuple[Node, Item]] = []
        for v in tree.parent:
            if v == tree.root:
                continue
            candidate = None
            for item in sorted(buffers[v], key=repr):
                if key(item) not in forwarded[v]:
                    candidate = item
                    break
            if candidate is None:
                continue
            parent = tree.parent[v]
            assert parent is not None
            forwarded[v].add(key(candidate))
            traffic[(v, parent)] = 1
            arrivals.append((parent, candidate))
        if not traffic:
            break
        run.tick(traffic)
        for parent, item in arrivals:
            k = key(item)
            if k not in seen[parent]:
                seen[parent].add(k)
                buffers[parent].append(item)
    return sorted(buffers[tree.root], key=repr)


def _upcast_items_fast(
    tree: BFSTree,
    local_items: Dict[Node, Iterable[Item]],
    run: CongestRun,
    key: Callable[[Item], Hashable],
) -> List[Item]:
    """The compiled-ledger branch of :func:`upcast_items`.

    Buffer entries are ``(repr(item), sequence, item)`` triples kept
    sorted by ``insort``: the sequence number (global insertion order)
    breaks ``repr`` ties exactly like the reference path's *stable*
    per-round ``sorted(..., key=repr)``, so the candidate scan visits
    items in the identical order without re-sorting.
    """
    canon = run.compiled.canon  # type: ignore[attr-defined]
    buffers: Dict[Node, List[Tuple[str, int, Item]]] = {
        v: [] for v in tree.parent
    }
    seen: Dict[Node, Set[Hashable]] = {v: set() for v in tree.parent}
    forwarded: Dict[Node, Set[Hashable]] = {v: set() for v in tree.parent}
    sequence = 0
    for v, items in local_items.items():
        for item in items:
            k = key(item)
            if k not in seen[v]:
                seen[v].add(k)
                insort(buffers[v], (repr(item), sequence, item))
                sequence += 1
    while True:
        charges: List = []
        arrivals: List[Tuple[Node, str, Item]] = []
        for v in tree.parent:
            if v == tree.root:
                continue
            candidate = None
            candidate_repr = ""
            for item_repr, _, item in buffers[v]:
                if key(item) not in forwarded[v]:
                    candidate = item
                    candidate_repr = item_repr
                    break
            if candidate is None:
                continue
            parent = tree.parent[v]
            assert parent is not None
            forwarded[v].add(key(candidate))
            charges.append(canon[(v, parent)])
            arrivals.append((parent, candidate_repr, candidate))
        if not charges:
            break
        run.tick()
        run.charge_messages(charges)
        for parent, item_repr, item in arrivals:
            k = key(item)
            if k not in seen[parent]:
                seen[parent].add(k)
                insort(buffers[parent], (item_repr, sequence, item))
                sequence += 1
    return [item for _, _, item in buffers[tree.root]]
