"""Distributed BFS-tree construction.

Nearly every step of the paper's algorithms coordinates over a BFS tree
rooted at a distinguished node R (usually the maximum identifier): Lemmas
2.3/2.4 (input transforms), Lemma 4.14 (candidate-merge filtering), Appendix
F (growth-phase coordination), and the randomized algorithm's Steps 3a/3c.

The construction is the textbook flooding algorithm: in round ``d`` the
nodes at hop distance ``d`` from the root announce themselves; a node joins
the tree the first round it hears an announcement, picking the smallest-
identifier announcer as its parent. It completes in D + O(1) rounds.
"""

from typing import Dict, List, Optional, Tuple

from repro.congest.run import CongestRun
from repro.model.graph import Node, WeightedGraph


class BFSTree:
    """A rooted BFS tree: parents, children, and depth bookkeeping."""

    def __init__(
        self,
        root: Node,
        parent: Dict[Node, Optional[Node]],
        depth_of: Dict[Node, int],
    ) -> None:
        self.root = root
        self.parent = parent
        self.depth_of = depth_of
        self.children: Dict[Node, List[Node]] = {v: [] for v in parent}
        for v, p in parent.items():
            if p is not None:
                self.children[p].append(v)
        for kids in self.children.values():
            kids.sort(key=repr)
        self.depth = max(depth_of.values()) if depth_of else 0

    def nodes_bottom_up(self) -> List[Node]:
        """All nodes ordered by decreasing depth (children before parents)."""
        return sorted(
            self.parent, key=lambda v: (-self.depth_of[v], repr(v))
        )

    def nodes_top_down(self) -> List[Node]:
        """All nodes ordered by increasing depth (parents before children)."""
        return sorted(
            self.parent, key=lambda v: (self.depth_of[v], repr(v))
        )

    def path_to_root(self, v: Node) -> List[Node]:
        """The tree path from ``v`` to the root, inclusive."""
        path = [v]
        while self.parent[path[-1]] is not None:
            path.append(self.parent[path[-1]])  # type: ignore[arg-type]
        return path

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BFSTree(root={self.root!r}, depth={self.depth})"


def default_root(graph: WeightedGraph) -> Node:
    """The paper's canonical root choice: the largest identifier."""
    return max(graph.nodes, key=repr)


def build_bfs_tree(
    graph: WeightedGraph,
    run: CongestRun,
    root: Optional[Node] = None,
) -> BFSTree:
    """Construct a BFS tree by flooding, charging D + O(1) rounds to ``run``.

    Round-by-round: every node that joined the tree in the previous round
    sends a "join me" message to all neighbors; an unjoined node picks the
    smallest-identifier sender as its parent. Two extra quiet rounds model
    local termination detection at the frontier.

    A :class:`~repro.perf.FastCongestRun` engages the compiled fast
    branch (cached neighbor tuples and ``repr`` keys, batched ledger
    charging); a :class:`~repro.perf.npkernels.NumpyCongestRun` runs the
    whole flood as array kernels (integer ranks reproduce the ``repr``
    tie-breaking). The execution — parents, depths, rounds, per-edge
    traffic — is identical either way (pinned in tests/test_perf.py and
    tests/test_npkernels.py).
    """
    if root is None:
        root = default_root(graph)
    if getattr(run, "npc", None) is not None:
        from repro.perf.npkernels import build_bfs_tree_numpy

        return build_bfs_tree_numpy(run, root)
    parent: Dict[Node, Optional[Node]] = {root: None}
    depth_of: Dict[Node, int] = {root: 0}
    frontier: List[Node] = [root]
    depth = 0
    compiled = getattr(run, "compiled", None)
    if compiled is not None:
        reprs = compiled.repr_of
        neighbors = compiled.neighbors
        out_counter = compiled.out_counter
        degree = compiled.degree
        while frontier:
            depth += 1
            proposals: Dict[Node, List[Node]] = {}
            for u in frontier:
                for v in neighbors[u]:
                    if v not in parent:
                        proposals.setdefault(v, []).append(u)
            run.tick()
            for u in frontier:
                run.charge_counter(out_counter[u], degree[u])
            frontier = []
            for v, candidates in sorted(
                proposals.items(), key=lambda kv: reprs[kv[0]]
            ):
                parent[v] = min(candidates, key=reprs.__getitem__)
                depth_of[v] = depth
                frontier.append(v)
        return BFSTree(root, parent, depth_of)
    while frontier:
        depth += 1
        traffic: Dict[Tuple[Node, Node], int] = {}
        proposals = {}
        for u in frontier:
            for v in graph.neighbors(u):
                traffic[(u, v)] = 1
                if v not in parent:
                    proposals.setdefault(v, []).append(u)
        run.tick(traffic)
        frontier = []
        for v, candidates in sorted(proposals.items(), key=lambda kv: repr(kv[0])):
            parent[v] = min(candidates, key=repr)
            depth_of[v] = depth
            frontier.append(v)
    return BFSTree(root, parent, depth_of)
