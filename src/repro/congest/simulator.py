"""Generic event-driven CONGEST simulator (node programs).

The primitives in this package simulate specific protocols; this module
provides the general substrate: every node runs a :class:`NodeProgram`,
rounds proceed synchronously, and per edge and direction at most one
B-bit message is delivered per round (Section 2's model). It is used for
self-contained protocols (leader election, echo) and by downstream users
who want to prototype their own CONGEST algorithms against the same
ledger/accounting as the paper's algorithms.

Example::

    class Flood(NodeProgram):
        def on_start(self, ctx):
            self.best = ctx.node_id
            for v in ctx.neighbors:
                ctx.send(v, self.best)

        def on_round(self, ctx, inbox):
            improved = False
            for _, value in inbox:
                if value > self.best:
                    self.best = value
                    improved = True
            if improved:
                for v in ctx.neighbors:
                    ctx.send(v, self.best)
            else:
                ctx.halt()

The :class:`Simulator` itself is a facade: the round loop is owned by a
pluggable :class:`~repro.simbackend.SimulationBackend` (see
:mod:`repro.simbackend`) — the default ``reference`` engine reproduces
the original per-node-object loop exactly, ``flatarray`` runs the same
execution on a compiled integer-indexed topology, and ``sharded``
partitions the nodes across worker processes.
"""

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.congest.run import CongestRun
from repro.exceptions import SimulationError
from repro.model.graph import Node, WeightedGraph
from repro.netmodel import (
    NetworkModel,
    TraceRecorder,
    build_network_model,
    node_sort_key,
)
from repro.simbackend import Context, SimulationBackend, build_backend

__all__ = [
    "Context",
    "NodeProgram",
    "Simulator",
    "FloodMaxLeaderElection",
    "EchoBroadcast",
]


class NodeProgram:
    """Base class for per-node protocol logic. Subclasses override
    :meth:`on_start` and :meth:`on_round`."""

    def on_start(self, ctx: Context) -> None:
        """Round-0 initialization; may send messages."""

    def on_round(self, ctx: Context, inbox: List[Tuple[Node, Any]]) -> None:
        """Process the messages received this round ((sender, payload)
        pairs, deterministic order) and optionally send new ones."""
        raise NotImplementedError


class Simulator:
    """Synchronous executor for a NodeProgram per node.

    The simulator shares its :class:`CongestRun` ledger with the rest of
    the library, so node-program executions and primitive executions
    compose into one round count.

    Message delivery is owned by a :class:`~repro.netmodel.NetworkModel`:
    every queued message passes through ``network.schedule`` at the start
    of the round that would normally deliver it, and the model decides the
    delivery round(s) — or drops the message. The default ``reliable``
    model reproduces the clean synchronous channel exactly. An optional
    :class:`~repro.netmodel.TraceRecorder` captures per-message and
    per-round traffic events.

    Execution is delegated to a :class:`~repro.simbackend.
    SimulationBackend`: the default ``reference`` engine is the original
    loop, and every other engine is conformance-pinned to produce the
    identical execution (see :mod:`repro.simbackend`).

    Args:
        graph: the network topology.
        programs: one :class:`NodeProgram` per node.
        run: shared ledger (a fresh one is created when omitted).
        network: a network condition — a model instance, a canonical spec
            dict, a registered model name, or None for ``reliable``.
        trace: recorder for message/volume trace events.
        net_seed: seed for the network model's RNG (loss/delay draws).
        backend: the execution engine — a backend instance, a canonical
            spec dict, a registered backend name, or None for
            ``reference``.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        programs: Dict[Node, NodeProgram],
        run: Optional[CongestRun] = None,
        network: Any = None,
        trace: Optional[TraceRecorder] = None,
        net_seed: int = 0,
        backend: Any = None,
    ) -> None:
        if set(programs) != set(graph.nodes):
            raise SimulationError("every node needs exactly one program")
        self.graph = graph
        self.programs = programs
        self.run = run if run is not None else CongestRun(graph)
        self.network: NetworkModel = build_network_model(network)
        self.network.bind(graph, random.Random(net_seed))
        self.trace = trace
        self.backend: SimulationBackend = build_backend(backend)
        self.backend.bind(graph, programs, self.run, self.network, trace)

    # -- delegation to the execution engine ------------------------------

    @property
    def contexts(self) -> Dict[Node, Context]:
        """The per-node Context objects (where the engine keeps them
        in-process; the sharded engine's live contexts are worker-side)."""
        return self.backend.contexts

    @property
    def round(self) -> int:
        """The current round index (0 before the first step)."""
        return self.backend.round

    @property
    def all_halted(self) -> bool:
        """Every node has halted or been removed by the network model
        (crashed nodes count as terminated)."""
        return self.backend.all_halted

    @property
    def has_pending(self) -> bool:
        """Messages queued or in flight."""
        return self.backend.has_pending

    def start(self) -> None:
        """Run every program's on_start (round 0, local only)."""
        self.backend.start()

    def step(self) -> bool:
        """Execute one synchronous round; returns False when quiescent
        (no messages queued or in flight, and/or all nodes halted)."""
        return self.backend.step()

    def run_to_completion(self, max_rounds: int = 100_000) -> int:
        """start() + step() until quiescence; returns rounds executed.

        ``max_rounds`` is inclusive: quiescing in exactly ``max_rounds``
        rounds succeeds, and :class:`SimulationError` is raised as soon as
        the limit is reached with work still pending (never executing a
        ``max_rounds + 1``-th round).
        """
        return self.backend.run_to_completion(max_rounds=max_rounds)

    def close(self) -> None:
        """Release backend resources and any streaming trace handle
        (idempotent; run_to_completion closes automatically)."""
        self.backend.close()
        if self.trace is not None:
            self.trace.close()


class FloodMaxLeaderElection(NodeProgram):
    """Classic flooding leader election: everyone learns the max ID.

    A node re-floods only on improvement; the execution quiesces (no
    messages in flight) within eccentricity-many rounds, which ends the
    run — nodes never halt explicitly, since a halted node would miss a
    late-arriving wave. The winner is stored in ``leader``.
    """

    def __init__(self) -> None:
        self.leader: Optional[Node] = None

    def on_start(self, ctx: Context) -> None:
        self.leader = ctx.node_id
        for v in ctx.neighbors:
            ctx.send(v, self.leader)

    def on_round(self, ctx: Context, inbox: List[Tuple[Node, Any]]) -> None:
        improved = False
        for _, candidate in inbox:
            # A type-stable total order on IDs: integers compare
            # numerically (repr would elect 9 over 10).
            if node_sort_key(candidate) > node_sort_key(self.leader):
                self.leader = candidate
                improved = True
        if improved:
            for v in ctx.neighbors:
                ctx.send(v, self.leader)


class EchoBroadcast(NodeProgram):
    """Broadcast-with-acknowledgement (PIF) from a designated root."""

    def __init__(self, root: Node) -> None:
        self.root = root
        self.parent: Optional[Node] = None
        self.informed = False
        self.done = False
        self._pending: set = set()

    def on_start(self, ctx: Context) -> None:
        if ctx.node_id == self.root:
            self.informed = True
            self._pending = set(ctx.neighbors)
            for v in ctx.neighbors:
                ctx.send(v, "wave")
            if not self._pending:
                # Isolated root: the broadcast is complete immediately.
                self.done = True
                ctx.halt()

    def on_round(self, ctx: Context, inbox: List[Tuple[Node, Any]]) -> None:
        for sender, payload in inbox:
            if payload == "wave" and not self.informed:
                self.informed = True
                self.parent = sender
                self._pending = {
                    v for v in ctx.neighbors if v != sender
                }
                for v in self._pending:
                    ctx.send(v, "wave")
            elif payload in ("wave", "echo"):
                self._pending.discard(sender)
        if self.informed and not self._pending and not self.done:
            self.done = True
            if self.parent is not None:
                ctx.send(self.parent, "echo")
            ctx.halt()
