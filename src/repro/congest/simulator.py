"""Generic event-driven CONGEST simulator (node programs).

The primitives in this package simulate specific protocols; this module
provides the general substrate: every node runs a :class:`NodeProgram`,
rounds proceed synchronously, and per edge and direction at most one
B-bit message is delivered per round (Section 2's model). It is used for
self-contained protocols (leader election, echo) and by downstream users
who want to prototype their own CONGEST algorithms against the same
ledger/accounting as the paper's algorithms.

Example::

    class Flood(NodeProgram):
        def on_start(self, ctx):
            self.best = ctx.node_id
            for v in ctx.neighbors:
                ctx.send(v, self.best)

        def on_round(self, ctx, inbox):
            improved = False
            for _, value in inbox:
                if value > self.best:
                    self.best = value
                    improved = True
            if improved:
                for v in ctx.neighbors:
                    ctx.send(v, self.best)
            else:
                ctx.halt()
"""

import random
from typing import Any, Dict, List, Optional, Tuple

from repro.congest.run import CongestRun
from repro.exceptions import CongestViolationError, SimulationError
from repro.model.graph import Node, WeightedGraph
from repro.netmodel import (
    NetworkModel,
    TraceRecorder,
    build_network_model,
    node_sort_key,
    payload_bits,
)


class Context:
    """Per-node view handed to a NodeProgram each round."""

    def __init__(self, simulator: "Simulator", node: Node) -> None:
        self._simulator = simulator
        self.node_id = node
        self.neighbors = simulator.graph.neighbors(node)
        self.round = 0

    def edge_weight(self, neighbor: Node) -> int:
        """Weight of the incident edge to ``neighbor``."""
        return self._simulator.graph.weight(self.node_id, neighbor)

    def send(self, neighbor: Node, payload: Any) -> None:
        """Queue one message for delivery next round (≤ 1 per neighbor)."""
        self._simulator._queue_message(self.node_id, neighbor, payload)

    def halt(self) -> None:
        """Mark this node as explicitly terminated (Section 2's notion of
        termination; a halted node no longer receives on_round calls)."""
        self._simulator._halt(self.node_id)


class NodeProgram:
    """Base class for per-node protocol logic. Subclasses override
    :meth:`on_start` and :meth:`on_round`."""

    def on_start(self, ctx: Context) -> None:
        """Round-0 initialization; may send messages."""

    def on_round(self, ctx: Context, inbox: List[Tuple[Node, Any]]) -> None:
        """Process the messages received this round ((sender, payload)
        pairs, deterministic order) and optionally send new ones."""
        raise NotImplementedError


class Simulator:
    """Synchronous executor for a NodeProgram per node.

    The simulator shares its :class:`CongestRun` ledger with the rest of
    the library, so node-program executions and primitive executions
    compose into one round count.

    Message delivery is owned by a :class:`~repro.netmodel.NetworkModel`:
    every queued message passes through ``network.schedule`` at the start
    of the round that would normally deliver it, and the model decides the
    delivery round(s) — or drops the message. The default ``reliable``
    model reproduces the clean synchronous channel exactly. An optional
    :class:`~repro.netmodel.TraceRecorder` captures per-message and
    per-round traffic events.

    Args:
        graph: the network topology.
        programs: one :class:`NodeProgram` per node.
        run: shared ledger (a fresh one is created when omitted).
        network: a network condition — a model instance, a canonical spec
            dict, a registered model name, or None for ``reliable``.
        trace: recorder for message/volume trace events.
        net_seed: seed for the network model's RNG (loss/delay draws).
    """

    def __init__(
        self,
        graph: WeightedGraph,
        programs: Dict[Node, NodeProgram],
        run: Optional[CongestRun] = None,
        network: Any = None,
        trace: Optional[TraceRecorder] = None,
        net_seed: int = 0,
    ) -> None:
        if set(programs) != set(graph.nodes):
            raise SimulationError("every node needs exactly one program")
        self.graph = graph
        self.programs = programs
        self.run = run if run is not None else CongestRun(graph)
        self.network: NetworkModel = build_network_model(network)
        self.network.bind(graph, random.Random(net_seed))
        self.trace = trace
        self.contexts = {v: Context(self, v) for v in graph.nodes}
        self.round = 0
        self._outbox: Dict[Tuple[Node, Node], Any] = {}
        #: Scheduled messages by absolute delivery round; entries keep
        #: their flush order, so delivery stays deterministic.
        self._in_flight: Dict[int, List[Tuple[Node, Node, Any]]] = {}
        self._halted: set = set()

    # -- internal hooks used by Context --------------------------------

    def _queue_message(self, sender: Node, receiver: Node, payload: Any) -> None:
        if not self.graph.has_edge(sender, receiver):
            raise CongestViolationError(
                f"{sender!r} cannot reach non-neighbor {receiver!r}"
            )
        key = (sender, receiver)
        if key in self._outbox:
            raise CongestViolationError(
                f"{sender!r} already sent to {receiver!r} this round"
            )
        self._outbox[key] = payload

    def _halt(self, node: Node) -> None:
        self._halted.add(node)

    # -- execution -------------------------------------------------------

    @property
    def all_halted(self) -> bool:
        """Every node has halted or been removed by the network model
        (crashed nodes count as terminated)."""
        if len(self._halted) == len(self.graph.nodes):
            return True
        if not self.network.removes_nodes:
            return False
        return all(
            v in self._halted or not self.network.alive(v)
            for v in self.graph.nodes
        )

    @property
    def has_pending(self) -> bool:
        """Messages queued or in flight."""
        return bool(self._outbox) or bool(self._in_flight)

    def start(self) -> None:
        """Run every program's on_start (round 0, local only)."""
        for v in self.graph.nodes:
            self.programs[v].on_start(self.contexts[v])

    def _flush_outbox(self) -> Dict[Tuple[Node, Node], int]:
        """Hand queued messages to the network model; returns the ledger
        traffic for this round.

        Deterministic order must depend on the (sender, receiver) key
        only, never on the payload — and on a type-stable total order,
        never on ``repr`` (under which ``repr(9) > repr(10)``).
        """
        traffic: Dict[Tuple[Node, Node], int] = {}
        sent = sorted(
            self._outbox.items(),
            key=lambda item: (node_sort_key(item[0][0]), node_sort_key(item[0][1])),
        )
        self._outbox = {}
        removes_nodes = self.network.removes_nodes
        for (sender, receiver), payload in sent:
            if removes_nodes and not self.network.alive(sender):
                # The sender crashed before its queued send hit the wire.
                self.network.stats["lost_sender_crashed"] += 1
                if self.trace is not None:
                    self.trace.record_lost(
                        self.round, sender, receiver, "sender_crashed"
                    )
                continue
            traffic[(sender, receiver)] = 1
            delivery_rounds = self.network.schedule(
                sender, receiver, payload, self.round
            )
            for when in delivery_rounds:
                if when < self.round:
                    raise SimulationError(
                        f"network model {self.network.name!r} scheduled a "
                        f"delivery in the past (round {when} < {self.round})"
                    )
                self._in_flight.setdefault(when, []).append(
                    (sender, receiver, payload)
                )
            if self.trace is not None:
                self.trace.record_send(
                    self.round, sender, receiver, payload, delivery_rounds
                )
        return traffic

    def step(self) -> bool:
        """Execute one synchronous round; returns False when quiescent
        (no messages queued or in flight, and/or all nodes halted)."""
        if not self.has_pending or self.all_halted:
            return False
        self.round += 1
        self.network.begin_round(self.round)
        traffic = self._flush_outbox()
        self.run.tick(traffic)
        due = self._in_flight.pop(self.round, [])
        inboxes: Dict[Node, List[Tuple[Node, Any]]] = {}
        delivered = dropped = bits = 0
        removes_nodes = self.network.removes_nodes
        for sender, receiver, payload in due:
            if removes_nodes and not self.network.alive(receiver):
                dropped += 1
                self.network.stats["lost_receiver_crashed"] += 1
                if self.trace is not None:
                    self.trace.record_lost(
                        self.round, sender, receiver, "receiver_crashed"
                    )
                continue
            inboxes.setdefault(receiver, []).append((sender, payload))
            delivered += 1
            bits += payload_bits(payload)
        for v in self.graph.nodes:
            if v in self._halted or (
                removes_nodes and not self.network.alive(v)
            ):
                continue
            ctx = self.contexts[v]
            ctx.round = self.round
            self.programs[v].on_round(ctx, inboxes.get(v, []))
        if self.trace is not None:
            self.trace.record_round(
                self.round, len(traffic), delivered, dropped, bits
            )
        return True

    def run_to_completion(self, max_rounds: int = 100_000) -> int:
        """start() + step() until quiescence; returns rounds executed.

        ``max_rounds`` is inclusive: quiescing in exactly ``max_rounds``
        rounds succeeds, and :class:`SimulationError` is raised as soon as
        the limit is reached with work still pending (never executing a
        ``max_rounds + 1``-th round).
        """
        self.start()
        rounds = 0
        while self.has_pending and not self.all_halted:
            if rounds >= max_rounds:
                raise SimulationError(
                    f"node programs did not quiesce in {max_rounds} rounds"
                )
            self.step()
            rounds += 1
        return rounds


class FloodMaxLeaderElection(NodeProgram):
    """Classic flooding leader election: everyone learns the max ID.

    A node re-floods only on improvement; the execution quiesces (no
    messages in flight) within eccentricity-many rounds, which ends the
    run — nodes never halt explicitly, since a halted node would miss a
    late-arriving wave. The winner is stored in ``leader``.
    """

    def __init__(self) -> None:
        self.leader: Optional[Node] = None

    def on_start(self, ctx: Context) -> None:
        self.leader = ctx.node_id
        for v in ctx.neighbors:
            ctx.send(v, self.leader)

    def on_round(self, ctx: Context, inbox: List[Tuple[Node, Any]]) -> None:
        improved = False
        for _, candidate in inbox:
            # A type-stable total order on IDs: integers compare
            # numerically (repr would elect 9 over 10).
            if node_sort_key(candidate) > node_sort_key(self.leader):
                self.leader = candidate
                improved = True
        if improved:
            for v in ctx.neighbors:
                ctx.send(v, self.leader)


class EchoBroadcast(NodeProgram):
    """Broadcast-with-acknowledgement (PIF) from a designated root."""

    def __init__(self, root: Node) -> None:
        self.root = root
        self.parent: Optional[Node] = None
        self.informed = False
        self.done = False
        self._pending: set = set()

    def on_start(self, ctx: Context) -> None:
        if ctx.node_id == self.root:
            self.informed = True
            self._pending = set(ctx.neighbors)
            for v in ctx.neighbors:
                ctx.send(v, "wave")
            if not self._pending:
                # Isolated root: the broadcast is complete immediately.
                self.done = True
                ctx.halt()

    def on_round(self, ctx: Context, inbox: List[Tuple[Node, Any]]) -> None:
        for sender, payload in inbox:
            if payload == "wave" and not self.informed:
                self.informed = True
                self.parent = sender
                self._pending = {
                    v for v in ctx.neighbors if v != sender
                }
                for v in self._pending:
                    ctx.send(v, "wave")
            elif payload in ("wave", "echo"):
                self._pending.discard(sender)
        if self.informed and not self._pending and not self.done:
            self.done = True
            if self.parent is not None:
                ctx.send(self.parent, "echo")
            ctx.halt()
