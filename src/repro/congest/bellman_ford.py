"""Distributed (multi-source) Bellman–Ford.

The deterministic algorithm computes Voronoi decompositions w.r.t. reduced
weights with active moats as sources (Lemma 4.8); the randomized algorithm
computes the Voronoi decomposition w.r.t. the sampled set S (Lemma G.2) and
the footnote-2 estimation of ``s``. All are instances of multi-source
Bellman–Ford: every source starts with an initial distance and a *tag* (the
region/center identity); in each round, nodes whose tentative distance
improved announce (distance, tag) to all neighbors.

The iteration count until stabilization is at most the maximum hop length of
a relevant least-weight path — the quantity ``s`` bounds — so the measured
round count is exactly the paper's cost for these steps.
"""

from fractions import Fraction
from typing import (
    AbstractSet,
    Callable,
    Dict,
    Hashable,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.congest.run import CongestRun
from repro.model.graph import Node, WeightedGraph

Number = object  # int or Fraction
Tag = Hashable


class BellmanFordResult:
    """Outcome of a multi-source Bellman–Ford execution.

    Attributes:
        dist: tentative distance per reached node (from its source).
        tag: the source tag (e.g. Voronoi center) per reached node.
        parent: predecessor towards the source (None at sources).
        iterations: number of relaxation rounds executed.
        stabilized: False when the run was cut off by ``max_iterations``.
    """

    def __init__(
        self,
        dist: Dict[Node, Number],
        tag: Dict[Node, Tag],
        parent: Dict[Node, Optional[Node]],
        iterations: int,
        stabilized: bool,
    ) -> None:
        self.dist = dist
        self.tag = tag
        self.parent = parent
        self.iterations = iterations
        self.stabilized = stabilized

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BellmanFordResult(reached={len(self.dist)}, "
            f"iterations={self.iterations}, stabilized={self.stabilized})"
        )


def bellman_ford(
    graph: WeightedGraph,
    sources: Mapping[Node, Tuple[Number, Tag]],
    run: CongestRun,
    edge_weight: Optional[Callable[[Node, Node], Number]] = None,
    blocked: Optional[AbstractSet[Node]] = None,
    max_iterations: Optional[int] = None,
) -> BellmanFordResult:
    """Run synchronous multi-source Bellman–Ford, charging real rounds.

    Args:
        graph: the network.
        sources: node → (initial distance, tag). Tags identify regions;
            ties between equal distances are broken by (repr(tag), repr
            (parent)) so the decomposition is deterministic, mirroring the
            paper's lexicographic tie-breaking.
        run: ledger to charge rounds/messages against.
        edge_weight: override for the relaxation weight of an edge (used
            with the *reduced* weights Ŵ_j of Definition 4.5); defaults to
            the graph weight. Must be non-negative; may return Fractions.
        blocked: nodes that neither adopt nor forward distances (frozen
            inactive regions; Lemma 4.8 leaves their trees untouched).
        max_iterations: stop (possibly unstabilized) after this many rounds
            — the footnote-2 "run for √n iterations" device.

    Returns a :class:`BellmanFordResult`.

    A :class:`~repro.perf.FastCongestRun` engages the compiled fast
    branch (cached neighbor tuples, memoized ``repr`` keys, batched
    ledger charging); a :class:`~repro.perf.npkernels.NumpyCongestRun`
    additionally runs the relaxation itself as scaled-int64 array
    kernels when the workload scales exactly, falling back to the
    compiled branch otherwise. Distances, tags, parents, iterations,
    and the ledger end state are identical on every branch
    (tests/test_perf.py, tests/test_npkernels.py).
    """
    blocked = blocked or frozenset()
    if getattr(run, "npc", None) is not None:
        from repro.perf.npkernels import bellman_ford_numpy

        result = bellman_ford_numpy(
            graph, sources, run, edge_weight, blocked, max_iterations
        )
        if result is not None:
            return result
    if edge_weight is None:
        edge_weight = graph.weight

    dist: Dict[Node, Number] = {}
    tag: Dict[Node, Tag] = {}
    parent: Dict[Node, Optional[Node]] = {}
    for v, (d0, source_tag) in sources.items():
        dist[v] = Fraction(d0)
        tag[v] = source_tag
        parent[v] = None

    # Sources never change their (distance, tag, parent): the paper's
    # decompositions extend existing trees without touching them
    # (Lemma 4.8: "the old trees are not touched, but simply extended").
    immutable = frozenset(sources)

    compiled = getattr(run, "compiled", None)
    changed: Set[Node] = set(sources)
    iterations = 0
    while changed:
        if max_iterations is not None and iterations >= max_iterations:
            return BellmanFordResult(dist, tag, parent, iterations, False)
        iterations += 1
        updates: Dict[Node, Tuple[Number, str, str, Tag, Node]] = {}
        if compiled is not None:
            reprs = compiled.repr_of
            tag_repr = compiled.tag_repr
            neighbors = compiled.neighbors
            announcers = sorted(changed, key=reprs.__getitem__)
            for u in announcers:
                du = dist[u]
                tu = tag[u]
                tu_repr = tag_repr(tu)
                u_repr = reprs[u]
                for v in neighbors[u]:
                    if v in blocked or v in immutable:
                        continue
                    cand_dist = du + edge_weight(u, v)
                    current = updates.get(v)
                    if current is None or (cand_dist, tu_repr, u_repr) < current[:3]:
                        updates[v] = (cand_dist, tu_repr, u_repr, tu, u)
            run.tick()
            out_counter = compiled.out_counter
            degree = compiled.degree
            for u in announcers:
                run.charge_counter(out_counter[u], degree[u])
        else:
            traffic: Dict[Tuple[Node, Node], int] = {}
            for u in sorted(changed, key=repr):
                for v in graph.neighbors(u):
                    traffic[(u, v)] = 1
                    if v in blocked or v in immutable:
                        continue
                    w = edge_weight(u, v)
                    cand_dist = dist[u] + w
                    cand_key = (cand_dist, repr(tag[u]), repr(u), tag[u], u)
                    current = updates.get(v)
                    if current is None or cand_key[:3] < current[:3]:
                        updates[v] = cand_key
            run.tick(traffic)
        changed = set()
        cur_tag_repr = compiled.tag_repr if compiled is not None else repr
        for v, (cand_dist, new_tag_repr, _, new_tag, new_parent) in (
            updates.items()
        ):
            if v in dist:
                # Strictly smaller (dist, tag) only — comparing the parent
                # as well would let equal-distance updates flip parents
                # forever across zero-weight (fully covered) edges.
                cur_key = (dist[v], cur_tag_repr(tag[v]))
                if (cand_dist, new_tag_repr) >= cur_key:
                    continue
            dist[v] = cand_dist
            tag[v] = new_tag
            parent[v] = new_parent
            changed.add(v)
    return BellmanFordResult(dist, tag, parent, iterations, True)
