"""CONGEST-model execution substrate.

The paper's algorithms are stated for the CONGEST(log n) model (Section 2):
synchronous rounds; per round each node may send one O(log n)-bit message to
each neighbor. This package provides

* :class:`~repro.congest.run.CongestRun` — the round/message ledger every
  primitive charges against; it enforces the per-edge bandwidth budget and
  records per-edge traffic (used by the lower-bound harness to meter the
  Alice–Bob cut),
* message-level communication primitives used as building blocks by all
  algorithms: BFS-tree construction, (pipelined) broadcast and convergecast
  over a tree, pipelined filtered upcast (the Kruskal-style candidate-merge
  collection of Lemma 4.14), and distributed Bellman–Ford (Lemma 4.8).

Round counts reported by the library are the number of simulated rounds these
primitives actually execute, so the complexity experiments measure the model
quantity the paper's theorems bound.
"""

from repro.congest.run import CongestRun
from repro.congest.bfs import BFSTree, build_bfs_tree
from repro.congest.broadcast import (
    broadcast_items,
    convergecast_aggregate,
    upcast_items,
)
from repro.congest.bellman_ford import BellmanFordResult, bellman_ford
from repro.congest.pipeline import MergeItem, pipelined_filtered_upcast
from repro.congest.transforms import (
    distributed_minimalize,
    distributed_requests_to_components,
)
from repro.congest.simulator import (
    Context,
    EchoBroadcast,
    FloodMaxLeaderElection,
    NodeProgram,
    Simulator,
)

__all__ = [
    "CongestRun",
    "BFSTree",
    "build_bfs_tree",
    "broadcast_items",
    "convergecast_aggregate",
    "upcast_items",
    "BellmanFordResult",
    "bellman_ford",
    "MergeItem",
    "pipelined_filtered_upcast",
    "distributed_requests_to_components",
    "distributed_minimalize",
    "Simulator",
    "NodeProgram",
    "Context",
    "FloodMaxLeaderElection",
    "EchoBroadcast",
]
