"""Pipelined, filtered upcast of candidate merges (Lemma 4.14 machinery).

The deterministic algorithm repeatedly collects, at a BFS root, the ascending
sequence of *candidate merges* while discarding those that close cycles in
the candidate multigraph — exactly the MST edge-elimination procedure of
Garay–Kutten–Peleg [11, 16] that the paper re-uses:

1. each node scans its buffer in ascending order and deletes merges closing
   a cycle with the union of the already fixed forest F'_c and the smaller
   merges it currently believes in;
2. it announces the least-weight unannounced surviving merge to its parent;
3. buffers accumulate received merges.

Pipelining guarantees that after ``depth + i`` rounds the ``i`` smallest
surviving merges have reached the root, giving O(D + |result|) rounds overall
(Corollary 4.16 additionally stops early at a phase boundary, which the
``stop_predicate`` hook implements).
"""

from bisect import insort
from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.congest.bfs import BFSTree
from repro.congest.run import CongestRun
from repro.model.graph import Node
from repro.perf.profiler import maybe_span
from repro.util import UnionFind


class MergeItem:
    """A candidate merge flowing through the filtered upcast.

    Attributes:
        key: a totally ordered tuple — for the paper's order this is
            (phase index, reduced weight, tie-break identifiers), cf.
            Lemma 4.13.
        a, b: the two entities (terminals / moat leaders) the merge joins;
            used for cycle filtering.
        payload: opaque data carried along (e.g. the inducing edge and path
            information); not part of the order.
    """

    __slots__ = ("key", "a", "b", "payload")

    def __init__(
        self, key: tuple, a: Hashable, b: Hashable, payload: object = None
    ) -> None:
        self.key = key
        self.a = a
        self.b = b
        self.payload = payload

    def __lt__(self, other: "MergeItem") -> bool:
        return self.key < other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MergeItem) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MergeItem(key={self.key!r}, {self.a!r}–{self.b!r})"


def _kruskal_filter(
    items: Sequence[MergeItem],
    base_component: Mapping[Hashable, Hashable],
    presorted: bool = False,
) -> List[MergeItem]:
    """Ascending Kruskal scan: keep merges that do not close cycles.

    ``base_component`` maps each entity to its connectivity component under
    the already-fixed forest F'_c (entities absent from the mapping are their
    own components). ``presorted`` skips the ascending sort when the caller
    maintains the buffer in key order (the compiled-ledger fast path) —
    item keys are unique within a buffer, so a maintained order and a
    fresh stable sort are the same sequence.
    """
    uf = UnionFind()
    alive: List[MergeItem] = []
    for item in items if presorted else sorted(items):
        rep_a = base_component.get(item.a, item.a)
        rep_b = base_component.get(item.b, item.b)
        if uf.union(rep_a, rep_b):
            alive.append(item)
    return alive


def pipelined_filtered_upcast(
    tree: BFSTree,
    local_items: Dict[Node, List[MergeItem]],
    base_component: Mapping[Hashable, Hashable],
    run: CongestRun,
    stop_predicate: Optional[Callable[[List[MergeItem]], bool]] = None,
) -> List[MergeItem]:
    """Collect the ascending cycle-free merge sequence at the root.

    Args:
        tree: BFS tree used for the convergecast.
        local_items: candidate merges initially known per node (Ec(u)).
        base_component: entity → component under the fixed forest F'_c;
            merges internal to one component are filtered immediately.
        run: ledger to charge rounds against.
        stop_predicate: called on each *finalized* ascending prefix of
            accepted merges; once it returns True the collection stops and
            exactly that prefix is returned (Corollary 4.16's early stop at
            the end of a merge phase). Prefixes are finalized using the
            pipelining invariant: after depth + i rounds the i smallest
            surviving merges are at the root.

    Returns the accepted merges in ascending order.

    A :class:`~repro.perf.FastCongestRun` engages the compiled fast
    branch: per-node buffers are maintained in ascending key order
    (``insort`` on arrival) so the Kruskal filter never re-sorts, and
    ledger charges use precompiled canonical edges. Profiling showed the
    per-round re-sorts were the single hottest part of the whole paper
    pipeline; the accepted merges, round counts, and ledger end state
    are identical either way (tests/test_perf.py).
    """
    compiled = getattr(run, "compiled", None)
    fast = compiled is not None
    profiler = getattr(run, "profiler", None)
    with maybe_span(profiler, "pipelined-upcast"):
        return _pipelined_filtered_upcast(
            tree, local_items, base_component, run, stop_predicate, fast,
            compiled,
        )


def _pipelined_filtered_upcast(
    tree: BFSTree,
    local_items: Dict[Node, List[MergeItem]],
    base_component: Mapping[Hashable, Hashable],
    run: CongestRun,
    stop_predicate: Optional[Callable[[List[MergeItem]], bool]],
    fast: bool,
    compiled,
) -> List[MergeItem]:
    buffers: Dict[Node, List[MergeItem]] = {v: [] for v in tree.parent}
    announced: Dict[Node, Set[tuple]] = {v: set() for v in tree.parent}
    seen: Dict[Node, Set[tuple]] = {v: set() for v in tree.parent}
    for v, items in local_items.items():
        for item in items:
            if item.key not in seen[v]:
                seen[v].add(item.key)
                buffers[v].append(item)
    if fast:
        for buffer in buffers.values():
            buffer.sort()
        # A buffer only changes through arrivals and base_component is
        # fixed for the whole collection, so each node's filtered list
        # is cached and recomputed only when its buffer changed — most
        # buffers go quiet after a few rounds. scan_from[v] skips the
        # already-announced prefix of an unchanged filtered list (the
        # announced set only grows; it resets on recompute).
        alive_cache: Dict[Node, List[MergeItem]] = {}
        scan_from: Dict[Node, int] = {}

        def get_alive(v: Node) -> List[MergeItem]:
            cached = alive_cache.get(v)
            if cached is None:
                cached = alive_cache[v] = _kruskal_filter(
                    buffers[v], base_component, presorted=True
                )
                scan_from[v] = 0
            return cached
    else:
        def get_alive(v: Node) -> List[MergeItem]:
            return _kruskal_filter(buffers[v], base_component)

    rounds_in_primitive = 0
    while True:
        # Root-side early stop on the finalized prefix.
        root_alive = get_alive(tree.root)
        finalized = max(0, rounds_in_primitive - tree.depth)
        prefix = root_alive[: min(finalized, len(root_alive))]
        if stop_predicate is not None:
            for cut in range(1, len(prefix) + 1):
                if stop_predicate(prefix[:cut]):
                    run.charge_rounds(
                        tree.depth, "phase-end stop broadcast (Cor. 4.16)"
                    )
                    return prefix[:cut]

        traffic: Dict[Tuple[Node, Node], int] = {}
        charges: List = []
        arrivals: List[Tuple[Node, MergeItem]] = []
        for v in tree.parent:
            if v == tree.root:
                continue
            alive = get_alive(v)
            candidate = None
            if fast:
                index = scan_from[v]
                alive_count = len(alive)
                while index < alive_count:
                    item = alive[index]
                    if item.key not in announced[v]:
                        candidate = item
                        break
                    index += 1
                scan_from[v] = index
            else:
                for item in alive:
                    if item.key not in announced[v]:
                        candidate = item
                        break
            if candidate is None:
                continue
            parent = tree.parent[v]
            assert parent is not None
            announced[v].add(candidate.key)
            if fast:
                charges.append(compiled.canon[(v, parent)])
            else:
                traffic[(v, parent)] = 1
            arrivals.append((parent, candidate))

        if not arrivals:
            # Sends depend only on buffers and the announced sets, and
            # buffers change only through sends — one quiet round means the
            # system is quiescent. Charge O(depth) for the convergecast that
            # detects this (Lemma 4.14's termination detection).
            run.charge_rounds(
                tree.depth, "termination detection (Lemma 4.14)"
            )
            final = get_alive(tree.root)
            if stop_predicate is not None:
                for cut in range(1, len(final) + 1):
                    if stop_predicate(final[:cut]):
                        return final[:cut]
            return final

        rounds_in_primitive += 1
        if fast:
            run.tick()
            run.charge_messages(charges)
            for parent, item in arrivals:
                if item.key not in seen[parent]:
                    seen[parent].add(item.key)
                    insort(buffers[parent], item)
                    alive_cache.pop(parent, None)
        else:
            run.tick(traffic)
            for parent, item in arrivals:
                if item.key not in seen[parent]:
                    seen[parent].add(item.key)
                    buffers[parent].append(item)
