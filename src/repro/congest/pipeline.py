"""Pipelined, filtered upcast of candidate merges (Lemma 4.14 machinery).

The deterministic algorithm repeatedly collects, at a BFS root, the ascending
sequence of *candidate merges* while discarding those that close cycles in
the candidate multigraph — exactly the MST edge-elimination procedure of
Garay–Kutten–Peleg [11, 16] that the paper re-uses:

1. each node scans its buffer in ascending order and deletes merges closing
   a cycle with the union of the already fixed forest F'_c and the smaller
   merges it currently believes in;
2. it announces the least-weight unannounced surviving merge to its parent;
3. buffers accumulate received merges.

Pipelining guarantees that after ``depth + i`` rounds the ``i`` smallest
surviving merges have reached the root, giving O(D + |result|) rounds overall
(Corollary 4.16 additionally stops early at a phase boundary, which the
``stop_predicate`` hook implements).
"""

from typing import (
    Callable,
    Dict,
    Hashable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.congest.bfs import BFSTree
from repro.congest.run import CongestRun
from repro.model.graph import Node
from repro.util import UnionFind


class MergeItem:
    """A candidate merge flowing through the filtered upcast.

    Attributes:
        key: a totally ordered tuple — for the paper's order this is
            (phase index, reduced weight, tie-break identifiers), cf.
            Lemma 4.13.
        a, b: the two entities (terminals / moat leaders) the merge joins;
            used for cycle filtering.
        payload: opaque data carried along (e.g. the inducing edge and path
            information); not part of the order.
    """

    __slots__ = ("key", "a", "b", "payload")

    def __init__(
        self, key: tuple, a: Hashable, b: Hashable, payload: object = None
    ) -> None:
        self.key = key
        self.a = a
        self.b = b
        self.payload = payload

    def __lt__(self, other: "MergeItem") -> bool:
        return self.key < other.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MergeItem) and self.key == other.key

    def __hash__(self) -> int:
        return hash(self.key)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MergeItem(key={self.key!r}, {self.a!r}–{self.b!r})"


def _kruskal_filter(
    items: Sequence[MergeItem],
    base_component: Mapping[Hashable, Hashable],
) -> List[MergeItem]:
    """Ascending Kruskal scan: keep merges that do not close cycles.

    ``base_component`` maps each entity to its connectivity component under
    the already-fixed forest F'_c (entities absent from the mapping are their
    own components).
    """
    uf = UnionFind()
    alive: List[MergeItem] = []
    for item in sorted(items):
        rep_a = base_component.get(item.a, item.a)
        rep_b = base_component.get(item.b, item.b)
        if uf.union(rep_a, rep_b):
            alive.append(item)
    return alive


def pipelined_filtered_upcast(
    tree: BFSTree,
    local_items: Dict[Node, List[MergeItem]],
    base_component: Mapping[Hashable, Hashable],
    run: CongestRun,
    stop_predicate: Optional[Callable[[List[MergeItem]], bool]] = None,
) -> List[MergeItem]:
    """Collect the ascending cycle-free merge sequence at the root.

    Args:
        tree: BFS tree used for the convergecast.
        local_items: candidate merges initially known per node (Ec(u)).
        base_component: entity → component under the fixed forest F'_c;
            merges internal to one component are filtered immediately.
        run: ledger to charge rounds against.
        stop_predicate: called on each *finalized* ascending prefix of
            accepted merges; once it returns True the collection stops and
            exactly that prefix is returned (Corollary 4.16's early stop at
            the end of a merge phase). Prefixes are finalized using the
            pipelining invariant: after depth + i rounds the i smallest
            surviving merges are at the root.

    Returns the accepted merges in ascending order.
    """
    buffers: Dict[Node, List[MergeItem]] = {v: [] for v in tree.parent}
    announced: Dict[Node, Set[tuple]] = {v: set() for v in tree.parent}
    seen: Dict[Node, Set[tuple]] = {v: set() for v in tree.parent}
    for v, items in local_items.items():
        for item in items:
            if item.key not in seen[v]:
                seen[v].add(item.key)
                buffers[v].append(item)

    rounds_in_primitive = 0
    while True:
        # Root-side early stop on the finalized prefix.
        root_alive = _kruskal_filter(buffers[tree.root], base_component)
        finalized = max(0, rounds_in_primitive - tree.depth)
        prefix = root_alive[: min(finalized, len(root_alive))]
        if stop_predicate is not None:
            for cut in range(1, len(prefix) + 1):
                if stop_predicate(prefix[:cut]):
                    run.charge_rounds(
                        tree.depth, "phase-end stop broadcast (Cor. 4.16)"
                    )
                    return prefix[:cut]

        traffic: Dict[Tuple[Node, Node], int] = {}
        arrivals: List[Tuple[Node, MergeItem]] = []
        for v in tree.parent:
            if v == tree.root:
                continue
            alive = _kruskal_filter(buffers[v], base_component)
            candidate = None
            for item in alive:
                if item.key not in announced[v]:
                    candidate = item
                    break
            if candidate is None:
                continue
            parent = tree.parent[v]
            assert parent is not None
            announced[v].add(candidate.key)
            traffic[(v, parent)] = 1
            arrivals.append((parent, candidate))

        if not traffic:
            # Sends depend only on buffers and the announced sets, and
            # buffers change only through sends — one quiet round means the
            # system is quiescent. Charge O(depth) for the convergecast that
            # detects this (Lemma 4.14's termination detection).
            run.charge_rounds(
                tree.depth, "termination detection (Lemma 4.14)"
            )
            final = _kruskal_filter(buffers[tree.root], base_component)
            if stop_predicate is not None:
                for cut in range(1, len(final) + 1):
                    if stop_predicate(final[:cut]):
                        return final[:cut]
            return final

        rounds_in_primitive += 1
        run.tick(traffic)
        for parent, item in arrivals:
            if item.key not in seen[parent]:
                seen[parent].add(item.key)
                buffers[parent].append(item)
