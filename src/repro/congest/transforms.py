"""Distributed input transforms (Lemmas 2.3 and 2.4).

* :func:`distributed_requests_to_components` — DSF-CR → DSF-IC in O(D + t)
  rounds: connection requests that do not close cycles in the demand forest
  are piped up a BFS tree (at most t − 1 of them survive), the root
  broadcasts the surviving demand forest, and every node locally computes
  the demand components and their canonical labels.
* :func:`distributed_minimalize` — DSF-IC → minimal DSF-IC in O(D + k)
  rounds: at most two (terminal, label) witnesses per label are piped up the
  tree, the root identifies labels with ≥ 2 terminals and broadcasts them.

Outputs are identical to the centralized transforms of
:mod:`repro.model.transforms`; the tests assert this.
"""

from typing import Dict, Hashable, List, Set, Tuple

from repro.congest.bfs import BFSTree, build_bfs_tree
from repro.congest.broadcast import broadcast_items
from repro.congest.run import CongestRun
from repro.model.graph import Node
from repro.model.instance import (
    ConnectionRequestInstance,
    SteinerForestInstance,
)
from repro.util import UnionFind


def distributed_requests_to_components(
    instance: ConnectionRequestInstance,
    run: CongestRun,
    tree: BFSTree = None,
) -> SteinerForestInstance:
    """Transform DSF-CR to an equivalent DSF-IC instance (Lemma 2.3)."""
    graph = instance.graph
    if tree is None:
        tree = build_bfs_tree(graph, run)

    # Upcast demand pairs, filtering cycle-closing ones en route. Each node
    # keeps a union-find of the pairs it has forwarded; at most t-1 pairs
    # survive anywhere, so with pipelining this takes O(depth + t) rounds.
    buffers: Dict[Node, List[Tuple[Node, Node]]] = {v: [] for v in tree.parent}
    forwarded: Dict[Node, Set[Tuple[Node, Node]]] = {
        v: set() for v in tree.parent
    }
    for v, targets in instance.requests.items():
        for w in sorted(targets, key=repr):
            pair = (v, w) if repr(v) <= repr(w) else (w, v)
            if pair not in buffers[v]:
                buffers[v].append(pair)
    while True:
        traffic: Dict[Tuple[Node, Node], int] = {}
        arrivals: List[Tuple[Node, Tuple[Node, Node]]] = []
        for v in tree.parent:
            if v == tree.root:
                continue
            # Re-derive the acyclic sub-list each round (deterministic).
            uf = UnionFind()
            candidate = None
            for pair in sorted(buffers[v], key=repr):
                if not uf.union(*pair):
                    continue
                if pair not in forwarded[v]:
                    candidate = pair
                    break
            if candidate is None:
                continue
            parent = tree.parent[v]
            assert parent is not None
            forwarded[v].add(candidate)
            traffic[(v, parent)] = 1
            arrivals.append((parent, candidate))
        if not traffic:
            run.charge_rounds(tree.depth, "termination detection")
            break
        run.tick(traffic)
        for parent, pair in arrivals:
            if pair not in buffers[parent]:
                buffers[parent].append(pair)

    # The root's acyclic demand forest determines the components.
    uf_root = UnionFind()
    surviving: List[Tuple[Node, Node]] = []
    for pair in sorted(buffers[tree.root], key=repr):
        if uf_root.union(*pair):
            surviving.append(pair)
    broadcast_items(tree, surviving, run)

    # Local computation at every node (identical everywhere).
    uf = UnionFind()
    for u, w in surviving:
        uf.union(u, w)
    labels: Dict[Node, Hashable] = {}
    for group in uf.sets():
        label = min(group, key=repr)
        for v in group:
            labels[v] = label
    return SteinerForestInstance(graph, labels)


def distributed_minimalize(
    instance: SteinerForestInstance,
    run: CongestRun,
    tree: BFSTree = None,
) -> SteinerForestInstance:
    """Drop singleton input components distributively (Lemma 2.4)."""
    graph = instance.graph
    if tree is None:
        tree = build_bfs_tree(graph, run)

    # Pipe up at most two (label, terminal) witnesses per label.
    buffers: Dict[Node, List[Tuple[Hashable, Node]]] = {
        v: [] for v in tree.parent
    }
    forwarded: Dict[Node, Set[Tuple[Hashable, Node]]] = {
        v: set() for v in tree.parent
    }
    for v, label in instance.labels.items():
        buffers[v].append((label, v))
    while True:
        traffic: Dict[Tuple[Node, Node], int] = {}
        arrivals: List[Tuple[Node, Tuple[Hashable, Node]]] = []
        for v in tree.parent:
            if v == tree.root:
                continue
            sent_per_label: Dict[Hashable, int] = {}
            for item in forwarded[v]:
                sent_per_label[item[0]] = sent_per_label.get(item[0], 0) + 1
            candidate = None
            for item in sorted(buffers[v], key=repr):
                if item in forwarded[v]:
                    continue
                if sent_per_label.get(item[0], 0) >= 2:
                    continue  # two witnesses suffice; ignore the rest
                candidate = item
                break
            if candidate is None:
                continue
            parent = tree.parent[v]
            assert parent is not None
            forwarded[v].add(candidate)
            traffic[(v, parent)] = 1
            arrivals.append((parent, candidate))
        if not traffic:
            run.charge_rounds(tree.depth, "termination detection")
            break
        run.tick(traffic)
        for parent, item in arrivals:
            if item not in buffers[parent]:
                buffers[parent].append(item)

    witnesses: Dict[Hashable, Set[Node]] = {}
    for label, v in buffers[tree.root]:
        witnesses.setdefault(label, set()).add(v)
    plural_labels = sorted(
        (label for label, vs in witnesses.items() if len(vs) >= 2),
        key=repr,
    )
    broadcast_items(tree, plural_labels, run)

    keep = set(plural_labels)
    labels = {
        v: label for v, label in instance.labels.items() if label in keep
    }
    return SteinerForestInstance(graph, labels)
