"""The round/message ledger for CONGEST executions.

Every communication primitive charges rounds and per-edge messages against a
:class:`CongestRun`. A message models one O(log n)-bit CONGEST message; the
ledger enforces that no primitive sends more than one message per edge
direction per round (raising :class:`CongestViolationError` otherwise) and
keeps per-edge traffic counters so experiments can meter the traffic across a
graph cut (the Alice–Bob cut of the Section 3 lower-bound gadgets).
"""

import math
from collections import Counter
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.exceptions import CongestViolationError, SimulationError
from repro.model.graph import Edge, Node, WeightedGraph, canonical_edge

#: A directed message count: (sender, receiver) -> number of messages.
DirectedTraffic = Mapping[Tuple[Node, Node], int]


def non_edge_violation(sender: Node, receiver: Node) -> CongestViolationError:
    """The canonical non-edge traffic error (shared with the fast
    ledger in :mod:`repro.perf.fastpath` so the wording cannot drift)."""
    return CongestViolationError(
        f"message over non-edge ({sender!r}, {receiver!r})"
    )


def per_direction_violation(
    count: int, sender: Node, receiver: Node
) -> CongestViolationError:
    """The canonical CONGEST per-direction bound error (shared with the
    fast ledger)."""
    return CongestViolationError(
        f"{count} messages from {sender!r} to {receiver!r} "
        "in one round (CONGEST allows 1)"
    )


class CongestRun:
    """Accumulates rounds, messages and per-edge traffic for one execution.

    Args:
        graph: the network the algorithm runs on.
        bandwidth_bits: message size B in bits; defaults to ⌈log₂ n⌉ · 4,
            a concrete stand-in for the model's c·log n bound (identifiers,
            weights, and labels each fit in O(log n) bits).
        max_rounds: safety limit; exceeding it raises SimulationError,
            which usually indicates a non-terminating algorithm.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        bandwidth_bits: Optional[int] = None,
        max_rounds: int = 10_000_000,
    ) -> None:
        self.graph = graph
        if bandwidth_bits is None:
            bandwidth_bits = 4 * max(1, math.ceil(math.log2(max(2, graph.num_nodes))))
        self.bandwidth_bits = bandwidth_bits
        self.max_rounds = max_rounds
        self.rounds = 0
        self.messages = 0
        self.edge_messages: Counter = Counter()
        self.phase_rounds: Dict[str, int] = {}
        self._phase: Optional[str] = None
        #: Optional :class:`repro.perf.PhaseProfiler` observing this run
        #: (attach via ``profiler.attach(run)``). When None — the default
        #: — charging pays exactly one attribute check and nothing else,
        #: so profiling-off executions are byte-identical to pre-profiler
        #: ones (pinned by tests/test_perf.py).
        self.profiler: Optional[Any] = None

    # ------------------------------------------------------------------
    # Phases (for per-step round breakdowns in experiments)
    # ------------------------------------------------------------------

    def set_phase(self, name: Optional[str]) -> None:
        """Attribute subsequently charged rounds to ``name``."""
        self._phase = name
        if self.profiler is not None:
            self.profiler.switch_phase(name)

    def _attribute(self, rounds: int) -> None:
        if self._phase is not None:
            self.phase_rounds[self._phase] = (
                self.phase_rounds.get(self._phase, 0) + rounds
            )
        if self.profiler is not None:
            self.profiler.add_rounds(rounds)

    # ------------------------------------------------------------------
    # Charging
    # ------------------------------------------------------------------

    def _advance_round(self) -> None:
        """Shared round preamble: count the round, attribute it (phase +
        profiler), enforce ``max_rounds``. Used by both this ledger and
        the compiled fast ledger so the bookkeeping cannot diverge."""
        self.rounds += 1
        self._attribute(1)
        if self.rounds > self.max_rounds:
            raise SimulationError(
                f"exceeded max_rounds={self.max_rounds}; "
                "the algorithm appears not to terminate"
            )

    def tick(self, traffic: Optional[DirectedTraffic] = None) -> None:
        """Advance one synchronous round, delivering ``traffic`` messages.

        ``traffic`` maps directed node pairs (sender, receiver) to message
        counts; each count must be ≤ 1 per the CONGEST model, and the pair
        must be an edge of the graph.
        """
        self._advance_round()
        if traffic:
            charged = 0
            for (sender, receiver), count in traffic.items():
                if count == 0:
                    continue
                if not self.graph.has_edge(sender, receiver):
                    raise non_edge_violation(sender, receiver)
                if count > 1:
                    raise per_direction_violation(count, sender, receiver)
                self.messages += count
                self.edge_messages[canonical_edge(sender, receiver)] += count
                charged += count
            if self.profiler is not None and charged:
                self.profiler.add_messages(charged)

    def charge_messages(self, canonical_edges: Iterable[Edge]) -> None:
        """Batch-charge pre-validated traffic for the current round.

        One message per entry; each entry must already be a canonical
        edge of the graph with at most one occurrence per direction this
        round (the caller — e.g. the flat-array simulation backend —
        guarantees this structurally, so re-validating per message would
        only re-pay the cost :meth:`tick` exists to amortize). Keeps the
        charging rules (message count + per-edge counters) owned by the
        ledger, with the same end state as ``tick(traffic)``.
        """
        count = 0
        for edge in canonical_edges:
            self.edge_messages[edge] += 1
            count += 1
        self.messages += count
        if self.profiler is not None and count:
            self.profiler.add_messages(count)

    def charge_counter(self, counter: Mapping[Edge, int], count: int) -> None:
        """Batch-charge a precompiled canonical-edge multiset for the
        current round.

        ``counter`` maps canonical graph edges to per-edge message
        counts summing to ``count``; like :meth:`charge_messages` the
        caller (the :mod:`repro.perf.fastpath` compiled topology)
        guarantees the CONGEST per-direction bound structurally, so the
        ledger applies the whole delta in one C-speed ``Counter.update``
        instead of one Python-level check per message. End state is
        identical to ``tick(traffic)`` with the equivalent directed
        traffic.
        """
        self.edge_messages.update(counter)
        self.messages += count
        if self.profiler is not None and count:
            self.profiler.add_messages(count)

    def charge_rounds(self, rounds: int, reason: str = "") -> None:
        """Analytically charge ``rounds`` rounds without per-edge traffic.

        Used for steps whose congestion-freeness the paper proves but whose
        message-level simulation would be redundant (e.g. time-multiplexing
        O(log n) independent executions: we simulate each execution and
        multiply the rounds here). The ``reason`` documents the charge.
        """
        if rounds < 0:
            raise ValueError("cannot charge negative rounds")
        self.rounds += rounds
        self._attribute(rounds)
        if self.rounds > self.max_rounds:
            raise SimulationError(
                f"exceeded max_rounds={self.max_rounds} while charging "
                f"{rounds} rounds ({reason})"
            )

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------

    @property
    def bits(self) -> int:
        """Total bits sent, counting each message at the full budget B."""
        return self.messages * self.bandwidth_bits

    def cut_messages(self, cut_edges: Iterable[Edge]) -> int:
        """Messages that crossed the given edge cut."""
        return sum(
            self.edge_messages[canonical_edge(u, v)] for u, v in cut_edges
        )

    def cut_bits(self, cut_edges: Iterable[Edge]) -> int:
        """Bits that crossed the given edge cut (messages × B)."""
        return self.cut_messages(cut_edges) * self.bandwidth_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CongestRun(rounds={self.rounds}, messages={self.messages}, "
            f"B={self.bandwidth_bits})"
        )
