"""Unified telemetry: run manifests, structured spans/metrics, sinks.

The paper's headline claims — Õ(√n + D) rounds and bounded per-edge
congestion — are *observability* claims; this package is the single
structured layer that measures them across every execution surface:

* :mod:`repro.telemetry.manifest` — :class:`RunManifest`, the per-run
  identity (run id, workload hash, backend/network, git describe) every
  stream attaches to.
* :mod:`repro.telemetry.core` — :class:`Telemetry`, the event bus:
  hierarchical spans, typed counters/gauges/histograms, and the
  :class:`LedgerBridge` that narrates :class:`~repro.congest.run.
  CongestRun` phases onto the bus through the existing profiler hook.
* :mod:`repro.telemetry.sinks` — pluggable consumers: JSONL file,
  in-memory, human console (with the engine's historical progress
  strings as the compat rendering), and the bounded :class:`RingSink`.
* :mod:`repro.telemetry.expose` — Prometheus-style text exposition of
  a metrics snapshot (``repro metrics --prom``).
* :mod:`repro.telemetry.flight` — the crash :class:`FlightRecorder`:
  a ring of recent events auto-dumped to JSONL on pool rebuilds,
  terminal job failures, daemon errors, and SIGTERM drain.
* :mod:`repro.telemetry.summary` — per-phase rounds/messages/bits
  tables and logical-metric diffs over event streams (``repro trace``).
* :mod:`repro.telemetry.report_html` — self-contained HTML run reports
  (manifest, phase table, congestion heatmap, metrics snapshot) from
  any captured stream (``repro report --html``).
* :mod:`repro.telemetry.benchcheck` — the ``repro bench check``
  regression gate over the committed BENCH_*.json trajectory.

Invariant (pinned in ``tests/test_telemetry.py``): telemetry observes
and never participates — with the bus detached, results, ledger
accounting, and result-store cache keys are byte-identical to a
pre-telemetry run, and nothing in a manifest feeds a job identity.
"""

from repro.telemetry.benchcheck import (
    BenchCheckReport,
    CheckRow,
    check_bench_file,
    check_benches,
)
from repro.telemetry.core import LedgerBridge, Telemetry
from repro.telemetry.expose import metric_name, render_json, render_prometheus
from repro.telemetry.flight import FlightRecorder, latest_dump
from repro.telemetry.manifest import (
    TELEMETRY_SCHEMA,
    RunManifest,
    git_describe,
    new_run_id,
)
from repro.telemetry.metrics import (
    BUCKET_BOUNDS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.report_html import render_html_report
from repro.telemetry.sinks import (
    CallbackSink,
    ConsoleSink,
    JsonlSink,
    MemorySink,
    RingSink,
    Sink,
    encode_event,
    format_event,
    format_progress,
    read_events,
)
from repro.telemetry.summary import (
    diff_streams,
    manifest_of,
    phase_rows,
    render_summary,
    totals_of,
)

__all__ = [
    "BUCKET_BOUNDS",
    "BenchCheckReport",
    "CallbackSink",
    "CheckRow",
    "ConsoleSink",
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "LedgerBridge",
    "MemorySink",
    "MetricsRegistry",
    "RingSink",
    "RunManifest",
    "Sink",
    "TELEMETRY_SCHEMA",
    "Telemetry",
    "check_bench_file",
    "check_benches",
    "diff_streams",
    "encode_event",
    "format_event",
    "format_progress",
    "git_describe",
    "latest_dump",
    "manifest_of",
    "metric_name",
    "new_run_id",
    "phase_rows",
    "read_events",
    "render_html_report",
    "render_json",
    "render_prometheus",
    "render_summary",
    "totals_of",
]
