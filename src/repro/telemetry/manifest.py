"""Per-run manifests: the identity every telemetry stream attaches to.

A :class:`RunManifest` is the first event on every telemetry bus: one
JSON-able record naming the run (``run_id``), what it executed
(workload description and content hash), how (backend and network
specs), and where (git describe, python, platform). Every subsequent
event on the bus carries the manifest's ``run_id``, so a directory of
JSONL streams from many runs stays attributable — the precondition for
``repro trace diff`` and for the record/replay direction in the
ROADMAP.

Manifests are observability metadata only: nothing in them feeds job
identities or cache keys, so attaching telemetry can never change what
the engine computes or caches (pinned in ``tests/test_telemetry.py``).
"""

import os
import platform
import subprocess
import sys
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

#: Version of the telemetry event/manifest format (independent of the
#: result store's SCHEMA_VERSION; bump on incompatible event changes).
TELEMETRY_SCHEMA = 1

_GIT_DESCRIBE: Optional[str] = None
_GIT_DESCRIBE_KNOWN = False


def git_describe() -> Optional[str]:
    """``git describe --always --dirty`` of the source tree, or None.

    Cached per process: manifests are created once per run, but a suite
    run creates one per spec and the subprocess would dominate.
    """
    global _GIT_DESCRIBE, _GIT_DESCRIBE_KNOWN
    if not _GIT_DESCRIBE_KNOWN:
        _GIT_DESCRIBE_KNOWN = True
        try:
            _GIT_DESCRIBE = subprocess.run(
                ["git", "describe", "--always", "--dirty"],
                cwd=os.path.dirname(os.path.abspath(__file__)),
                capture_output=True,
                text=True,
                timeout=5,
                check=True,
            ).stdout.strip() or None
        except Exception:
            _GIT_DESCRIBE = None
    return _GIT_DESCRIBE


def new_run_id() -> str:
    """A fresh run identifier: sortable timestamp + random suffix."""
    stamp = time.strftime("%Y%m%dT%H%M%S", time.gmtime())
    return f"r-{stamp}-{uuid.uuid4().hex[:8]}"


@dataclass(frozen=True)
class RunManifest:
    """The run identity stamped on every telemetry stream.

    Attributes:
        run_id: unique identifier; every event on the bus carries it.
        created: unix timestamp of manifest creation.
        schema: telemetry format version (:data:`TELEMETRY_SCHEMA`).
        workload: what ran — free-form description plus, when the run
            came from the experiment engine, the scenario name and the
            spec's content hash.
        backend: canonical simulation/ledger backend spec (or None).
        network: canonical network-condition spec (or None).
        git: ``git describe`` of the source tree (None outside a
            checkout).
        python: interpreter version string.
        platform: OS/machine string.
    """

    run_id: str = field(default_factory=new_run_id)
    created: float = field(default_factory=time.time)
    schema: int = TELEMETRY_SCHEMA
    workload: Mapping[str, Any] = field(default_factory=dict)
    backend: Optional[Mapping[str, Any]] = None
    network: Optional[Mapping[str, Any]] = None
    git: Optional[str] = field(default_factory=git_describe)
    python: str = field(
        default_factory=lambda: sys.version.split()[0]
    )
    platform: str = field(default_factory=platform.platform)

    def to_dict(self) -> Dict[str, Any]:
        """The JSON-able manifest payload (the bus's first event body)."""
        return {
            "run_id": self.run_id,
            "created": self.created,
            "schema": self.schema,
            "workload": dict(self.workload),
            "backend": dict(self.backend) if self.backend else None,
            "network": dict(self.network) if self.network else None,
            "git": self.git,
            "python": self.python,
            "platform": self.platform,
        }
