"""Crash flight recorder: a ring of recent events, dumped on trouble.

A :class:`FlightRecorder` is a sink that keeps the last N bus events in
a :class:`~repro.telemetry.sinks.RingSink` and writes them to a
timestamped JSONL file when something goes wrong — a worker-pool
rebuild, a terminally failed job, an unhandled daemon error, or the
SIGTERM drain. The daemon attaches one for its whole lifetime (see
``repro serve --flight-dir``), so the question "what were the last
things the service did before it died?" always has an on-disk answer,
inspectable with ``repro flight show``.

Dump files are named ``flight-<UTC stamp>-<counter>-<reason>.jsonl``;
the counter disambiguates multiple dumps within one second and orders
them, so the lexically greatest filename is always the newest dump.
"""

import time
from pathlib import Path
from typing import Any, Dict, List, Optional

from .sinks import RingSink, Sink

#: Dump-file prefix; ``latest_dump`` and the CLI glob on this.
DUMP_PREFIX = "flight-"

#: Event kinds that trigger an automatic dump as soon as they are seen.
#: ``pool_rebuilt`` marks a worker crash the service survived;
#: a terminal failed ``job_end`` (no retry coming) marks one it did not.
_TRIGGER_KINDS = ("pool_rebuilt",)


def _is_trigger(event: Dict[str, Any]) -> Optional[str]:
    kind = event.get("event")
    if kind in _TRIGGER_KINDS:
        return str(kind)
    if (
        kind == "job_end"
        and event.get("status") == "failed"
        and not event.get("will_retry")
    ):
        return "job-failed"
    return None


class FlightRecorder(Sink):
    """Ring-buffer sink with automatic dump-on-trouble.

    ``directory`` is created lazily on the first dump. Automatic dumps
    fire *after* the triggering event is in the ring, so the dump's
    last line names the trigger (e.g. the failing job's key).
    """

    def __init__(
        self,
        directory,
        capacity: int = RingSink.DEFAULT_CAPACITY,
        clock=time.time,
    ) -> None:
        self.directory = Path(directory)
        self.ring = RingSink(capacity)
        self.dumps: List[Path] = []
        self._clock = clock
        self._counter = 0

    def handle(self, event: Dict[str, Any]) -> None:
        self.ring.handle(event)
        reason = _is_trigger(event)
        if reason is not None:
            self.dump(reason)

    def dump(self, reason: str) -> Optional[Path]:
        """Write the current ring to a timestamped file; None if empty."""
        if not len(self.ring):
            return None
        stamp = time.strftime("%Y%m%dT%H%M%SZ", time.gmtime(self._clock()))
        self._counter += 1
        safe_reason = "".join(
            ch if ch.isalnum() or ch == "-" else "-" for ch in reason
        )
        path = self.directory / (
            f"{DUMP_PREFIX}{stamp}-{self._counter:04d}-{safe_reason}.jsonl"
        )
        self.ring.dump(path)
        self.dumps.append(path)
        return path

    def close(self) -> None:
        """Closing is not a dump: clean shutdown paths dump explicitly
        (with a reason) before the bus closes its sinks."""


def latest_dump(directory) -> Optional[Path]:
    """The newest flight dump in ``directory``, or None.

    Filenames embed a UTC stamp plus a per-recorder counter, so
    lexicographic order is dump order within one recorder and
    wall-clock order across daemon restarts.
    """
    directory = Path(directory)
    if not directory.is_dir():
        return None
    dumps = sorted(directory.glob(f"{DUMP_PREFIX}*.jsonl"))
    return dumps[-1] if dumps else None
