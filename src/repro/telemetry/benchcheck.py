"""The ``repro bench check`` regression gate.

Re-runs a pinned subset of the committed benchmark trajectory —
``BENCH_profile.json`` (the distributed Steiner-forest pipeline per
ledger engine), ``BENCH_backends.json`` (FloodMax per simulation
backend), ``BENCH_serve.json`` (daemon load), ``BENCH_observe.json``
(observability overhead), ``BENCH_store.json`` (indexed vs full-scan
store lookup), and ``BENCH_numpy.json`` (the regular-primitives
pipeline per ledger tier) — and compares against the committed entries:

* **logical metrics** (rounds, messages, solution weight) must match
  the committed values *exactly*: they are deterministic, so any drift
  is a real behavior change, not noise;
* **wall time** must stay under ``tolerance ×`` the committed seconds
  (with an absolute floor, since sub-millisecond entries on a different
  machine are pure scheduler noise). The default tolerance is
  deliberately generous — the gate exists to catch crashes and gross
  regressions across CI hardware, not to police single-digit percents.

Every check run narrates to an optional telemetry bus (one span per
entry, pass/fail counters), so CI uploads the gate's own event stream
as an artifact.
"""

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

#: Wall-time slack: measured seconds may be tolerance × committed,
#: but never less than this many absolute seconds (tiny committed
#: entries would otherwise gate on scheduler noise).
WALL_FLOOR_SECONDS = 1.0


class BackendUnavailable(RuntimeError):
    """A committed entry needs an optional execution tier that is not
    installed here (e.g. the numpy extra). The gate skips the entry —
    the dependency-free environment must stay able to check the rest of
    the file — and the tier's own CI job re-measures it for real."""


@dataclass
class CheckRow:
    """One re-measured benchmark entry vs its committed values."""

    source: str
    n: int
    backend: str
    ok: bool
    seconds: float
    allowed_seconds: float
    mismatches: List[str] = field(default_factory=list)

    @property
    def detail(self) -> str:
        return "; ".join(self.mismatches) if self.mismatches else "ok"


@dataclass
class BenchCheckReport:
    """All rows of one gate run; ``ok`` iff every row passed."""

    rows: List[CheckRow] = field(default_factory=list)
    skipped: int = 0

    @property
    def ok(self) -> bool:
        return all(row.ok for row in self.rows)

    def render(self) -> str:
        if not self.rows:
            return (
                "bench check: no checkable entries "
                f"({self.skipped} skipped)"
            )
        width = max(len(r.source) for r in self.rows)
        lines = [
            f"{'bench'.ljust(width)} {'n':>6s} {'backend':>10s} "
            f"{'seconds':>9s} {'allowed':>9s} {'verdict'}"
        ]
        for row in self.rows:
            lines.append(
                f"{row.source.ljust(width)} {row.n:6d} {row.backend:>10s} "
                f"{row.seconds:9.3f} {row.allowed_seconds:9.3f} "
                f"{'PASS' if row.ok else 'FAIL: ' + row.detail}"
            )
        passed = sum(1 for row in self.rows if row.ok)
        lines.append(
            f"{passed}/{len(self.rows)} entries pass "
            f"({self.skipped} skipped: size cap or unavailable tier)"
        )
        return "\n".join(lines)


def _compare(
    committed: Dict[str, Any],
    measured: Dict[str, Any],
    tolerance: float,
) -> CheckRow:
    mismatches = []
    for column in (
        "rounds", "messages", "weight", "requests", "hits", "rows", "lookups",
    ):
        if column not in committed:
            continue
        if measured[column] != committed[column]:
            mismatches.append(
                f"{column} {measured[column]} != committed {committed[column]}"
            )
    allowed = max(tolerance * committed["seconds"], WALL_FLOOR_SECONDS)
    if measured["seconds"] > allowed:
        mismatches.append(
            f"wall {measured['seconds']:.3f}s > allowed {allowed:.3f}s"
        )
    return CheckRow(
        source=committed["source"],
        n=committed["n"],
        backend=committed["backend"],
        ok=not mismatches,
        seconds=measured["seconds"],
        allowed_seconds=allowed,
        mismatches=mismatches,
    )


def _measure_pipeline(workload: Dict[str, Any], n: int, backend: str) -> Dict[str, Any]:
    """One BENCH_profile-style entry, re-measured (same construction as
    ``benchmarks/bench_e18_profile.py``)."""
    from repro.engine.algorithms import ALGORITHMS
    from repro.perf import make_ledger_run
    from repro.workloads import random_instance

    algorithm = ALGORITHMS[workload.get("algorithm", "distributed")]
    if not algorithm.accepts_run:
        raise ValueError(
            f"bench workload algorithm {algorithm.name!r} has no ledger"
        )
    instance = random_instance(
        n,
        int(workload.get("k", 3)),
        random.Random(n),
        p=float(workload.get("p", 0.35)),
    )
    started = time.perf_counter()
    run = make_ledger_run(backend, instance.graph)
    result = algorithm.run(instance, random.Random(0), run=run)
    elapsed = time.perf_counter() - started
    return {
        "seconds": elapsed,
        "rounds": result.rounds,
        "messages": run.messages,
        "weight": result.solution.weight,
    }


def _measure_floodmax(workload: Dict[str, Any], n: int, backend: str) -> Dict[str, Any]:
    """One BENCH_backends-style entry, re-measured (same construction as
    ``benchmarks/bench_e16_backends.py``)."""
    from repro.congest.simulator import FloodMaxLeaderElection, Simulator
    from repro.workloads import random_connected_graph

    graph = random_connected_graph(
        n, float(workload.get("p", 0.35)), random.Random(n)
    )
    programs = {v: FloodMaxLeaderElection() for v in graph.nodes}
    started = time.perf_counter()
    sim = Simulator(graph, programs, backend=backend)
    rounds = sim.run_to_completion()
    elapsed = time.perf_counter() - started
    return {"seconds": elapsed, "rounds": rounds, "messages": sim.run.messages}


def _measure_serve(workload: Dict[str, Any], n: int, backend: str) -> Dict[str, Any]:
    """One BENCH_serve-style entry, re-measured (same load generation as
    ``benchmarks/bench_e19_serve.py``): ``backend`` is the config label
    (``hit<percent>-c<clients>``), ``n`` the per-client request count.
    The request mix is constructed so ``requests`` and ``hits`` are
    exact (see :mod:`repro.serve.loadgen`), which is what lets the gate
    compare them like the engine benches compare rounds."""
    from repro.serve.loadgen import measure_config

    entry = measure_config(workload, per_client=n, label=backend)
    return {
        "seconds": entry["seconds"],
        "requests": entry["requests"],
        "hits": entry["hits"],
    }


def _measure_observe(workload: Dict[str, Any], n: int, backend: str) -> Dict[str, Any]:
    """One BENCH_observe-style entry, re-measured (same load generation
    as ``benchmarks/bench_e20_observe.py``): ``backend`` is the daemon
    mode (``instrumented`` or ``detached``), ``n`` the warm-hit request
    count. Every timed request hits the same pre-warmed cache key, so
    ``requests`` and ``hits`` are exact."""
    from repro.serve.loadgen import measure_observe

    entry = measure_observe(workload, requests=n, mode=backend)
    return {
        "seconds": entry["seconds"],
        "requests": entry["requests"],
        "hits": entry["hits"],
    }


def _measure_store(workload: Dict[str, Any], n: int, backend: str) -> Dict[str, Any]:
    """One BENCH_store-style entry, re-measured (same synthetic store
    and lookup mix as ``benchmarks/bench_e21_store.py``): ``backend``
    is the lookup mode (``scan`` or ``indexed``), ``n`` the store's row
    count. Row and lookup counts are deterministic by construction, so
    the gate compares them exactly."""
    from repro.engine.storebench import DEFAULT_LOOKUPS, measure_mode

    entry = measure_mode(
        n, backend, lookups=int(workload.get("lookups", DEFAULT_LOOKUPS))
    )
    return {
        "seconds": entry["seconds"],
        "rows": entry["rows"],
        "lookups": entry["lookups"],
    }


def _measure_primitives(workload: Dict[str, Any], n: int, backend: str) -> Dict[str, Any]:
    """One BENCH_numpy-style entry, re-measured (same construction as
    ``benchmarks/bench_e22_numpy.py``): the regular-primitives pipeline
    — BFS tree, multi-source Bellman–Ford, pipelined broadcast,
    convergecast aggregation — on a sparse random connected graph,
    charged against the ledger tier named by ``backend``."""
    from fractions import Fraction

    from repro.congest.bellman_ford import bellman_ford
    from repro.congest.bfs import build_bfs_tree
    from repro.congest.broadcast import broadcast_items, convergecast_aggregate
    from repro.perf import make_ledger_run
    from repro.simbackend import numpy_tier_available
    from repro.workloads import random_connected_graph

    if backend == "numpy" and not numpy_tier_available():
        raise BackendUnavailable(
            "optional numpy extra not installed; numpy-tier entry skipped"
        )
    degree = int(workload.get("degree", 8))
    num_sources = int(workload.get("num_sources", 8))
    num_items = int(workload.get("num_items", 32))
    graph = random_connected_graph(n, min(0.35, degree / n), random.Random(n))
    started = time.perf_counter()
    run = make_ledger_run(backend, graph)
    tree = build_bfs_tree(graph, run=run)
    nodes = graph.nodes
    step = max(1, len(nodes) // num_sources)
    sources = {
        nodes[i]: (Fraction(0), f"tag{i}")
        for i in range(0, len(nodes), step)
    }
    bellman_ford(graph, sources, run)
    broadcast_items(tree, [("item", i) for i in range(num_items)], run)
    convergecast_aggregate(tree, {v: 1 for v in nodes}, lambda a, b: a + b, run)
    elapsed = time.perf_counter() - started
    return {"seconds": elapsed, "rounds": run.rounds, "messages": run.messages}


#: Per-bench re-measurement drivers, keyed by the JSON's ``experiment``.
_DRIVERS = {
    "e18-profile": _measure_pipeline,
    "e16-backends": _measure_floodmax,
    "e19-serve": _measure_serve,
    "e20-observe": _measure_observe,
    "e21-store": _measure_store,
    "e22-numpy": _measure_primitives,
}


def check_bench_file(
    path: Any,
    max_n: int = 64,
    tolerance: float = 50.0,
    telemetry: Optional[Any] = None,
    report: Optional[BenchCheckReport] = None,
) -> BenchCheckReport:
    """Gate one committed BENCH_*.json file; returns the (shared) report."""
    path = Path(path)
    data = json.loads(path.read_text(encoding="utf-8"))
    experiment = data.get("experiment", "")
    try:
        driver = _DRIVERS[experiment]
    except KeyError:
        raise ValueError(
            f"{path.name}: unknown benchmark experiment {experiment!r}; "
            f"checkable: {sorted(_DRIVERS)}"
        ) from None
    workload = data.get("workload", {})
    if report is None:
        report = BenchCheckReport()
    for entry in data.get("entries", []):
        n = int(entry["n"])
        backend = str(entry["backend"])
        if n > max_n:
            report.skipped += 1
            continue
        committed = dict(entry, source=path.name)
        try:
            if telemetry is not None:
                with telemetry.span(
                    "bench-check", bench=path.name, n=n, backend=backend
                ):
                    measured = driver(workload, n, backend)
            else:
                measured = driver(workload, n, backend)
        except BackendUnavailable:
            report.skipped += 1
            continue
        row = _compare(committed, measured, tolerance)
        report.rows.append(row)
        if telemetry is not None:
            telemetry.emit(
                "bench_check",
                bench=path.name,
                n=n,
                backend=backend,
                ok=row.ok,
                seconds=round(row.seconds, 6),
                allowed_seconds=round(row.allowed_seconds, 6),
                detail=row.detail,
            )
            telemetry.counter(
                "bench.passed" if row.ok else "bench.failed"
            ).inc()
    return report


def check_benches(
    paths: Any,
    max_n: int = 64,
    tolerance: float = 50.0,
    telemetry: Optional[Any] = None,
) -> BenchCheckReport:
    """Gate several BENCH files into one report (missing files error)."""
    report = BenchCheckReport()
    for path in paths:
        check_bench_file(
            path,
            max_n=max_n,
            tolerance=tolerance,
            telemetry=telemetry,
            report=report,
        )
    return report
