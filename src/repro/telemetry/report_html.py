"""Self-contained HTML run reports from telemetry event streams.

``repro report --html`` renders any captured JSONL stream — a sweep, a
profile run, a daemon session — into one static HTML file with no
external assets (inline CSS only, no CDN, no web fonts): a manifest
header, the per-phase rounds/messages/bits table (the same reduction as
``repro trace summary`` / :meth:`repro.perf.PhaseProfiler.from_events`),
a per-phase × round-bin message-volume congestion heatmap, and the
final metrics snapshot. The artifact is meant to be attached to CI runs
and mailed around, so everything must work from ``file://``.

Heatmap encoding: magnitude → a single-hue sequential blue ramp
(light→dark on a light surface; flipped on dark so "near zero" always
recedes toward the surface). Cell classes, not inline colors, carry the
ramp so dark mode is a stylesheet swap. Every cell has a native
``title`` tooltip with phase, round range, and message count; the phase
table doubles as the accessible table view of the same data.
"""

import html
from typing import Any, List, Mapping, Optional, Sequence

from .summary import manifest_of, phase_rows, totals_of

#: Number of ramp steps (CSS classes ``hm0`` .. ``hm<N-1>``); ``hm0``
#: is reserved for exactly-zero cells (surface colored).
RAMP_STEPS = 9

#: Maximum heatmap columns; runs with more rounds are binned.
MAX_BINS = 36

# Sequential blue ramp (validated single-hue scale), light surface:
# low → high magnitude. The dark-mode ramp uses the same steps flipped
# plus dark-tuned ink.
_LIGHT_RAMP = [
    "#cde2fb", "#9ec5f4", "#6da7ec", "#3987e5",
    "#2a78d6", "#256abf", "#1c5cab", "#104281",
]
_DARK_RAMP = [
    "#0d366b", "#184f95", "#1c5cab", "#256abf",
    "#2a78d6", "#3987e5", "#6da7ec", "#9ec5f4",
]
# Ink that clears the cell background in each mode (light text on the
# dark half of the ramp and vice versa).
_LIGHT_INK = ["#0b0b0b"] * 3 + ["#ffffff"] * 5
_DARK_INK = ["#ffffff"] * 4 + ["#0b0b0b"] * 4

_CSS = """
:root {
  color-scheme: light dark;
  --surface: #fcfcfb; --panel: #f4f3f1; --border: #dddbd6;
  --ink: #0b0b0b; --ink-2: #52514e;
}
@media (prefers-color-scheme: dark) {
  :root { --surface: #1a1a19; --panel: #242423; --border: #3a3937;
          --ink: #ffffff; --ink-2: #c3c2b7; }
}
body { background: var(--surface); color: var(--ink);
       font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 72rem; padding: 0 1rem; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td { padding: 0.3rem 0.7rem; text-align: right;
         border-bottom: 1px solid var(--border); }
th { color: var(--ink-2); font-weight: 600; }
th:first-child, td:first-child { text-align: left; }
tr.total td { font-weight: 600; border-top: 2px solid var(--border); }
dl.manifest { display: grid; grid-template-columns: max-content 1fr;
              gap: 0.15rem 1rem; background: var(--panel);
              border: 1px solid var(--border); border-radius: 6px;
              padding: 0.75rem 1rem; }
dl.manifest dt { color: var(--ink-2); } dl.manifest dd { margin: 0;
  font-family: ui-monospace, monospace; overflow-wrap: anywhere; }
table.heatmap { table-layout: fixed; }
table.heatmap td { border: none; padding: 0; }
table.heatmap td.cell { width: 16px; height: 20px;
  border: 1px solid var(--surface); }
table.heatmap td.cell:hover { outline: 2px solid var(--ink);
  outline-offset: -1px; }
table.heatmap th { font-weight: 400; white-space: nowrap; }
.legend { display: flex; align-items: center; gap: 0.4rem;
          color: var(--ink-2); margin: 0.5rem 0; }
.legend span.swatch { width: 16px; height: 12px; display: inline-block;
  border: 1px solid var(--border); }
""" + "\n".join(
    f"td.hm{i + 1} {{ background: {_LIGHT_RAMP[i]}; color: {_LIGHT_INK[i]}; }}"
    for i in range(RAMP_STEPS - 1)
) + """
td.hm0 { background: var(--panel); }
@media (prefers-color-scheme: dark) {
""" + "\n".join(
    f"  td.hm{i + 1} {{ background: {_DARK_RAMP[i]}; color: {_DARK_INK[i]}; }}"
    for i in range(RAMP_STEPS - 1)
) + """
}
"""


def _esc(value: Any) -> str:
    return html.escape(str(value), quote=True)


def _manifest_section(manifest: Optional[Mapping[str, Any]]) -> List[str]:
    if not manifest:
        return ["<p>No manifest event in this stream.</p>"]
    parts = ["<dl class=\"manifest\">"]
    preferred = ("run_id", "created", "git", "python", "platform",
                 "backend", "network", "schema")
    keys = [k for k in preferred if manifest.get(k) not in (None, "")]
    keys += sorted(
        k for k in manifest
        if k not in preferred and k != "workload"
        and manifest.get(k) not in (None, "")
    )
    for key in keys:
        parts.append(f"<dt>{_esc(key)}</dt><dd>{_esc(manifest[key])}</dd>")
    workload = manifest.get("workload") or {}
    if workload:
        described = " ".join(f"{k}={workload[k]}" for k in sorted(workload))
        parts.append(f"<dt>workload</dt><dd>{_esc(described)}</dd>")
    parts.append("</dl>")
    return parts


def _phase_table(rows: Sequence[Mapping[str, Any]]) -> List[str]:
    if not rows:
        return ["<p>No phase events in this stream.</p>"]
    parts = [
        "<table><thead><tr><th>phase</th><th>rounds</th>"
        "<th>messages</th><th>bits</th><th>wall s</th></tr></thead><tbody>"
    ]
    for row in rows:
        parts.append(
            f"<tr><td>{_esc(row['phase'])}</td><td>{row['rounds']:,}</td>"
            f"<td>{row['messages']:,}</td><td>{row['bits']:,}</td>"
            f"<td>{row['wall_time']:.4f}</td></tr>"
        )
    totals = totals_of(rows)
    parts.append(
        f"<tr class=\"total\"><td>total</td><td>{totals['rounds']:,}</td>"
        f"<td>{totals['messages']:,}</td><td>{totals['bits']:,}</td>"
        f"<td>{totals['wall_time']:.4f}</td></tr>"
    )
    parts.append("</tbody></table>")
    return parts


def _heatmap_grid(
    events: Sequence[Mapping[str, Any]], bins: int = MAX_BINS
):
    """Per-phase × round-bin message volume from a stream's phase events.

    Phase events arrive in execution order, each covering the next
    ``rounds`` rounds of the run with ``messages`` messages; the
    messages are spread uniformly over the segment's rounds and
    accumulated into ``bins`` equal round intervals. Returns
    ``(phase_names, grid, total_rounds)`` with ``grid[row][col]`` a
    float message volume, or ``(..., 0)`` when the stream has no
    rounds to bin.
    """
    segments = []
    total_rounds = 0
    for event in events:
        if event.get("event") != "phase":
            continue
        phase = str(event.get("phase", "(unattributed)"))
        rounds = int(event.get("rounds") or 0)
        messages = int(event.get("messages") or 0)
        segments.append((phase, rounds, messages))
        total_rounds += rounds
    names: List[str] = []
    for phase, _, _ in segments:
        if phase not in names:
            names.append(phase)
    if not segments or total_rounds <= 0:
        return names, [], 0
    bins = max(1, min(bins, total_rounds))
    grid = [[0.0] * bins for _ in names]
    scale = bins / total_rounds
    position = 0
    for phase, rounds, messages in segments:
        row = names.index(phase)
        if rounds <= 0:
            # Round-free work: deposit at the current position.
            col = min(int(position * scale), bins - 1)
            grid[row][col] += messages
            continue
        per_round = messages / rounds
        start, end = position, position + rounds
        first, last = int(start * scale), min(int(end * scale), bins - 1)
        for col in range(first, last + 1):
            lo = max(start, col / scale)
            hi = min(end, (col + 1) / scale)
            if hi > lo:
                grid[row][col] += (hi - lo) * per_round
        position = end
    return names, grid, total_rounds


def _heatmap_section(events: Sequence[Mapping[str, Any]]) -> List[str]:
    names, grid, total_rounds = _heatmap_grid(events)
    if not grid:
        return ["<p>No round-by-round phase data in this stream.</p>"]
    bins = len(grid[0])
    peak = max((v for row in grid for v in row), default=0.0)
    if peak <= 0:
        return ["<p>No message volume recorded in any phase.</p>"]
    rounds_per_bin = total_rounds / bins
    parts = [
        "<p>Message volume per phase over the run's rounds "
        f"({total_rounds:,} rounds in {bins} bins; darker = more "
        "messages). Hover a cell for exact values.</p>",
        "<table class=\"heatmap\"><tbody>",
    ]
    for row_index, phase in enumerate(names):
        cells = [f"<th>{_esc(phase)}</th>"]
        for col in range(bins):
            value = grid[row_index][col]
            if value <= 0:
                step = 0
            else:
                # hm1..hm8 over the value range; sqrt spreads the low end
                # so a single dominant phase doesn't flatten the rest.
                step = 1 + min(
                    RAMP_STEPS - 2,
                    int((value / peak) ** 0.5 * (RAMP_STEPS - 1)),
                )
            lo = int(col * rounds_per_bin)
            hi = max(lo + 1, int((col + 1) * rounds_per_bin))
            tip = (
                f"{phase} · rounds {lo:,}–{hi:,} · "
                f"{value:,.0f} messages"
            )
            cells.append(
                f"<td class=\"cell hm{step}\" title=\"{_esc(tip)}\"></td>"
            )
        parts.append("<tr>" + "".join(cells) + "</tr>")
    parts.append("</tbody></table>")
    swatches = "".join(
        f"<span class=\"swatch hm{i}\"></span>" for i in range(1, RAMP_STEPS)
    )
    parts.append(
        "<div class=\"legend\"><span>0</span>"
        f"<span class=\"swatch hm0\"></span>{swatches}"
        f"<span>{peak:,.0f} messages / bin</span></div>"
    )
    # Reuse the td ramp classes on legend swatches.
    parts.append(
        "<style>" + "\n".join(
            f".legend span.hm{i} {{ background: {_LIGHT_RAMP[i - 1]}; }}"
            for i in range(1, RAMP_STEPS)
        ) + "\n.legend span.hm0 { background: var(--panel); }\n"
        "@media (prefers-color-scheme: dark) {\n" + "\n".join(
            f".legend span.hm{i} {{ background: {_DARK_RAMP[i - 1]}; }}"
            for i in range(1, RAMP_STEPS)
        ) + "\n}</style>"
    )
    return parts


def _metrics_section(events: Sequence[Mapping[str, Any]]) -> List[str]:
    snapshot = None
    for event in events:
        if event.get("event") == "metrics":
            snapshot = event
    if snapshot is None:
        return ["<p>No metrics snapshot in this stream.</p>"]
    parts = []
    counters = snapshot.get("counters") or {}
    gauges = snapshot.get("gauges") or {}
    if counters or gauges:
        parts.append(
            "<table><thead><tr><th>counter / gauge</th><th>value</th>"
            "</tr></thead><tbody>"
        )
        for name in sorted(counters):
            parts.append(
                f"<tr><td>{_esc(name)}</td><td>{counters[name]:,}</td></tr>"
            )
        for name in sorted(gauges):
            parts.append(
                f"<tr><td>{_esc(name)} (gauge)</td>"
                f"<td>{_esc(gauges[name])}</td></tr>"
            )
        parts.append("</tbody></table>")
    histograms = snapshot.get("histograms") or {}
    if histograms:
        parts.append(
            "<table><thead><tr><th>histogram</th><th>count</th>"
            "<th>mean</th><th>p50</th><th>p95</th><th>p99</th>"
            "<th>max</th></tr></thead><tbody>"
        )
        for name in sorted(histograms):
            hist = histograms[name]
            if not hist.get("count"):
                parts.append(
                    f"<tr><td>{_esc(name)}</td><td>0</td>"
                    + "<td>—</td>" * 5 + "</tr>"
                )
                continue
            cells = "".join(
                f"<td>{hist.get(k, 0.0):.6g}</td>"
                for k in ("mean", "p50", "p95", "p99", "max")
            )
            parts.append(
                f"<tr><td>{_esc(name)}</td><td>{hist['count']:,}</td>"
                f"{cells}</tr>"
            )
        parts.append("</tbody></table>")
    if not parts:
        return ["<p>The metrics snapshot is empty.</p>"]
    return parts


def render_html_report(
    events: Sequence[Mapping[str, Any]], title: str = "Run report"
) -> str:
    """One self-contained HTML page for a telemetry event stream."""
    manifest = manifest_of(events)
    rows = phase_rows(events)
    body: List[str] = [f"<h1>{_esc(title)}</h1>"]
    body.extend(_manifest_section(manifest))
    body.append("<h2>Per-phase complexity</h2>")
    body.extend(_phase_table(rows))
    body.append("<h2>Congestion heatmap</h2>")
    body.extend(_heatmap_section(events))
    body.append("<h2>Metrics</h2>")
    body.extend(_metrics_section(events))
    body.append(
        f"<p style=\"color: var(--ink-2)\">{len(events):,} events in "
        "stream · generated by <code>repro report --html</code></p>"
    )
    return (
        "<!doctype html>\n<html lang=\"en\">\n<head>\n"
        "<meta charset=\"utf-8\">\n"
        "<meta name=\"viewport\" content=\"width=device-width, "
        "initial-scale=1\">\n"
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style>\n</head>\n<body>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n"
    )
