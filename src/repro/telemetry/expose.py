"""Prometheus-style text exposition for a metrics snapshot.

The input is the plain-dict shape produced by
:meth:`repro.telemetry.MetricsRegistry.snapshot` — which is also what a
daemon's ``metrics`` protocol frame and the ``metrics`` event on a
telemetry stream carry — so the same renderer serves a live scrape
(``repro metrics --prom``), a captured JSONL, and tests.

Output follows the Prometheus text format version 0.0.4:

* counters are exposed as ``<name>_total``;
* gauges are exposed as-is (non-numeric gauge values are skipped —
  the text format only carries floats);
* histograms expose the standard cumulative ``_bucket{le="..."}``
  series plus ``_sum``/``_count``, and additionally ``_p50``/``_p95``/
  ``_p99`` gauges with the registry's precomputed quantile estimates
  (quantiles are not derivable server-side from buckets any more
  precisely than the registry already did it).
"""

import json
import re
from typing import Any, Dict, List

#: Prefix stamped on every exposed metric name.
DEFAULT_PREFIX = "repro"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = DEFAULT_PREFIX) -> str:
    """A dotted registry name as a legal Prometheus metric name."""
    flat = _NAME_BAD_CHARS.sub("_", name)
    if prefix:
        flat = f"{prefix}_{flat}"
    if not _NAME_OK.match(flat):
        flat = "_" + flat
    return flat


def _format_value(value: float) -> str:
    """A float in exposition form (shortest round-trip repr)."""
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return format(value, "g")


def _is_number(value: Any) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _histogram_lines(name: str, hist: Dict[str, Any]) -> List[str]:
    lines = [f"# TYPE {name} histogram"]
    count = int(hist.get("count", 0))
    total = float(hist.get("total", 0.0))
    cumulative = 0
    for bucket in hist.get("buckets", []):
        cumulative += int(bucket["count"])
        le = bucket.get("le")
        if le is None:
            continue  # overflow bucket folds into +Inf below
        lines.append(
            f'{name}_bucket{{le="{_format_value(float(le))}"}} {cumulative}'
        )
    lines.append(f'{name}_bucket{{le="+Inf"}} {count}')
    lines.append(f"{name}_sum {_format_value(total)}")
    lines.append(f"{name}_count {count}")
    for q in ("p50", "p95", "p99"):
        value = hist.get(q)
        if value is None:
            continue
        lines.append(f"# TYPE {name}_{q} gauge")
        lines.append(f"{name}_{q} {_format_value(float(value))}")
    return lines


def render_prometheus(
    snapshot: Dict[str, Any], prefix: str = DEFAULT_PREFIX
) -> str:
    """A registry snapshot as Prometheus text exposition (0.0.4)."""
    lines: List[str] = []
    for raw, value in snapshot.get("counters", {}).items():
        name = metric_name(raw, prefix) + "_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_format_value(float(value))}")
    for raw, value in snapshot.get("gauges", {}).items():
        if not _is_number(value):
            continue
        name = metric_name(raw, prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_format_value(float(value))}")
    for raw, hist in snapshot.get("histograms", {}).items():
        lines.extend(_histogram_lines(metric_name(raw, prefix), hist))
    return "\n".join(lines) + "\n" if lines else ""


def render_json(snapshot: Dict[str, Any]) -> str:
    """The snapshot as pretty-printed JSON (the ``--json`` scrape mode)."""
    return json.dumps(snapshot, indent=2, sort_keys=True)
