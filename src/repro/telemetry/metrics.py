"""Typed metrics for the telemetry bus: counters, gauges, histograms.

Metric updates are local accumulation only — no event is emitted per
``inc``/``set``/``observe``, so instrumenting a hot loop costs one dict
lookup and an add. The bus snapshots the whole registry into a single
``metrics`` event when the run closes (:meth:`repro.telemetry.Telemetry.
close`), which keeps JSONL streams compact while still recording every
counter's final value.
"""

from typing import Any, Dict


class Counter:
    """A monotonically increasing count (cache hits, rows written)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, worker count)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Any = None

    def set(self, value: Any) -> None:
        self.value = value


class Histogram:
    """Summary statistics over observed samples (per-job wall times)."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def to_dict(self) -> Dict[str, Any]:
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
        }


class MetricsRegistry:
    """Named metric instruments, created on first use.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for ``counter("x")`` after ``gauge("x")`` is a bug and
    raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """All instruments' current values, grouped by kind."""
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.to_dict()
        return out
