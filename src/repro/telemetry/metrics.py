"""Typed metrics for the telemetry bus: counters, gauges, histograms.

Metric updates are local accumulation only — no event is emitted per
``inc``/``set``/``observe``, so instrumenting a hot loop costs one dict
lookup and an add. The bus snapshots the whole registry into a single
``metrics`` event when the run closes (:meth:`repro.telemetry.Telemetry.
close`), which keeps JSONL streams compact while still recording every
counter's final value.

Histograms use one fixed log-spaced bucket layout shared by every
instrument (:data:`BUCKET_BOUNDS`): all histograms are mergeable with
each other and a snapshot can be rendered straight into Prometheus
text exposition (``repro.telemetry.expose``) without re-binning.
"""

from bisect import bisect_left
from typing import Any, Dict, List, Optional

#: Smallest bucket upper bound, in the histogram's native unit
#: (seconds for every latency histogram in the repo): 1 microsecond.
BUCKET_MIN = 1e-6

#: Geometric growth factor between consecutive bucket upper bounds.
BUCKET_GROWTH = 2.0

#: Number of finite buckets. 1e-6 * 2**33 ≈ 8590, so the finite range
#: spans 1µs .. ~2.4 hours; anything above lands in the +Inf overflow
#: bucket. Quantile resolution is a factor of 2 everywhere in range.
BUCKET_COUNT = 34

#: The shared finite bucket upper bounds (ascending). Values ≤
#: ``BUCKET_BOUNDS[i]`` and > ``BUCKET_BOUNDS[i-1]`` land in bucket
#: ``i``; values above the last bound land in the overflow bucket.
BUCKET_BOUNDS: List[float] = [
    BUCKET_MIN * BUCKET_GROWTH**i for i in range(BUCKET_COUNT)
]


class Counter:
    """A monotonically increasing count (cache hits, rows written)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount


class Gauge:
    """A point-in-time value (queue depth, worker count).

    A never-set gauge reads 0 (not ``None``) so numeric renderings —
    deltas in ``repro top``, Prometheus exposition — never trip over a
    gauge that merely hasn't moved yet; ``unset`` records whether
    :meth:`set` has ever been called.
    """

    __slots__ = ("name", "value", "unset")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: Any = 0
        self.unset = True

    def set(self, value: Any) -> None:
        self.value = value
        self.unset = False


class Histogram:
    """Bucketed distribution over observed samples (per-job wall times).

    Fixed log-spaced buckets (:data:`BUCKET_BOUNDS`) plus an overflow
    bucket; observation is O(log #buckets) via bisect. Quantiles are
    estimated by linear interpolation inside the bucket where the
    target rank falls, clamped to the observed min/max — accurate to
    one bucket width (a factor of :data:`BUCKET_GROWTH`).
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")
        # buckets[i] counts samples in (BUCKET_BOUNDS[i-1], BUCKET_BOUNDS[i]];
        # buckets[BUCKET_COUNT] is the +Inf overflow bucket.
        self.buckets: List[int] = [0] * (BUCKET_COUNT + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[bisect_left(BUCKET_BOUNDS, value)] += 1

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's samples into this one.

        Sound because every histogram shares the same fixed bucket
        layout — the use case is summing per-worker or per-run
        distributions into one service-level view.
        """
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        for i, n in enumerate(other.buckets):
            self.buckets[i] += n

    def quantile(self, q: float) -> Optional[float]:
        """Estimated value at quantile ``q`` in [0, 1], or None if empty."""
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        # Rank of the target sample (1-based, ceil) in cumulative counts.
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.buckets):
            if not n:
                continue
            if cumulative + n >= target:
                # Interpolate within this bucket's span.
                lower = BUCKET_BOUNDS[i - 1] if i > 0 else 0.0
                upper = BUCKET_BOUNDS[i] if i < BUCKET_COUNT else self.max
                if upper < lower:
                    upper = lower
                fraction = (target - cumulative) / n
                estimate = lower + (upper - lower) * fraction
                # Clamp to the observed range: bucket edges are coarser
                # than the true extremes.
                return min(max(estimate, self.min), self.max)
            cumulative += n
        return self.max

    def to_dict(self) -> Dict[str, Any]:
        """JSON-roundtrippable summary; the empty case has no inf/-inf."""
        if not self.count:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.total / self.count,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": [
                {"le": BUCKET_BOUNDS[i] if i < BUCKET_COUNT else None, "count": n}
                for i, n in enumerate(self.buckets)
                if n
            ],
        }


class MetricsRegistry:
    """Named metric instruments, created on first use.

    A name is bound to one instrument kind for the registry's lifetime;
    asking for ``counter("x")`` after ``gauge("x")`` is a bug and
    raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls: type) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = self._metrics[name] = cls(name)
        elif type(metric) is not cls:
            raise TypeError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def __len__(self) -> int:
        return len(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        """All instruments' current values, grouped by kind."""
        out: Dict[str, Any] = {"counters": {}, "gauges": {}, "histograms": {}}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                out["counters"][name] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][name] = metric.value
            else:
                out["histograms"][name] = metric.to_dict()
        return out
