"""Phase tables and run diffs over telemetry event streams.

The ``repro trace`` subcommand's logic: reduce a captured (or loaded)
event stream to the per-phase rounds / messages / bits table that
mirrors the paper's complexity accounting, and diff two streams'
*logical* metrics — the deterministic columns that must agree across
ledger engines and code versions, wall time explicitly excluded.
"""

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: The deterministic per-phase columns (wall time is environment noise
#: and never part of a diff verdict).
LOGICAL_COLUMNS = ("rounds", "messages", "bits")


def manifest_of(events: Sequence[Mapping[str, Any]]) -> Optional[Dict[str, Any]]:
    """The first manifest event's payload, if the stream carries one."""
    for event in events:
        if event.get("event") == "manifest":
            return {k: v for k, v in event.items() if k not in ("event", "seq", "t")}
    return None


def phase_rows(events: Sequence[Mapping[str, Any]]) -> List[Dict[str, Any]]:
    """Per-phase rows from a stream's ``phase`` events, merged in
    first-seen order (a phase re-entered later accumulates)."""
    order: List[str] = []
    acc: Dict[str, Dict[str, Any]] = {}
    for event in events:
        if event.get("event") != "phase":
            continue
        name = str(event.get("phase", "(unattributed)"))
        row = acc.get(name)
        if row is None:
            row = acc[name] = {
                "phase": name, "rounds": 0, "messages": 0,
                "bits": 0, "wall_time": 0.0,
            }
            order.append(name)
        row["rounds"] += event.get("rounds", 0) or 0
        row["messages"] += event.get("messages", 0) or 0
        row["bits"] += event.get("bits", 0) or 0
        row["wall_time"] += event.get("wall_time", 0.0) or 0.0
    return [acc[name] for name in order]


def totals_of(rows: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    return {
        "rounds": sum(r["rounds"] for r in rows),
        "messages": sum(r["messages"] for r in rows),
        "bits": sum(r["bits"] for r in rows),
        "wall_time": sum(r["wall_time"] for r in rows),
    }


def render_summary(
    events: Sequence[Mapping[str, Any]], title: str = ""
) -> str:
    """The ``repro trace summary`` table: per-phase rounds / messages /
    bits / wall seconds plus totals, headed by the run manifest."""
    manifest = manifest_of(events)
    rows = phase_rows(events)
    lines = []
    if title:
        lines.append(f"== trace summary: {title} ==")
    if manifest is not None:
        workload = manifest.get("workload") or {}
        described = " ".join(
            f"{key}={workload[key]}" for key in sorted(workload)
        )
        lines.append(
            f"run {manifest.get('run_id')}"
            + (f"  git {manifest['git']}" if manifest.get("git") else "")
        )
        if described:
            lines.append(f"workload: {described}")
    if not rows:
        lines.append("no phase events in this stream")
        return "\n".join(lines)
    width = max([len(r["phase"]) for r in rows] + [len("phase"), len("total")])
    lines.append(
        f"{'phase'.ljust(width)} {'rounds':>8s} {'messages':>10s} "
        f"{'bits':>12s} {'wall s':>9s}"
    )
    for row in rows:
        lines.append(
            f"{row['phase'].ljust(width)} {row['rounds']:8d} "
            f"{row['messages']:10d} {row['bits']:12d} "
            f"{row['wall_time']:9.4f}"
        )
    totals = totals_of(rows)
    lines.append(
        f"{'total'.ljust(width)} {totals['rounds']:8d} "
        f"{totals['messages']:10d} {totals['bits']:12d} "
        f"{totals['wall_time']:9.4f}"
    )
    return "\n".join(lines)


def diff_streams(
    events_a: Sequence[Mapping[str, Any]],
    events_b: Sequence[Mapping[str, Any]],
    label_a: str = "a",
    label_b: str = "b",
) -> Tuple[bool, str]:
    """Compare two streams' logical per-phase metrics.

    Returns ``(identical, report)``: identical is True iff both streams
    narrate the same phase set with equal rounds / messages / bits per
    phase (wall time is environment noise and never judged).
    """
    rows_a = {r["phase"]: r for r in phase_rows(events_a)}
    rows_b = {r["phase"]: r for r in phase_rows(events_b)}
    order = list(rows_a)
    order.extend(name for name in rows_b if name not in rows_a)
    width = max([len(name) for name in order] + [len("phase"), len("total")])
    lines = [
        f"== trace diff: {label_a} vs {label_b} (logical metrics) ==",
        f"{'phase'.ljust(width)} {'column':>9s} {label_a:>12s} "
        f"{label_b:>12s}  verdict",
    ]
    identical = True
    zero = {"rounds": 0, "messages": 0, "bits": 0}

    def _compare(name: str, a: Mapping[str, Any], b: Mapping[str, Any]) -> None:
        nonlocal identical
        for column in LOGICAL_COLUMNS:
            same = a[column] == b[column]
            if not same:
                identical = False
            lines.append(
                f"{name.ljust(width)} {column:>9s} {a[column]:12d} "
                f"{b[column]:12d}  {'=' if same else 'DIFFERS'}"
            )

    for name in order:
        a = rows_a.get(name)
        b = rows_b.get(name)
        if a is None or b is None:
            identical = False
            missing = label_a if a is None else label_b
            lines.append(
                f"{name.ljust(width)} {'(phase)':>9s} "
                f"{'—':>12s} {'—':>12s}  MISSING in {missing}"
            )
            _compare(name, a or dict(zero, phase=name), b or dict(zero, phase=name))
            continue
        _compare(name, a, b)
    totals_a = totals_of(rows_a.values())
    totals_b = totals_of(rows_b.values())
    _compare("total", totals_a, totals_b)
    lines.append(
        "logical metrics identical"
        if identical
        else "logical metrics DIFFER"
    )
    return identical, "\n".join(lines)
