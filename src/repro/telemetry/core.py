"""The telemetry bus: one structured event stream per run.

A :class:`Telemetry` instance owns a :class:`~repro.telemetry.manifest.
RunManifest`, a :class:`~repro.telemetry.metrics.MetricsRegistry`, and a
set of sinks. Every event it emits is a plain dict stamped with the
run id, a monotonic sequence number, and the wall offset since the bus
opened — so streams from the engine runner, the simulator's message
traces, and the ledger's phase narration interleave into one ordered,
attributable record of a run.

The cardinal invariant (pinned in ``tests/test_telemetry.py``): with
telemetry detached, executions are byte-identical to the seed — same
results, same ledger accounting, same result-store cache keys. The bus
only ever *observes*; instrumentation points throughout the repo accept
``Optional[Telemetry]`` and pay one ``is not None`` check when detached.

Ledger integration reuses the :class:`~repro.congest.run.CongestRun`
profiler hook: :meth:`Telemetry.attach_ledger` installs a
:class:`LedgerBridge` that narrates ``set_phase``/``tick``/``charge_*``
as ``phase`` events on the bus (and forwards to a wrapped
:class:`~repro.perf.PhaseProfiler` when one rides along), making the
profiler a view over the bus rather than a parallel collector —
:func:`repro.perf.PhaseProfiler.from_events` rebuilds the per-phase
table from any captured stream.
"""

import time
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional

from repro.telemetry.manifest import RunManifest
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.sinks import Sink


class Telemetry:
    """A per-run event bus with spans, metrics, and pluggable sinks.

    Args:
        manifest: the run identity; a fresh anonymous one by default.
        sinks: initial sinks; each receives the ``manifest`` event
            immediately (as does any sink attached later).
        clock: monotonic time source (injectable for exact tests).
    """

    def __init__(
        self,
        manifest: Optional[RunManifest] = None,
        sinks: Any = (),
        clock: Any = time.perf_counter,
    ) -> None:
        self.manifest = manifest if manifest is not None else RunManifest()
        self.metrics = MetricsRegistry()
        self._clock = clock
        self._sinks: List[Sink] = []
        self._seq = 0
        self._t0 = clock()
        self._cpu0 = time.process_time()
        self._span_stack: List[str] = []
        self._bridges: List["LedgerBridge"] = []
        self.closed = False
        for sink in sinks:
            self.add_sink(sink)

    # -- plumbing --------------------------------------------------------

    @property
    def run_id(self) -> str:
        return self.manifest.run_id

    def add_sink(self, sink: Sink) -> Sink:
        """Attach a sink; it immediately receives the manifest event so
        every stream is self-describing regardless of attach order."""
        self._sinks.append(sink)
        sink.handle(self._envelope("manifest", self.manifest.to_dict()))
        return sink

    def _envelope(self, kind: str, fields: Dict[str, Any]) -> Dict[str, Any]:
        event = {
            "event": kind,
            "run_id": self.manifest.run_id,
            "seq": self._seq,
            "t": round(self._clock() - self._t0, 6),
        }
        self._seq += 1
        event.update(fields)
        return event

    def emit(self, kind: str, **fields: Any) -> Dict[str, Any]:
        """Send one event to every sink; returns the stamped dict."""
        event = self._envelope(kind, fields)
        for sink in self._sinks:
            sink.handle(event)
        return event

    def log(self, message: str, level: str = "info") -> None:
        """A human-readable progress line as a structured event."""
        self.emit("log", level=level, message=message)

    # -- metrics ---------------------------------------------------------

    def counter(self, name: str) -> Counter:
        return self.metrics.counter(name)

    def gauge(self, name: str) -> Gauge:
        return self.metrics.gauge(name)

    def histogram(self, name: str) -> Histogram:
        return self.metrics.histogram(name)

    # -- spans -----------------------------------------------------------

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """A hierarchical timed section: ``span_start``/``span_end``
        events carrying the slash-joined ancestry path and, on end, the
        wall duration and outcome (``ok`` or ``error``)."""
        path = f"{self._span_stack[-1]}/{name}" if self._span_stack else name
        self._span_stack.append(path)
        self.emit("span_start", span=path, **attrs)
        started = self._clock()
        status = "ok"
        try:
            yield
        except BaseException:
            status = "error"
            raise
        finally:
            self._span_stack.pop()
            self.emit(
                "span_end",
                span=path,
                status=status,
                wall_time=round(self._clock() - started, 6),
            )

    # -- ledger integration ----------------------------------------------

    def attach_ledger(self, run: Any, profiler: Any = None) -> "LedgerBridge":
        """Narrate a ledger's phases onto the bus.

        Installs a :class:`LedgerBridge` as ``run.profiler`` (the same
        single hook :meth:`repro.perf.PhaseProfiler.attach` uses); when
        a profiler is passed — or one is already attached to the run —
        it keeps receiving every callback through the bridge, so
        ``--profile`` jobs and telemetry compose.
        """
        if profiler is None:
            profiler = getattr(run, "profiler", None)
        bridge = LedgerBridge(self, run, inner=profiler)
        run.profiler = bridge
        self._bridges.append(bridge)
        return bridge

    # -- lifecycle -------------------------------------------------------

    def flush(self) -> None:
        """Push every sink's buffered events to durable storage.

        The daemon calls this on drain and crash paths so a process
        about to exit (or already dying) leaves complete JSONL streams;
        see :meth:`repro.telemetry.sinks.JsonlSink.flush`.
        """
        for sink in self._sinks:
            sink.flush()

    def close(self) -> None:
        """Flush phase bridges, snapshot metrics, emit ``run_end`` with
        wall/cpu totals, and close every sink (idempotent)."""
        if self.closed:
            return
        for bridge in self._bridges:
            bridge.finish()
        if len(self.metrics):
            self.emit("metrics", **self.metrics.snapshot())
        self.emit(
            "run_end",
            events=self._seq,
            wall_time=round(self._clock() - self._t0, 6),
            cpu_time=round(time.process_time() - self._cpu0, 6),
        )
        self.closed = True
        for sink in self._sinks:
            sink.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


class LedgerBridge:
    """Adapts the :class:`~repro.congest.run.CongestRun` profiler hook
    onto the bus.

    Implements the profiler protocol (``switch_phase`` / ``add_rounds``
    / ``add_messages``): each phase transition emits one ``phase`` event
    with the closed phase's rounds, messages, derived bits (messages ×
    the ledger's B), and wall seconds, and bumps the bus-level
    ``ledger.rounds`` / ``ledger.messages`` counters. An optional inner
    profiler receives every callback unchanged, so a
    :class:`~repro.perf.PhaseProfiler` riding on a profiled job keeps
    collecting exactly what it would standalone.
    """

    def __init__(self, telemetry: Telemetry, run: Any, inner: Any = None) -> None:
        self._telemetry = telemetry
        self._run = run
        self._inner = inner
        self._phase: Optional[str] = None
        self._rounds = 0
        self._messages = 0
        self._started = telemetry._clock()
        self._finished = False

    def _flush_phase(self, next_phase: Optional[str]) -> None:
        now = self._telemetry._clock()
        if self._phase is not None or self._rounds or self._messages:
            bandwidth = getattr(self._run, "bandwidth_bits", None)
            self._telemetry.emit(
                "phase",
                phase=self._phase if self._phase is not None else "(unattributed)",
                rounds=self._rounds,
                messages=self._messages,
                bits=(
                    self._messages * bandwidth if bandwidth is not None else None
                ),
                wall_time=round(now - self._started, 6),
            )
            self._telemetry.counter("ledger.rounds").inc(self._rounds)
            self._telemetry.counter("ledger.messages").inc(self._messages)
        self._phase = next_phase
        self._rounds = 0
        self._messages = 0
        self._started = now

    # -- the CongestRun profiler protocol --------------------------------

    def switch_phase(self, name: Optional[str]) -> None:
        self._flush_phase(name)
        if self._inner is not None:
            self._inner.switch_phase(name)

    def add_rounds(self, rounds: int) -> None:
        self._rounds += rounds
        if self._inner is not None:
            self._inner.add_rounds(rounds)

    def add_messages(self, count: int) -> None:
        self._messages += count
        if self._inner is not None:
            self._inner.add_messages(count)

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """The profiler protocol's nested-span hook (``maybe_span`` in
        the solvers' hot primitives). The bridge keeps bus narration at
        ``set_phase`` granularity — a pipelined upcast span can fire
        thousands of times per run, so per-span events would swamp the
        stream — but an inner profiler still gets its span frames."""
        if self._inner is not None and hasattr(self._inner, "span"):
            with self._inner.span(name):
                yield
        else:
            yield

    # -- lifecycle -------------------------------------------------------

    def finish(self) -> None:
        """Emit the final open phase (idempotent; driven by
        :meth:`Telemetry.close` or called directly after a solve)."""
        if self._finished:
            return
        self._finished = True
        self._flush_phase(None)
        if self._inner is not None and hasattr(self._inner, "finish"):
            self._inner.finish()
