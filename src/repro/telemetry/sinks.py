"""Pluggable telemetry sinks: where bus events go.

Every sink consumes the same plain-dict events; the bus fans each event
out to all attached sinks. Three built-ins cover the repo's needs:

* :class:`JsonlSink` — streams events to a JSONL file (one object per
  line, flushed per event so a dying run leaves a readable stream) —
  the same append-only format as the result store and message traces.
* :class:`MemorySink` — accumulates events in a list for tests and for
  the ``repro trace`` subcommand's in-process summaries.
* :class:`ConsoleSink` — renders events as human lines on a stream,
  with the engine's historical progress strings reproduced verbatim
  (the compat shim behind the runner's ``log`` parameter) and a
  ``verbose`` mode that prints every event.

:class:`CallbackSink` adapts any ``str -> None`` logger (e.g. the
engine's :func:`~repro.engine.runner.stderr_log`) into a sink, which is
how pre-telemetry call sites keep their exact output.
"""

import json
import os
import sys
from collections import deque
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional

#: Event fields that are bus plumbing, not payload (hidden in verbose
#: console rendering).
_ENVELOPE_FIELDS = ("event", "run_id", "seq", "t")


def encode_event(event: Dict[str, Any]) -> str:
    """One canonical JSONL line for an event (shared with traces)."""
    return json.dumps(event, sort_keys=True, default=repr)


def format_progress(event: Dict[str, Any]) -> Optional[str]:
    """The engine's historical progress line for an event, or None.

    These strings are a compatibility surface: ``sweep``'s stderr output
    predates the telemetry bus and is asserted on by tests and parsed by
    eyeballs, so the bus renders the same lines from structured events.
    """
    kind = event.get("event")
    if kind == "sweep_start":
        return (
            f"[{event['scenario']}] {event['jobs']} jobs: "
            f"{event['cache_hits']} cache hits, {event['to_run']} to run"
        )
    if kind == "job_end" and event.get("status") == "completed":
        return (
            f"[{event['scenario']}] job {event['done']}/{event['total']} "
            f"done: {event['algorithm']} ({event['wall_time']:.3f}s)"
        )
    if kind == "job_end" and event.get("status") == "failed":
        return (
            f"[{event['scenario']}] job {event['done']}/{event['total']} "
            f"FAILED: {event['algorithm']} ({event.get('error', '?')})"
        )
    if kind == "log":
        return str(event.get("message", ""))
    return None


def format_event(event: Dict[str, Any]) -> str:
    """A compact one-line rendering of any event (verbose console)."""
    kind = event.get("event", "?")
    fields = " ".join(
        f"{key}={event[key]!r}"
        for key in sorted(event)
        if key not in _ENVELOPE_FIELDS
    )
    return f"· {kind}" + (f" {fields}" if fields else "")


class Sink:
    """Base sink: consume events, release resources on close."""

    def handle(self, event: Dict[str, Any]) -> None:
        raise NotImplementedError

    def flush(self) -> None:
        """Force buffered events to durable storage (no-op by default).

        Called by :meth:`repro.telemetry.Telemetry.flush` on daemon
        drain/crash paths, where "the process is about to die" must not
        mean "the stream loses its tail".
        """

    def close(self) -> None:
        """Idempotent resource release (files, handles)."""


class MemorySink(Sink):
    """Accumulates events in order for in-process inspection."""

    def __init__(self) -> None:
        self.events: List[Dict[str, Any]] = []

    def handle(self, event: Dict[str, Any]) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink(Sink):
    """Streams events to ``path`` as JSONL, flushed per event.

    The file is created lazily on the first event (truncating any
    previous stream); a close/reopen cycle appends, so one sink path
    survives multiple attach/close rounds without losing events.
    """

    def __init__(self, path) -> None:
        self.path = Path(path)
        self._handle = None
        self._created = False

    def handle(self, event: Dict[str, Any]) -> None:
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = self.path.open(
                "a" if self._created else "w", encoding="utf-8"
            )
            self._created = True
        self._handle.write(encode_event(event) + "\n")
        self._handle.flush()

    def flush(self) -> None:
        """Flush + fsync so a SIGTERM'd daemon never truncates a line."""
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
            self._handle = None


class RingSink(Sink):
    """A bounded in-memory ring of the last ``capacity`` events.

    The flight recorder's storage layer: cheap enough to leave attached
    for a daemon's whole lifetime, and dumpable to JSONL post-mortem.
    ``seen`` counts every event ever handled, so a dump can report how
    many earlier events the ring evicted; eviction is strictly FIFO.
    """

    DEFAULT_CAPACITY = 512

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.seen = 0
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)

    def handle(self, event: Dict[str, Any]) -> None:
        self.seen += 1
        self._ring.append(event)

    def events(self) -> List[Dict[str, Any]]:
        """The retained events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)

    def dump(self, path) -> int:
        """Write the retained events to ``path`` as fsync'd JSONL.

        Returns the number of events written. The file is truncated
        first: a dump is a complete snapshot of the ring, not an
        append log.
        """
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        events = self.events()
        with path.open("w", encoding="utf-8") as handle:
            for event in events:
                handle.write(encode_event(event) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        return len(events)


class CallbackSink(Sink):
    """Adapts a ``str -> None`` progress logger into a sink.

    Only events with a legacy progress rendering produce a call, so an
    engine run logging through this sink emits byte-identical lines to
    the pre-telemetry runner.
    """

    def __init__(self, log: Callable[[str], None]) -> None:
        self._log = log

    def handle(self, event: Dict[str, Any]) -> None:
        line = format_progress(event)
        if line is not None:
            self._log(line)


class ConsoleSink(Sink):
    """Human-readable event lines on a stream (stderr by default).

    ``verbose=False`` renders only the legacy progress lines;
    ``verbose=True`` additionally prints every other event in compact
    ``· kind key=value`` form (the ``--verbose`` CLI mode).
    """

    def __init__(self, stream=None, verbose: bool = False) -> None:
        self._stream = stream
        self.verbose = verbose

    def handle(self, event: Dict[str, Any]) -> None:
        line = format_progress(event)
        if line is None and self.verbose:
            line = format_event(event)
        if line is not None:
            print(line, file=self._stream or sys.stderr, flush=True)


def read_events(path) -> List[Dict[str, Any]]:
    """Load a JSONL event stream back (the offline half of ``repro
    trace``); blank lines are skipped."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events
