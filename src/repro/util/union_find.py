"""Disjoint-set (union-find) data structure.

Used throughout the library for cycle detection in Kruskal-style filtering of
candidate merges (Lemma 4.13 of the paper) and for connected-component
bookkeeping of partially built forests.
"""

from typing import Dict, Hashable, Iterable, Iterator, List, Optional, Set


class UnionFind:
    """Union-find with union by rank and path compression.

    Elements may be any hashable values and can be added lazily: ``find`` on
    an unknown element creates a fresh singleton set for it.

    >>> uf = UnionFind([1, 2, 3])
    >>> uf.union(1, 2)
    True
    >>> uf.connected(1, 2)
    True
    >>> uf.connected(1, 3)
    False
    """

    def __init__(self, elements: Optional[Iterable[Hashable]] = None) -> None:
        self._parent: Dict[Hashable, Hashable] = {}
        self._rank: Dict[Hashable, int] = {}
        self._size: Dict[Hashable, int] = {}
        self._num_sets = 0
        if elements is not None:
            for element in elements:
                self.add(element)

    def add(self, element: Hashable) -> None:
        """Add ``element`` as a singleton set if it is not present."""
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0
            self._size[element] = 1
            self._num_sets += 1

    def __contains__(self, element: Hashable) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        """Number of elements (not sets)."""
        return len(self._parent)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._parent)

    @property
    def num_sets(self) -> int:
        """Number of disjoint sets currently represented."""
        return self._num_sets

    def find(self, element: Hashable) -> Hashable:
        """Return the canonical representative of ``element``'s set."""
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: Hashable, b: Hashable) -> bool:
        """Merge the sets of ``a`` and ``b``.

        Returns True if a merge happened, False if they were already in the
        same set (i.e. the edge (a, b) would close a cycle).
        """
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return False
        if self._rank[root_a] < self._rank[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]
        if self._rank[root_a] == self._rank[root_b]:
            self._rank[root_a] += 1
        self._num_sets -= 1
        return True

    def connected(self, a: Hashable, b: Hashable) -> bool:
        """Whether ``a`` and ``b`` are in the same set."""
        return self.find(a) == self.find(b)

    def set_size(self, element: Hashable) -> int:
        """Number of elements in ``element``'s set."""
        return self._size[self.find(element)]

    def sets(self) -> List[Set[Hashable]]:
        """Materialize all disjoint sets (order unspecified)."""
        by_root: Dict[Hashable, Set[Hashable]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        return list(by_root.values())
