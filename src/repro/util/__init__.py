"""Small generic utilities shared across the library."""

from repro.util.union_find import UnionFind

__all__ = ["UnionFind"]
