"""Spanner-based Steiner forest ([17]; used as the second-stage solver).

The STOC'13 algorithm of Lenzen & Patt-Shamir computes, in
Õ((√n + t)^{1+1/k} + D) rounds, a multiplicative (2k−1)-spanner of the
metric induced on the terminals (plus a Θ̃(√n) sample that keeps detected
paths short), ships it to every node, and solves the instance centrally.
With k = log n the stretch is O(log n) and, combined with the centralized
2-approximate moat-growing solver, the output is an O(log n)-approximation
(Lemma G.15 / Theorem 5.2 use exactly this interface on the F-reduced
instance, whose t̂ ≤ √n terminals give Õ(√n + D) rounds).

Implementation: the terminal metric comes from the graph's all-pairs
distances (what the distributed construction provides each node with); the
greedy path-spanner is built on the terminal set, solved with
:func:`repro.core.moat.moat_growing`, and the selected spanner edges are
mapped back to least-weight paths in the graph. Communication is charged as
Õ(√n + t + D) with the spanner broadcast simulated for real.
"""

import math
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

import heapq

from repro.congest.bfs import build_bfs_tree
from repro.congest.broadcast import broadcast_items
from repro.congest.run import CongestRun
from repro.core.moat import moat_growing
from repro.model.graph import Edge, Node, WeightedGraph, canonical_edge
from repro.model.instance import SteinerForestInstance
from repro.model.solution import ForestSolution


class SpannerResult:
    """Outcome of the spanner baseline."""

    def __init__(
        self,
        solution: ForestSolution,
        run: CongestRun,
        spanner_edges: FrozenSet[Tuple[Node, Node]],
        stretch: int,
    ) -> None:
        self.solution = solution
        self.run = run
        self.spanner_edges = spanner_edges
        self.stretch = stretch

    @property
    def rounds(self) -> int:
        return self.run.rounds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SpannerResult(W={self.solution.weight}, "
            f"rounds={self.rounds}, stretch≤{self.stretch})"
        )


def greedy_spanner(
    points: List[Node],
    metric: Dict[Node, Dict[Node, int]],
    stretch: int,
) -> Set[Tuple[Node, Node]]:
    """Greedy multiplicative spanner of a finite metric.

    Scans point pairs by ascending distance; a pair enters the spanner iff
    its current spanner distance exceeds ``stretch`` times its metric
    distance. The result has O(p^{1+2/(stretch+1)}) edges and stretch
    ``stretch`` (classic greedy guarantee).
    """
    pairs = sorted(
        (
            (metric[u][v], repr(u), repr(v), u, v)
            for i, u in enumerate(points)
            for v in points[i + 1:]
        ),
    )
    adjacency: Dict[Node, List[Tuple[Node, int]]] = {p: [] for p in points}
    edges: Set[Tuple[Node, Node]] = set()

    def spanner_distance(a: Node, b: Node, cutoff: int) -> float:
        dist = {a: 0}
        heap: List[Tuple[int, str, Node]] = [(0, repr(a), a)]
        while heap:
            d, _, x = heapq.heappop(heap)
            if x == b:
                return d
            if d > dist.get(x, d):
                continue
            for y, w in adjacency[x]:
                nd = d + w
                if nd <= cutoff and nd < dist.get(y, nd + 1):
                    dist[y] = nd
                    heapq.heappush(heap, (nd, repr(y), y))
        return math.inf

    for d, _, _, u, v in pairs:
        if spanner_distance(u, v, stretch * d) > stretch * d:
            adjacency[u].append((v, d))
            adjacency[v].append((u, d))
            edges.add((u, v))
    return edges


def spanner_steiner_forest(
    instance: SteinerForestInstance,
    run: Optional[CongestRun] = None,
    stretch: Optional[int] = None,
) -> SpannerResult:
    """Solve a DSF-IC instance with the [17]-style spanner algorithm.

    Returns an O(stretch)-approximate solution; with the default
    stretch = 2⌈log₂ n⌉ − 1 this is the paper's O(log n) guarantee.
    """
    graph = instance.graph
    if run is None:
        run = CongestRun(graph)
    n = graph.num_nodes
    if stretch is None:
        stretch = 2 * max(1, math.ceil(math.log2(max(2, n)))) - 1

    run.set_phase("spanner")
    terminals = sorted(instance.terminals, key=repr)
    if len(terminals) <= 1:
        return SpannerResult(
            ForestSolution(graph, []), run, frozenset(), stretch
        )

    metric = graph.all_pairs_distances()
    spanner = greedy_spanner(terminals, metric, stretch)

    # Charge the distributed construction: Õ(√n + t) for the metric /
    # spanner computation plus a real broadcast of the spanner edges.
    tree = build_bfs_tree(graph, run)
    log_n = max(1, math.ceil(math.log2(max(2, n))))
    run.charge_rounds(
        (math.isqrt(n) + len(terminals)) * log_n,
        "terminal-metric spanner construction ([17])",
    )
    broadcast_items(
        tree, sorted((repr(u), repr(v)) for u, v in spanner), run
    )

    # Solve centrally on the spanner graph (weights are true distances).
    spanner_graph = WeightedGraph(
        terminals,
        [(u, v, metric[u][v]) for u, v in spanner],
        validate=False,
    )
    spanner_instance = SteinerForestInstance(
        spanner_graph,
        {v: instance.label(v) for v in terminals},
    )
    central = moat_growing(spanner_instance)

    # Map selected spanner edges back to least-weight paths in G.
    edges: Set[Edge] = set()
    for u, v in central.solution.edges:
        path = graph.shortest_path(u, v)
        edges.update(canonical_edge(a, b) for a, b in zip(path, path[1:]))
    # Token-passing along the selected paths: bounded by the max hop count.
    max_hops = max(
        (len(graph.shortest_path(u, v)) for u, v in central.solution.edges),
        default=1,
    )
    run.charge_rounds(max_hops, "mapping spanner edges to graph paths")
    solution = ForestSolution(graph, edges)
    return SpannerResult(
        solution, run, frozenset(spanner), stretch
    )
