"""Baseline algorithms the paper compares against or builds upon.

* :mod:`repro.baselines.khan` — Khan et al. [14]: random tree embedding with
  naive (non-pipelined) path selection, O(log n)-approximate in Õ(sk)
  rounds.
* :mod:`repro.baselines.spanner` — the [17]-style algorithm: collect the
  terminal metric, build a sparse spanner centrally, solve on the spanner,
  map back; O(log n)-approximate in Õ(√n + t + D) rounds. Used as the
  second-stage solver of the randomized algorithm (Lemma G.15).
* :mod:`repro.baselines.mst` — minimum spanning tree references for the
  k = 1, t = n special case (Section 1: the deterministic algorithm then
  outputs an exact MST).
"""

from repro.baselines.khan import KhanResult, khan_steiner_forest
from repro.baselines.spanner import SpannerResult, spanner_steiner_forest
from repro.baselines.mst import exact_mst_edges, exact_mst_weight

__all__ = [
    "KhanResult",
    "khan_steiner_forest",
    "SpannerResult",
    "spanner_steiner_forest",
    "exact_mst_edges",
    "exact_mst_weight",
]
