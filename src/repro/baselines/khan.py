"""Khan et al. [14] baseline: tree embedding + naive path selection.

The first distributed Steiner forest algorithm: embed the graph into a
random virtual tree (O(log n) expected stretch), select the minimal
subtrees per input component, and map virtual edges back to graph paths.
Without the per-destination pipelining of Section 5, congestion forces the
selection to run in Õ(sk) rounds — the quantity experiment E6 contrasts
with the improved algorithm's Õ(s + k).

Implementation shares the embedding and selection machinery of
:mod:`repro.randomized` with ``naive=True`` (one message per node per
round) and never truncates the tree.
"""

import random
from typing import Optional

from repro.congest.run import CongestRun
from repro.model.instance import SteinerForestInstance
from repro.model.solution import ForestSolution
from repro.randomized.embedding import VirtualTreeEmbedding, build_embedding
from repro.randomized.selection import FirstStageResult, first_stage_selection


class KhanResult:
    """Outcome of the [14] baseline."""

    def __init__(
        self,
        solution: ForestSolution,
        run: CongestRun,
        embedding: VirtualTreeEmbedding,
        first_stage: FirstStageResult,
    ) -> None:
        self.solution = solution
        self.run = run
        self.embedding = embedding
        self.first_stage = first_stage

    @property
    def rounds(self) -> int:
        return self.run.rounds

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KhanResult(W={self.solution.weight}, rounds={self.rounds})"


def khan_steiner_forest(
    instance: SteinerForestInstance,
    rng: Optional[random.Random] = None,
    run: Optional[CongestRun] = None,
) -> KhanResult:
    """Solve DSF-IC with the Õ(sk)-round algorithm of Khan et al. [14]."""
    graph = instance.graph
    if rng is None:
        rng = random.Random(0xBEEF)
    if run is None:
        run = CongestRun(graph)
    run.set_phase("khan")
    embedding = build_embedding(graph, run, rng, truncate_at=None)
    stage = first_stage_selection(instance, embedding, run, naive=True)
    solution = ForestSolution(graph, stage.edges)
    solution.assert_feasible(instance)
    return KhanResult(solution, run, embedding, stage)
