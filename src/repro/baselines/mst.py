"""Minimum spanning tree references (the k = 1, t = n special case).

Section 1 notes that the deterministic moat-growing algorithm generalizes
the MST algorithms of [11, 16]: on the instance where every node is a
terminal of one component, the output is an exact MST and the running time
becomes Õ(√n + D). These helpers provide the exact MST for that comparison
(experiment E10).
"""

from typing import FrozenSet

from repro.model.graph import Edge, WeightedGraph, canonical_edge
from repro.model.instance import SteinerForestInstance
from repro.util import UnionFind


def exact_mst_edges(graph: WeightedGraph) -> FrozenSet[Edge]:
    """Kruskal's MST with the library's deterministic tie-breaking."""
    uf = UnionFind(graph.nodes)
    edges = set()
    for u, v, w in sorted(
        graph.edges(), key=lambda e: (e[2], repr((e[0], e[1])))
    ):
        if uf.union(u, v):
            edges.add(canonical_edge(u, v))
    return frozenset(edges)


def exact_mst_weight(graph: WeightedGraph) -> int:
    """Weight of a minimum spanning tree."""
    return graph.edge_weight_sum(exact_mst_edges(graph))


def mst_instance(graph: WeightedGraph) -> SteinerForestInstance:
    """The DSF-IC instance whose solutions are spanning trees: every node a
    terminal of one shared component."""
    return SteinerForestInstance(graph, {v: 0 for v in graph.nodes})
