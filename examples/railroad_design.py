#!/usr/bin/env python3
"""Railroad design — the problem's historical framing (Section 1: Steiner
forest "was famously posed as a problem of railroad design").

Cities sit on a weighted grid of feasible track segments (terrain cost =
edge weight). Several freight corridors each name a set of cities that
must end up on one connected rail network; corridors may share track. We
compare the (2+ε)-approximate deterministic plan against the exact optimum
and show the moat-growing dual lower bound certifying the plan's quality.
"""

import random

from repro.core import moat_growing, sublinear_moat_growing
from repro.exact import steiner_forest_cost
from repro.model.instance import instance_from_components
from repro.workloads import grid_graph


def main():
    rng = random.Random(1889)
    terrain = grid_graph(5, 6, rng, max_weight=9)
    print(
        f"survey grid: {terrain.num_nodes} junctions, "
        f"{terrain.num_edges} candidate segments"
    )

    corridors = {
        "coal": [0, 29],       # opposite corners
        "grain": [5, 24],      # the other diagonal
        "passenger": [2, 27],  # north-south
    }
    for name, cities in corridors.items():
        print(f"  corridor {name}: cities {cities}")
    instance = instance_from_components(terrain, corridors.values())

    plan = moat_growing(instance)
    optimum = steiner_forest_cost(instance)
    print(f"\ntrack plan weight: {plan.solution.weight}")
    print(f"exact optimum:     {optimum}")
    print(
        f"dual certificate:  ≥ {float(plan.dual_lower_bound):.1f} "
        "(Lemma C.4 — no plan can be cheaper)"
    )
    print(f"approximation:     {plan.solution.weight / optimum:.3f}×")

    shared = sublinear_moat_growing(instance, 0.25)
    print(
        f"\ndistributed build (Section 4.2): weight "
        f"{shared.solution.weight} in {shared.rounds} rounds, "
        f"{shared.num_growth_phases} growth phases, σ={shared.sigma}"
    )
    laid = sorted(plan.solution.edges)
    print(f"\nsegments laid ({len(laid)}):")
    for u, v in laid:
        print(f"  {u:>2} — {v:<2} (cost {terrain.weight(u, v)})")


if __name__ == "__main__":
    main()
