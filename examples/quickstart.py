#!/usr/bin/env python3
"""Quickstart: solve one Steiner forest instance with every algorithm.

Builds a small random network, places three connection demands, and runs
the paper's deterministic and randomized algorithms plus the baselines,
printing weight / round comparisons against the exact optimum.
"""

import random

from repro.baselines import khan_steiner_forest, spanner_steiner_forest
from repro.core import (
    distributed_moat_growing,
    moat_growing,
    rounded_moat_growing,
    sublinear_moat_growing,
)
from repro.exact import steiner_forest_cost
from repro.randomized import randomized_steiner_forest
from repro.workloads import random_instance


def main():
    rng = random.Random(42)
    instance = random_instance(n=18, k=3, rng=rng, component_size=2)
    graph = instance.graph
    print(
        f"instance: n={graph.num_nodes} m={graph.num_edges} "
        f"k={instance.num_components} t={instance.num_terminals}"
    )
    print(
        f"metrics:  D={graph.unweighted_diameter()} "
        f"s={graph.shortest_path_diameter()} WD={graph.weighted_diameter()}"
    )
    opt = steiner_forest_cost(instance)
    print(f"exact optimum: {opt}\n")

    runs = [
        ("Algorithm 1 (centralized, 2-approx)",
         lambda: moat_growing(instance)),
        ("Algorithm 2 (rounded, 2.5-approx)",
         lambda: rounded_moat_growing(instance, 0.5)),
        ("distributed deterministic (Thm 4.17)",
         lambda: distributed_moat_growing(instance)),
        ("sublinear deterministic (Cor 4.21)",
         lambda: sublinear_moat_growing(instance, 0.5)),
        ("randomized (Thm 5.2)",
         lambda: randomized_steiner_forest(instance, rng=random.Random(1))),
        ("Khan et al. [14] baseline",
         lambda: khan_steiner_forest(instance, rng=random.Random(1))),
        ("spanner [17] baseline",
         lambda: spanner_steiner_forest(instance)),
    ]
    header = f"{'algorithm':42s} {'weight':>7s} {'ratio':>6s} {'rounds':>7s}"
    print(header)
    print("-" * len(header))
    for name, solve in runs:
        result = solve()
        weight = result.solution.weight
        rounds = getattr(result, "rounds", "-")
        print(
            f"{name:42s} {weight:7d} {weight / opt:6.3f} {rounds!s:>7s}"
        )


if __name__ == "__main__":
    main()
