#!/usr/bin/env python3
"""Walk through the Section 3 lower-bound reductions (Figure 1).

Builds the DSF-CR and DSF-IC Set-Disjointness gadgets for both disjoint and
intersecting inputs, verifies the structural dichotomies that power the
Ω̃(t) / Ω̃(k) bounds, and meters the bits a real algorithm run pushes across
the Alice–Bob cut.
"""

import random

from repro.lowerbounds import (
    cr_dichotomy_holds,
    dsf_cr_gadget,
    dsf_ic_gadget,
    ic_dichotomy_holds,
    measure_cut_traffic,
    path_gadget,
    random_disjointness_sets,
)
from repro.core import distributed_moat_growing


def main():
    rng = random.Random(314)
    universe = 8

    print("== Lemma 3.1 — DSF-CR gadget (Figure 1, left) ==")
    for intersecting in (False, True):
        a, b = random_disjointness_sets(universe, rng, intersecting)
        gadget = dsf_cr_gadget(universe, a, b)
        print(
            f"  A∩B≠∅={intersecting}: A={sorted(a)} B={sorted(b)} | "
            f"dichotomy holds: {cr_dichotomy_holds(gadget)} | "
            f"cut bits: {measure_cut_traffic(gadget)}"
        )

    print("\n== Lemma 3.3 — DSF-IC gadget (Figure 1, right) ==")
    for intersecting in (False, True):
        a, b = random_disjointness_sets(universe, rng, intersecting)
        gadget = dsf_ic_gadget(universe, a, b)
        print(
            f"  A∩B≠∅={intersecting}: k={gadget.instance.num_components} | "
            f"dichotomy holds: {ic_dichotomy_holds(gadget)} | "
            f"cut bits: {measure_cut_traffic(gadget)}"
        )

    print("\n== Lemma 3.4 — the s term at constant diameter ==")
    for s in (5, 10, 20):
        inst = path_gadget(s)
        result = distributed_moat_growing(inst)
        print(
            f"  s={s:>2} D={inst.graph.unweighted_diameter()}: "
            f"rounds={result.rounds} (grows with s, not D)"
        )


if __name__ == "__main__":
    main()
