#!/usr/bin/env python3
"""Multicast VPN provisioning — the paper's motivating "virtual network"
scenario (Section 1: "VPNs or streaming multicast").

A provider network (random geometric graph ≈ a metro fiber plan) hosts
several customers; each customer has a set of sites that must be
interconnected (one input component per customer). The provider wants to
lease a minimum-cost edge set. We provision with the deterministic
distributed algorithm and show the per-customer subtrees, then compare the
cost against the randomized algorithm.
"""

import random

from repro.core import distributed_moat_growing
from repro.model.instance import instance_from_components
from repro.randomized import randomized_steiner_forest
from repro.workloads import random_geometric_graph


def main():
    rng = random.Random(7)
    network = random_geometric_graph(30, 0.35, rng)
    print(
        f"provider network: {network.num_nodes} PoPs, "
        f"{network.num_edges} fiber segments, "
        f"total plant {network.total_weight()}"
    )

    nodes = list(network.nodes)
    rng.shuffle(nodes)
    customers = {
        "acme": nodes[0:3],
        "globex": nodes[3:6],
        "initech": nodes[6:8],
    }
    for name, sites in customers.items():
        print(f"  customer {name}: sites {sorted(sites)}")
    instance = instance_from_components(network, customers.values())

    result = distributed_moat_growing(instance)
    print(
        f"\nprovisioned (deterministic): leased weight "
        f"{result.solution.weight} over {len(result.solution.edges)} "
        f"segments in {result.rounds} CONGEST rounds"
    )
    for component in result.solution.components():
        members = [
            name
            for name, sites in customers.items()
            if any(site in component for site in sites)
        ]
        print(f"  shared tree for {members}: {len(component)} PoPs")

    randomized = randomized_steiner_forest(instance, rng=random.Random(3))
    print(
        f"\nrandomized alternative: weight {randomized.solution.weight} "
        f"in {randomized.rounds} rounds "
        f"(truncated regime: {randomized.truncated})"
    )


if __name__ == "__main__":
    main()
