"""Setup shim for environments without the wheel package (offline editable installs)."""
from setuptools import find_packages, setup

setup(
    name="repro-steiner-forest",
    version="0.1.0",
    description=(
        "Reproduction of Lenzen & Patt-Shamir, 'Distributed Steiner "
        "Forest' (PODC 2014): moat-growing approximation algorithms, "
        "CONGEST simulation, lower-bound gadgets, and an experiment engine"
    ),
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["networkx"],
    extras_require={
        # The vectorized execution tier (repro.perf.npkernels and the
        # "numpy" backend) — the reference path never needs it.
        "numpy": ["numpy"],
        "test": ["pytest", "pytest-benchmark"],
    },
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
