"""E14 — the embedding's structural substrate ([14], used by Section 5):
LE-list lengths are O(log n) and the distributed computation matches the
specification.

The O(log n) bound on LE-list lengths is exactly why only O(log n)
embedding paths pass through any node w.h.p. — the enabler of the paper's
Õ(s + k) pipelined selection.
"""

import math
import random

from benchmarks.conftest import print_table
from repro.congest import CongestRun
from repro.randomized.le_lists import (
    distributed_le_lists,
    le_list_reference,
)
from repro.workloads import random_connected_graph

N_SWEEP = (10, 16, 24)


def run_sweep():
    rows = []
    for n in N_SWEEP:
        graph = random_connected_graph(n, 0.3, random.Random(n))
        lengths = []
        mismatches = 0
        rounds = 0
        for seed in range(3):
            nodes = list(graph.nodes)
            rng = random.Random(seed)
            rng.shuffle(nodes)
            rank = {v: i for i, v in enumerate(nodes)}
            run = CongestRun(graph)
            lists = distributed_le_lists(graph, rank, run)
            rounds = max(rounds, run.rounds)
            for v in graph.nodes:
                if lists[v] != le_list_reference(graph, rank, v):
                    mismatches += 1
                lengths.append(len(lists[v]))
        rows.append(
            (
                n,
                f"{sum(lengths) / len(lengths):.2f}",
                max(lengths),
                f"{math.log(n):.2f}",
                mismatches,
                rounds,
            )
        )
    return rows


def test_e14_le_lists(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E14: LE lists — length O(log n), distributed = reference",
        ("n", "mean |LE|", "max |LE|", "ln n", "mismatches", "rounds"),
        rows,
    )
    for row in rows:
        assert row[4] == 0  # distributed matches the specification
        assert float(row[1]) <= 4 * float(row[3]) + 2  # O(log n) mean
