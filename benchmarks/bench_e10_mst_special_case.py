"""E10 — Section 1: the MST special case (k = 1, t = n) is solved exactly.

The deterministic algorithm specializes to an exact MST when every node is
a terminal of one component; compares output weight against Kruskal.
"""

import random

from benchmarks.conftest import print_table
from repro.baselines import exact_mst_weight
from repro.baselines.mst import mst_instance
from repro.core import distributed_moat_growing
from repro.workloads import grid_graph, random_connected_graph

CASES = (
    ("gnp-12", lambda: random_connected_graph(12, 0.4, random.Random(1))),
    ("gnp-16", lambda: random_connected_graph(16, 0.3, random.Random(2))),
    ("grid-3x4", lambda: grid_graph(3, 4, random.Random(3))),
)


def run_sweep():
    rows = []
    for name, build in CASES:
        graph = build()
        inst = mst_instance(graph)
        result = distributed_moat_growing(inst)
        mst = exact_mst_weight(graph)
        rows.append(
            (
                name,
                graph.num_nodes,
                mst,
                result.solution.weight,
                result.solution.weight == mst,
                result.rounds,
            )
        )
    return rows


def test_e10_mst_special_case(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E10: MST special case — moat output vs exact MST",
        ("graph", "n", "MST", "W(F)", "exact?", "rounds"),
        rows,
    )
    assert all(r[4] for r in rows)
