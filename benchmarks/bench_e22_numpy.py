"""E22 — the vectorized numpy tier on the regular primitives pipeline.

Runs the paper's *regular* communication primitives end-to-end — BFS
tree construction, multi-source Bellman–Ford decomposition, pipelined
broadcast, and convergecast aggregation — on a sparse random connected
graph under the three ledger tiers the ``--backend`` axis selects:

* ``reference`` — a plain :class:`~repro.congest.run.CongestRun` with
  the pure-python primitive loops;
* ``flatarray`` — the compiled :class:`~repro.perf.FastCongestRun`;
* ``numpy`` — :class:`~repro.perf.npkernels.NumpyCongestRun`, whose
  per-round work collapses to integer-dtype array kernels over the CSR
  topology.

Asserts (a) every tier computes the byte-identical execution (BFS tree,
Bellman–Ford distances/tags/parents, rounds, messages, per-edge
traffic, aggregate), and (b) ``numpy`` clears the **≥ 10× speedup bar**
over ``reference`` at n = 4096 — the tentpole acceptance criterion of
the numpy tier. The committed output (``BENCH_numpy.json``) includes an
n = 64 entry so ``repro bench check``'s default size cap re-measures
the e22 driver in CI.

Environment knobs:

* ``E22_SIZES`` — comma-separated node counts (default ``64,1024,4096``).
* ``E22_OUTPUT`` — where to write the JSON (default ``BENCH_numpy.json``
  in the repo root).

Requires the optional numpy extra (the whole module skips without it).
"""

import json
import os
import random
import time
from fractions import Fraction
from pathlib import Path

import pytest

from benchmarks.conftest import print_table
from repro.simbackend import numpy_tier_available

if not numpy_tier_available():  # pragma: no cover - numpy-extra CI only
    pytest.skip(
        "optional numpy extra not installed", allow_module_level=True
    )

from repro.congest.bellman_ford import bellman_ford
from repro.congest.bfs import build_bfs_tree
from repro.congest.broadcast import broadcast_items, convergecast_aggregate
from repro.perf import make_ledger_run
from repro.workloads import random_connected_graph

SIZES = [
    int(size)
    for size in os.environ.get("E22_SIZES", "64,1024,4096").split(",")
]
OUTPUT = Path(
    os.environ.get(
        "E22_OUTPUT", Path(__file__).resolve().parent.parent / "BENCH_numpy.json"
    )
)
#: Sparse topology: expected degree ~8, so reference finishes at
#: n = 4096 in benchable time while the per-round arrays stay large
#: enough for the vectorization to matter.
TARGET_DEGREE = 8
NUM_SOURCES = 8
NUM_ITEMS = 32
REPEATS = 3
BACKENDS = ("reference", "flatarray", "numpy")
SPEEDUP_BAR = 10.0  # numpy vs reference at n = 4096 (acceptance bar)


def _build_graph(n):
    # Mirrored exactly by repro.telemetry.benchcheck._measure_primitives
    # — the gate re-measures committed entries with this construction.
    p = min(0.35, TARGET_DEGREE / n)
    return random_connected_graph(n, p, random.Random(n))


def _primitives_pipeline(graph, backend):
    """One full regular-primitives execution; returns the raw results."""
    run = make_ledger_run(backend, graph)
    tree = build_bfs_tree(graph, run=run)
    nodes = graph.nodes
    step = max(1, len(nodes) // NUM_SOURCES)
    sources = {
        nodes[i]: (Fraction(0), f"tag{i}")
        for i in range(0, len(nodes), step)
    }
    bf = bellman_ford(graph, sources, run)
    items = [("item", i) for i in range(NUM_ITEMS)]
    broadcast_items(tree, items, run)
    total = convergecast_aggregate(
        tree, {v: 1 for v in nodes}, lambda a, b: a + b, run
    )
    return run, tree, bf, total


def _fingerprint(run, tree, bf, total):
    return (
        list(tree.parent.items()),
        tree.depth,
        list(bf.dist.items()),
        list(bf.tag.items()),
        list(bf.parent.items()),
        bf.iterations,
        total,
        run.rounds,
        run.messages,
        sorted(run.edge_messages.items(), key=repr),
    )


def _run_once(graph, backend):
    # Ledger construction inside the clock (the compiled tiers pay their
    # topology compilation, so the speedup comparison is end-to-end);
    # fingerprint materialization outside it (sorting the full per-edge
    # ledger by repr is verification work, not primitive execution).
    started = time.perf_counter()
    run, tree, bf, total = _primitives_pipeline(graph, backend)
    elapsed = time.perf_counter() - started
    return elapsed, run, _fingerprint(run, tree, bf, total)


def measure_all():
    entries = []
    for n in SIZES:
        graph = _build_graph(n)
        fingerprints = {}
        for backend in BACKENDS:
            best = float("inf")
            for _ in range(REPEATS):
                elapsed, run, fingerprint = _run_once(graph, backend)
                best = min(best, elapsed)
                fingerprints[backend] = fingerprint
            entries.append(
                {
                    "n": n,
                    "backend": backend,
                    "seconds": best,
                    "rounds": fingerprints[backend][7],
                    "messages": fingerprints[backend][8],
                }
            )
        # Conformance inside the benchmark: byte-identical execution
        # (results *and* dict orders *and* the full per-edge ledger).
        assert len(set(map(repr, fingerprints.values()))) == 1, (
            f"ledger tiers diverged at n={n}"
        )
    return entries


def _seconds(entries, n, backend):
    return next(
        e["seconds"] for e in entries if e["n"] == n and e["backend"] == backend
    )


def test_e22_numpy_primitives(benchmark):
    entries = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    speedups = {
        backend: {
            str(n): _seconds(entries, n, "reference") / _seconds(entries, n, backend)
            for n in SIZES
        }
        for backend in ("flatarray", "numpy")
    }
    rows = [
        (
            entry["n"],
            entry["backend"],
            f"{entry['seconds'] * 1000:.1f}",
            entry["rounds"],
            entry["messages"],
            f"{_seconds(entries, entry['n'], 'reference') / entry['seconds']:.2f}x",
        )
        for entry in entries
    ]
    print_table(
        "E22: regular primitives (BFS + Bellman–Ford + broadcast + "
        f"convergecast), degree≈{TARGET_DEGREE}, per ledger tier",
        ("n", "backend", "best ms", "rounds", "messages", "speedup"),
        rows,
    )
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(
        json.dumps(
            {
                "experiment": "e22-numpy",
                "workload": {
                    "pipeline": "regular-primitives",
                    "degree": TARGET_DEGREE,
                    "num_sources": NUM_SOURCES,
                    "num_items": NUM_ITEMS,
                },
                "sizes": SIZES,
                "repeats": REPEATS,
                "entries": entries,
                "speedup_vs_reference": speedups,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    # Acceptance bar: the vectorized tier is ≥ 10× the reference ledger
    # on the regular-primitives pipeline at n = 4096 (only checked when
    # 4096 is swept — the CI freshness job runs a tiny size).
    if 4096 in SIZES:
        speedup = speedups["numpy"]["4096"]
        assert speedup >= SPEEDUP_BAR, (
            f"numpy primitives speedup at n=4096 is {speedup:.2f}x "
            f"(< {SPEEDUP_BAR}x bar)"
        )
        # The vectorized tier must also beat the flatarray mid-tier at
        # the top size — otherwise the third tier has no reason to exist.
        assert speedups["numpy"]["4096"] > speedups["flatarray"]["4096"]
