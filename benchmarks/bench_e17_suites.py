"""E17 — workload-suite throughput and cache absorption.

Runs a curated suite end-to-end through the engine twice against one
store: the cold pass executes every job of the suite's multi-family
grid, the warm pass must be absorbed entirely by the content-hash
cache. Asserts (a) the cold pass covers ≥ 4 graph families and ≥ 2
terminal placements, (b) the warm pass executes zero jobs, and (c)
cached reads return byte-identical records. pytest-benchmark times the
warm pass — the cache-hit path is the suite subsystem's hot loop (CI
re-runs land there), so its latency is the figure that matters.

Environment knobs:

* ``E17_SUITE`` — suite name to drive (default ``smoke``).
"""

import os

from benchmarks.conftest import print_table
from repro.engine import SUITES, ResultStore, run_suite

SUITE = os.environ.get("E17_SUITE", "smoke")


def _run(store_path):
    suite = SUITES.get(SUITE)
    store = ResultStore(store_path)
    return run_suite(suite.scenarios, store=store, parallel=False)


def test_e17_suite_cold_then_cached(benchmark, tmp_path):
    store_path = tmp_path / "suite.jsonl"
    suite = SUITES.get(SUITE)

    cold = _run(store_path)
    assert sum(stats.executed for stats in cold) == suite.job_count()
    assert sum(stats.cached for stats in cold) == 0

    cold_records = {
        record["key"]: record
        for stats in cold
        for record in stats.records
    }
    families = {spec.family for spec in suite.scenarios}
    placements = {
        record["placement"] for record in cold_records.values()
    }
    assert len(families) >= 4, f"suite {SUITE} spans only {families}"
    assert len(placements) >= 2, f"suite {SUITE} spans only {placements}"

    # The warm pass is the benchmark target: a fresh store instance
    # re-parses the file, re-derives every cache key, and executes
    # nothing.
    warm = benchmark.pedantic(
        lambda: _run(store_path), rounds=3, iterations=1
    )
    assert sum(stats.executed for stats in warm) == 0
    assert sum(stats.cached for stats in warm) == suite.job_count()
    for stats in warm:
        for record in stats.records:
            assert record == cold_records[record["key"]]

    rows = [
        (
            stats.scenario,
            next(
                spec.family
                for spec in suite.scenarios
                if spec.name == stats.scenario
            ),
            stats.executed,
            stats.cached,
            len(stats.records),
        )
        for stats in warm
    ]
    print_table(
        f"E17: suite '{SUITE}' warm pass (cold executed "
        f"{suite.job_count()} jobs across {len(families)} families)",
        ("scenario", "family", "executed", "cached", "records"),
        rows,
    )
