"""E3 — Theorem 4.17: distributed deterministic algorithm, O(ks + t) rounds.

Sweeps k on a fixed ring-of-blobs graph (controllable s) and checks the
measured round counts grow at most linearly in k·s + t, while the output
matches the centralized Algorithm 1.
"""

import random

from benchmarks.conftest import print_table
from repro.core import distributed_moat_growing, moat_growing
from repro.workloads import ring_of_blobs, terminals_on_graph

K_SWEEP = (1, 2, 4, 6)


def run_sweep():
    graph = ring_of_blobs(8, 3, random.Random(7))
    s = graph.shortest_path_diameter()
    rows = []
    for k in K_SWEEP:
        inst = terminals_on_graph(graph, k, 2, random.Random(11))
        dist = distributed_moat_growing(inst)
        central = moat_growing(inst)
        dist.solution.assert_feasible(inst)
        # Ring-of-blobs weights contain ties, so the two runs may select
        # different (equally short) merge paths; the paper's comparability
        # assumes distinct path weights (Section 2). Require both outputs
        # within the 2-approximation certified by the dual lower bound.
        assert dist.solution.weight <= 2 * central.dual_lower_bound
        assert central.solution.weight <= 2 * central.dual_lower_bound
        t = inst.num_terminals
        rows.append(
            (
                k,
                s,
                t,
                dist.rounds,
                dist.num_phases,
                k * s + t,
                f"{dist.rounds / (k * s + t):.1f}",
            )
        )
    return rows


def test_e3_deterministic_rounds(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E3: deterministic rounds vs O(ks + t) (ring-of-blobs, sweep k)",
        ("k", "s", "t", "rounds", "phases", "ks+t", "rounds/(ks+t)"),
        rows,
    )
    # Shape: the normalized cost stays bounded (no super-linear blowup).
    normalized = [float(r[6]) for r in rows]
    assert max(normalized) <= 10 * max(1.0, min(normalized))
    # Rounds increase with k on a fixed graph.
    assert rows[0][3] <= rows[-1][3]
