"""E21 — indexed vs full-scan cache-key lookup on the result store.

The runner's cache check and the serve daemon's hot-map preload both
reduce to "fetch the record for this content-hash key". Historically
that was a full-file JSONL parse per reader; the sidecar index
(:mod:`repro.engine.index`) turns it into a B-tree probe plus one
seek-read. This benchmark pins the win: the same deterministic lookup
mix (:mod:`repro.engine.storebench`) against the same synthetic store
at 10^3 / 10^4 / 10^5 rows, once through pure scans and once through
the index.

Committed as ``BENCH_store.json`` and re-measured by ``repro bench
check`` (the ``e21-store`` driver): ``rows`` / ``lookups`` are exact
columns, wall time gets the gate's usual tolerance. Acceptance bar —
asserted only on the full default sweep: indexed lookups must be at
least **20x** faster than scans at 10^5 rows.

Environment knobs:

* ``E21_SIZES`` — comma-separated row counts (default
  ``64,1000,10000,100000``; the ``64`` entry exists so the CI gate,
  which caps at n=64, always has an entry to re-measure).
* ``E21_LOOKUPS`` — lookups timed per entry (default ``16``).
* ``E21_OUTPUT`` — where to write the JSON (default
  ``BENCH_store.json`` in the repo root).
"""

import json
import os
import tempfile
from pathlib import Path

from benchmarks.conftest import print_table
from repro.engine.storebench import (
    DEFAULT_LOOKUPS,
    STORE_MODES,
    build_store,
    measure_mode,
)

SIZES = [
    int(size)
    for size in os.environ.get("E21_SIZES", "64,1000,10000,100000").split(",")
]
LOOKUPS = int(os.environ.get("E21_LOOKUPS", str(DEFAULT_LOOKUPS)))
OUTPUT = Path(
    os.environ.get(
        "E21_OUTPUT", Path(__file__).resolve().parent.parent / "BENCH_store.json"
    )
)
#: Indexed lookups must beat scans by at least this factor at 10^5 rows.
SPEEDUP_BAR = 20.0
BAR_AT_ROWS = 100_000


def measure_all():
    entries = []
    with tempfile.TemporaryDirectory(prefix="repro-e21-") as tmp:
        for rows in SIZES:
            path = Path(tmp) / f"store-{rows}.jsonl"
            build_store(path, rows)  # one store, both modes measure it
            for mode in STORE_MODES:
                entries.append(
                    measure_mode(rows, mode, lookups=LOOKUPS, path=path)
                )
    return entries


def test_e21_store_lookup(benchmark):
    entries = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    by_size = {}
    for entry in entries:
        by_size.setdefault(entry["rows"], {})[entry["backend"]] = entry
    speedups = {
        str(rows): (
            modes["scan"]["seconds"] / modes["indexed"]["seconds"]
            if modes["indexed"]["seconds"] > 0
            else float("inf")
        )
        for rows, modes in by_size.items()
    }
    print_table(
        f"E21: {LOOKUPS} cache-key lookups, indexed vs full scan",
        ("rows", "mode", "seconds", "per lookup", "build", "speedup"),
        [
            (
                entry["rows"],
                entry["backend"],
                f"{entry['seconds']:.4f}",
                f"{entry['per_lookup_ms']:.3f} ms",
                f"{entry['build_seconds']:.3f}s",
                f"{speedups[str(entry['rows'])]:.1f}x"
                if entry["backend"] == "indexed"
                else "",
            )
            for entry in entries
        ],
    )
    for entry in entries:
        assert entry["found"] == entry["lookups"], (
            f"{entry['backend']}@{entry['rows']}: "
            f"{entry['found']}/{entry['lookups']} lookups found their row"
        )
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(
        json.dumps(
            {
                "experiment": "e21-store",
                "workload": {"lookups": LOOKUPS},
                "entries": entries,
                "speedups": speedups,
                "speedup_bar": SPEEDUP_BAR,
                "bar_at_rows": BAR_AT_ROWS,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    # Acceptance bar (only on the full default sweep — a reduced E21_*
    # environment is an artifact-freshness run, not a judgment).
    if BAR_AT_ROWS in by_size and LOOKUPS >= DEFAULT_LOOKUPS:
        speedup = speedups[str(BAR_AT_ROWS)]
        assert speedup >= SPEEDUP_BAR, (
            f"indexed lookup is only {speedup:.1f}x faster than a full "
            f"scan at {BAR_AT_ROWS} rows (bar {SPEEDUP_BAR}x)"
        )
