"""E20 — overhead of the observability layer on the serve daemon.

Measures what instrumenting the daemon *costs*: the same warm-hit
request stream (one pre-warmed ~1 ms single-job spec, submitted N
times — every one a guaranteed cache hit) is timed through two daemon
configurations:

* **instrumented** — the recommended production setup: JSONL telemetry
  stream plus the flight recorder attached;
* **detached** — the same daemon with no sinks at all (``--no-flight``,
  no ``--telemetry``). The metrics registry is always on either way, so
  the delta is the cost of event fan-out and durable sinks.

Each mode is measured ``E20_REPEATS`` times and the fastest run is
committed (separate daemon launches are noisy; the minimum is the
honest per-request cost). Acceptance bar: instrumented may cost at most
**5%** over detached. ``BENCH_observe.json`` entries carry exact
``requests``/``hits`` columns so ``repro bench check`` can re-measure
them like the engine benches.

Environment knobs:

* ``E20_REQUESTS`` — warm-hit requests per measurement (default ``48``;
  this is the entry's ``n``, kept under the gate's size cap).
* ``E20_REPEATS`` — measurement repeats per mode (default ``3``).
* ``E20_OUTPUT`` — where to write the JSON (default
  ``BENCH_observe.json`` in the repo root).
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import print_table
from repro.serve.loadgen import DEFAULT_WORKLOAD, OBSERVE_MODES, measure_observe

REQUESTS = int(os.environ.get("E20_REQUESTS", "48"))
REPEATS = int(os.environ.get("E20_REPEATS", "3"))
OUTPUT = Path(
    os.environ.get(
        "E20_OUTPUT", Path(__file__).resolve().parent.parent / "BENCH_observe.json"
    )
)
#: Instrumented warm-hit latency may cost at most 5% over detached.
OVERHEAD_BAR = 1.05


def measure_all():
    best = {}
    for mode in OBSERVE_MODES:
        for _ in range(REPEATS):
            entry = measure_observe(DEFAULT_WORKLOAD, REQUESTS, mode)
            if mode not in best or entry["seconds"] < best[mode]["seconds"]:
                best[mode] = entry
    return [best[mode] for mode in OBSERVE_MODES]


def test_e20_observe_overhead(benchmark):
    entries = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    by_mode = {entry["backend"]: entry for entry in entries}
    overhead = (
        by_mode["instrumented"]["seconds"] / by_mode["detached"]["seconds"]
        if by_mode["detached"]["seconds"] > 0
        else 0.0
    )
    print_table(
        f"E20: observability overhead, best of {REPEATS}×{REQUESTS} warm hits",
        ("mode", "requests", "hits", "seconds", "req/s", "per req"),
        [
            (
                entry["backend"],
                entry["requests"],
                entry["hits"],
                f"{entry['seconds']:.3f}",
                f"{entry['rps']:.0f}",
                f"{entry['seconds'] / entry['requests'] * 1000:.3f} ms",
            )
            for entry in entries
        ],
    )
    print(f"\ninstrumented / detached: {overhead:.3f}x (bar {OVERHEAD_BAR}x)")
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(
        json.dumps(
            {
                "experiment": "e20-observe",
                "workload": dict(DEFAULT_WORKLOAD),
                "requests": REQUESTS,
                "repeats": REPEATS,
                "entries": entries,
                "overhead": overhead,
                "overhead_bar": OVERHEAD_BAR,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    # Acceptance bar (only on the full default sweep — a reduced E20_*
    # environment is an artifact-freshness run, not a judgment).
    if REQUESTS >= 48 and REPEATS >= 3:
        assert overhead <= OVERHEAD_BAR, (
            f"observability costs {overhead:.3f}x over a detached daemon "
            f"(> {OVERHEAD_BAR}x bar)"
        )
