"""E2 — Theorem 4.2: Algorithm 2 (rounded radii) is a (2+ε)-approximation.

Sweeps ε and measures ratio against the exact optimum plus the growth-phase
count of Lemma F.1. The sweep runs through the experiment engine: ε travels
in the spec's ``algo_grid`` (as a fraction string, keeping records exactly
JSON-reproducible) and the exact optimum / ratio comes from the engine's
``exact`` mode.
"""

from fractions import Fraction

from benchmarks.conftest import print_table
from repro.engine import ScenarioSpec, run_spec

EPSILONS = ("1/10", "1/2", "1")
SPEC = ScenarioSpec(
    name="e2-rounded-ratio",
    family="gnp",
    algorithms=("rounded",),
    grid={"n": [10, 12, 14], "p": 0.35, "k": 2, "component_size": 2},
    algo_grid={"eps": list(EPSILONS)},
    seeds=2,
    exact=True,
    description="Algorithm 2 ratio and growth phases per ε",
)


def run_sweep():
    stats = run_spec(SPEC, parallel=False)
    by_eps = {}
    for record in stats.records:
        by_eps.setdefault(record["algo_params"]["eps"], []).append(
            record["metrics"]
        )
    rows = []
    for eps in EPSILONS:
        metrics = by_eps[eps]
        worst = max(m["ratio"] for m in metrics)
        phases = max(m["growth_phases"] for m in metrics)
        rows.append(
            (
                f"{float(Fraction(eps)):.2f}",
                f"{worst:.3f}",
                f"{2 + float(Fraction(eps)):.2f}",
                phases,
            )
        )
    return rows


def test_e2_rounded_ratio(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E2: Algorithm 2 ratio and growth phases per ε",
        ("epsilon", "worst ratio", "paper bound 2+ε", "max growth phases"),
        rows,
    )
    for eps_str, worst, bound, _ in rows:
        assert float(worst) <= float(bound)
    # Fewer phases for coarser ε.
    assert rows[0][3] >= rows[-1][3]
