"""E2 — Theorem 4.2: Algorithm 2 (rounded radii) is a (2+ε)-approximation.

Sweeps ε and measures ratio against the exact optimum plus the growth-phase
count of Lemma F.1.
"""

import random
from fractions import Fraction

from benchmarks.conftest import print_table
from repro.core.rounded import num_growth_phases, rounded_moat_growing
from repro.exact import steiner_forest_cost
from repro.workloads import random_instance

EPSILONS = (Fraction(1, 10), Fraction(1, 2), Fraction(1))
SEEDS = range(8)


def run_sweep():
    rows = []
    for eps in EPSILONS:
        worst = 0.0
        phases = []
        for seed in SEEDS:
            rng = random.Random(seed)
            inst = random_instance(
                rng.randint(10, 14), rng.randint(1, 3), rng
            )
            opt = steiner_forest_cost(inst)
            if opt == 0:
                continue
            result = rounded_moat_growing(inst, eps)
            result.solution.assert_feasible(inst)
            worst = max(worst, result.solution.weight / opt)
            phases.append(num_growth_phases(result))
        rows.append(
            (
                f"{float(eps):.2f}",
                f"{worst:.3f}",
                f"{2 + float(eps):.2f}",
                max(phases),
            )
        )
    return rows


def test_e2_rounded_ratio(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E2: Algorithm 2 ratio and growth phases per ε",
        ("epsilon", "worst ratio", "paper bound 2+ε", "max growth phases"),
        rows,
    )
    for eps_str, worst, bound, _ in rows:
        assert float(worst) <= float(bound)
    # Fewer phases for coarser ε.
    assert rows[0][3] >= rows[-1][3]
