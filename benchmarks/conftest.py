"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment row of EXPERIMENTS.md: it sweeps
the experiment's parameters, prints a table (parameters, paper-claimed
bound, measured value), asserts the *shape* of the paper's claim, and
reports one representative timing through pytest-benchmark.
"""

import random

import pytest

from repro.engine.report import format_table


def print_table(title, header, rows):
    """Print an experiment table in EXPERIMENTS.md format."""
    print(f"\n== {title} ==")
    print(format_table(header, rows))


@pytest.fixture
def seeded_rng():
    return random.Random(0x5EED)
