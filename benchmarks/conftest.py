"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment row of EXPERIMENTS.md: it sweeps
the experiment's parameters, prints a table (parameters, paper-claimed
bound, measured value), asserts the *shape* of the paper's claim, and
reports one representative timing through pytest-benchmark.
"""

import random

import pytest


def print_table(title, header, rows):
    """Print an experiment table in EXPERIMENTS.md format."""
    print(f"\n== {title} ==")
    widths = [
        max(len(str(header[i])), max((len(str(r[i])) for r in rows), default=0))
        for i in range(len(header))
    ]
    line = " | ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(line)
    print("-" * len(line))
    for row in rows:
        print(" | ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def seeded_rng():
    return random.Random(0x5EED)
