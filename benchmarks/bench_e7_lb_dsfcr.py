"""E7 — Figure 1 (left) / Lemma 3.1: the DSF-CR Set-Disjointness gadget.

Instantiates the reduction for growing universes, verifies the heavy-edge
dichotomy (a ρ-approximation uses a heavy edge iff A ∩ B ≠ ∅), and meters
the bits an actual algorithm pushes across the 4-edge Alice–Bob cut —
the Ω(n)-shaped quantity the reduction exploits.
"""

import random

from benchmarks.conftest import print_table
from repro.lowerbounds import (
    cr_dichotomy_holds,
    dsf_cr_gadget,
    measure_cut_traffic,
    random_disjointness_sets,
)

UNIVERSES = (4, 8, 16)


def run_sweep():
    rows = []
    for universe in UNIVERSES:
        for intersecting in (False, True):
            rng = random.Random(universe * 2 + intersecting)
            a, b = random_disjointness_sets(universe, rng, intersecting)
            gadget = dsf_cr_gadget(universe, a, b)
            ok = cr_dichotomy_holds(gadget)
            bits = measure_cut_traffic(gadget)
            rows.append(
                (
                    universe,
                    intersecting,
                    gadget.instance.graph.num_nodes,
                    gadget.instance.graph.unweighted_diameter(),
                    ok,
                    bits,
                )
            )
    return rows


def test_e7_lb_dsfcr(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E7: DSF-CR gadget (Lemma 3.1) — dichotomy + cut traffic",
        ("universe", "A∩B≠∅", "n", "D", "dichotomy", "cut bits"),
        rows,
    )
    assert all(r[4] for r in rows)
    assert all(r[3] <= 4 for r in rows)  # Lemma 3.1: diameter ≤ 4
    # Cut traffic grows with the universe (Ω(n) shape).
    small = min(r[5] for r in rows if r[0] == UNIVERSES[0])
    large = max(r[5] for r in rows if r[0] == UNIVERSES[-1])
    assert large > small
