"""E15 — network-model sweep: one scenario × adverse channels.

Crosses one graph family / algorithm pair with four network conditions
through the experiment engine and checks the model-layer invariants: the
solver's output is channel-independent (the network is a delivery layer,
not an algorithm change), every condition gets its own cache key, and the
synchronizer-emulation overhead ranks conditions the obvious way
(reliable ≤ lossy ≤ delay for these parameters). A second benchmark runs
the flooding node program under increasing loss on the message-level
simulator and checks convergence degrades monotonically in drop rate.
"""

import random

from benchmarks.conftest import print_table
from repro.congest.simulator import FloodMaxLeaderElection, Simulator
from repro.engine import ScenarioSpec, run_spec
from repro.netmodel import LossyChannel
from repro.workloads import random_connected_graph

NETWORKS = [
    "reliable",
    {"model": "lossy", "params": {"drop_p": 0.1, "retransmit": 1}},
    {"model": "delay", "params": {"max_delay": 3}},
    {"model": "bandwidth", "params": {"cap_bits": 8}},
]

SPEC = ScenarioSpec(
    name="e15-network-models",
    family="gnp",
    algorithms=("distributed",),
    grid={"n": 20, "p": 0.25, "k": 2, "component_size": 2},
    network=NETWORKS,
    seeds=2,
    description="one scenario × four network conditions",
)


def run_sweep():
    stats = run_spec(SPEC, parallel=False)
    by_model = {}
    for record in stats.records:
        metrics = record["metrics"]
        entry = by_model.setdefault(
            record["network_model"],
            {"keys": set(), "weights": [], "rounds": [], "emulated": []},
        )
        entry["keys"].add(record["key"])
        entry["weights"].append(metrics["weight"])
        entry["rounds"].append(metrics["rounds"])
        entry["emulated"].append(
            metrics.get("emulated_rounds", metrics["rounds"])
        )
    rows = [
        (
            model,
            len(entry["keys"]),
            f"{sum(entry['weights']) / len(entry['weights']):.1f}",
            f"{sum(entry['rounds']) / len(entry['rounds']):.1f}",
            f"{sum(entry['emulated']) / len(entry['emulated']):.1f}",
        )
        for model, entry in sorted(by_model.items())
    ]
    return by_model, rows


def test_e15_network_sweep(benchmark):
    by_model, rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E15: one scenario × network conditions (distributed, G(n,p))",
        ("network", "cache keys", "mean W", "mean rounds", "mean emulated"),
        rows,
    )
    assert set(by_model) == {"reliable", "lossy", "delay", "bandwidth"}
    # Distinct cache keys per condition; no row shadowing across models.
    all_keys = [k for entry in by_model.values() for k in entry["keys"]]
    assert len(set(all_keys)) == len(all_keys)
    # The channel never changes the computed forest.
    weights = {tuple(sorted(entry["weights"])) for entry in by_model.values()}
    assert len(weights) == 1
    # Emulation overhead ranks: clean ≤ lossy(0.1, 1 retry) ≤ delay(3).
    def mean(xs):
        return sum(xs) / len(xs)

    assert (
        mean(by_model["reliable"]["emulated"])
        <= mean(by_model["lossy"]["emulated"])
        <= mean(by_model["delay"]["emulated"])
    )


def test_e15_flood_under_loss(benchmark):
    """Flood convergence degrades monotonically with the drop rate."""
    graph = random_connected_graph(24, 0.2, random.Random(11))

    def run_probe():
        rows = []
        for drop_p in (0.0, 0.2, 0.4):
            programs = {v: FloodMaxLeaderElection() for v in graph.nodes}
            sim = Simulator(
                graph,
                programs,
                network=LossyChannel(drop_p=drop_p, retransmit=2),
                net_seed=13,
            )
            rounds = sim.run_to_completion()
            correct = sum(
                p.leader == max(graph.nodes) for p in programs.values()
            )
            rows.append(
                (drop_p, rounds, correct, sim.network.stats["dropped"])
            )
        return rows

    rows = benchmark.pedantic(run_probe, rounds=1, iterations=1)
    print_table(
        "E15: flooding under i.i.d. loss (n=24, retransmit=2)",
        ("drop_p", "rounds", "correct nodes", "dropped"),
        rows,
    )
    # Loss-free flooding informs everyone; drops only lose information.
    assert rows[0][2] == graph.num_nodes
    assert rows[0][3] == 0
    for lossless, lossy in zip(rows, rows[1:]):
        assert lossy[2] <= lossless[2] or lossy[3] > lossless[3]
