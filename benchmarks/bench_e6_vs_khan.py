"""E6 — headline comparison (Abstract): improved randomized Õ(s + k) vs
Khan et al. Õ(sk).

On a fixed s-heavy graph, sweeps the number of components k and compares
the first-stage routing rounds of the pipelined selection against the naive
selection of [14]. The paper's claim: the gap widens with k (who wins:
ours; by what factor: up to ~k).
"""

import random

from benchmarks.conftest import print_table
from repro.baselines import khan_steiner_forest
from repro.randomized import randomized_steiner_forest
from repro.workloads import ring_of_blobs, terminals_on_graph

K_SWEEP = (2, 4, 8)


def run_sweep():
    graph = ring_of_blobs(10, 3, random.Random(2))
    s = graph.shortest_path_diameter()
    rows = []
    for k in K_SWEEP:
        inst = terminals_on_graph(graph, k, 2, random.Random(9))
        ours = randomized_steiner_forest(
            inst, rng=random.Random(4), force_truncation=False
        )
        khan = khan_steiner_forest(inst, rng=random.Random(4))
        rows.append(
            (
                k,
                s,
                ours.first_stage.routing_rounds,
                khan.first_stage.routing_rounds,
                ours.rounds,
                khan.rounds,
                ours.solution.weight,
                khan.solution.weight,
            )
        )
    return rows


def test_e6_vs_khan(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E6: improved randomized vs Khan et al. [14] (sweep k, fixed s)",
        ("k", "s", "routing ours", "routing khan", "rounds ours",
         "rounds khan", "W ours", "W khan"),
        rows,
    )
    # Ours never routes slower, and the advantage is widest at large k.
    for row in rows:
        assert row[2] <= row[3]
    gap_small = rows[0][3] - rows[0][2]
    gap_large = rows[-1][3] - rows[-1][2]
    assert gap_large >= gap_small
