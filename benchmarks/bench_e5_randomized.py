"""E5 — Theorem 5.2: the randomized algorithm's ratio O(log n) and rounds
Õ(k + min{s, √n} + D).

Sweeps n with proportional terminal counts; reports the measured
approximation ratio (vs exact OPT on the sizes where it is computable) and
round counts normalized by k + min{s, √n} + D.
"""

import math
import random

from benchmarks.conftest import print_table
from repro.exact import steiner_forest_cost
from repro.randomized import randomized_steiner_forest
from repro.workloads import random_instance

N_SWEEP = (12, 18, 24)


def run_sweep():
    rows = []
    for n in N_SWEEP:
        rng = random.Random(n)
        inst = random_instance(n, 3, rng)
        opt = steiner_forest_cost(inst)
        result = randomized_steiner_forest(inst, rng=random.Random(1))
        result.solution.assert_feasible(inst)
        graph = inst.graph
        s = graph.shortest_path_diameter()
        d = graph.unweighted_diameter()
        k = inst.num_components
        denom = k + min(s, math.isqrt(n)) + d
        ratio = result.solution.weight / opt if opt else 1.0
        rows.append(
            (
                n,
                k,
                s,
                d,
                result.rounds,
                denom,
                f"{ratio:.3f}",
                f"{math.log2(n):.1f}",
                result.embedding.max_paths_per_node,
            )
        )
    return rows


def test_e5_randomized(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E5: randomized algorithm — ratio vs O(log n), rounds vs "
        "Õ(k + min{s,√n} + D)",
        ("n", "k", "s", "D", "rounds", "k+min(s,√n)+D", "ratio",
         "log2 n", "paths/node"),
        rows,
    )
    for row in rows:
        n, ratio, log_n = row[0], float(row[6]), float(row[7])
        assert ratio <= 4 * log_n  # generous constant on O(log n)
        # O(log n) embedding paths per node (paper's structural claim).
        assert row[8] <= 12 * log_n + 4
