"""E11 — ablation of Section 5's key insight: per-destination round-robin
pipelining vs naive sequential routing.

The same embedding and label-carrier schedule is routed twice: with
per-destination queues (one message per destination tree per round,
time-multiplexed over the O(log n) trees through each node) and naively
(one message per node per round). The paper's claim: pipelining brings the
selection from Õ(sk) to Õ(s + k).
"""

import random

from benchmarks.conftest import print_table
from repro.congest import CongestRun
from repro.randomized import build_embedding, first_stage_selection
from repro.workloads import ring_of_blobs, terminals_on_graph

K_SWEEP = (2, 4, 8)


def run_sweep():
    graph = ring_of_blobs(10, 3, random.Random(6))
    s = graph.shortest_path_diameter()
    rows = []
    for k in K_SWEEP:
        inst = terminals_on_graph(graph, k, 2, random.Random(8))
        run = CongestRun(graph)
        emb = build_embedding(graph, run, random.Random(5))
        piped = first_stage_selection(inst, emb, CongestRun(graph))
        naive = first_stage_selection(
            inst, emb, CongestRun(graph), naive=True
        )
        rows.append(
            (
                k,
                s,
                piped.routing_rounds,
                naive.routing_rounds,
                piped.multiplex_factor,
                f"{naive.routing_rounds / max(1, piped.routing_rounds):.2f}",
            )
        )
    return rows


def test_e11_pipelining_ablation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E11: routing rounds — pipelined vs naive (sweep k)",
        ("k", "s", "pipelined", "naive", "multiplex", "speedup"),
        rows,
    )
    for row in rows:
        assert row[2] <= row[3]
    # The speedup does not shrink as k grows.
    assert float(rows[-1][5]) >= float(rows[0][5]) * 0.8
