"""E1 — Theorem 4.1: Algorithm 1 (moat growing) is a 2-approximation.

Measures the exact approximation ratio of the centralized moat-growing
algorithm against the exact (partition-DP) optimum on random instances, and
checks the certified dual lower bound of Lemma C.4.
"""

import random
from statistics import mean

from benchmarks.conftest import print_table
from repro.core import moat_growing
from repro.exact import steiner_forest_cost
from repro.workloads import random_instance

SEEDS = range(12)


def run_sweep():
    rows = []
    for seed in SEEDS:
        rng = random.Random(seed)
        inst = random_instance(rng.randint(10, 16), rng.randint(1, 3), rng)
        opt = steiner_forest_cost(inst)
        if opt == 0:
            continue
        result = moat_growing(inst)
        result.solution.assert_feasible(inst)
        ratio = result.solution.weight / opt
        dual_ok = result.dual_lower_bound <= opt
        rows.append(
            (
                seed,
                inst.graph.num_nodes,
                inst.num_components,
                opt,
                result.solution.weight,
                f"{ratio:.3f}",
                dual_ok,
            )
        )
    return rows


def test_e1_moat_ratio(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E1: Algorithm 1 ratio vs exact OPT (paper bound: ≤ 2)",
        ("seed", "n", "k", "OPT", "W(F)", "ratio", "dual≤OPT"),
        rows,
    )
    ratios = [float(r[5]) for r in rows]
    assert rows, "sweep produced no non-trivial instances"
    assert max(ratios) <= 2.0
    assert all(r[6] for r in rows)
    print(f"max ratio {max(ratios):.3f}, mean {mean(ratios):.3f} (bound 2)")
