"""E13 — Lemmas 2.3 / 2.4: input transforms in O(D + t) / O(D + k) rounds.

Sweeps the number of requests/labels on a fixed graph and confirms the
measured round counts stay within a constant of D + t (resp. D + k), while
outputs match the centralized reference transforms.
"""

import random

from benchmarks.conftest import print_table
from repro.congest import (
    CongestRun,
    distributed_minimalize,
    distributed_requests_to_components,
)
from repro.model import ConnectionRequestInstance, SteinerForestInstance
from repro.model.transforms import minimalize_instance, requests_to_components
from repro.workloads import random_connected_graph

SIZES = (2, 4, 8)


def run_sweep():
    graph = random_connected_graph(24, 0.15, random.Random(21))
    d = graph.unweighted_diameter()
    nodes = list(graph.nodes)
    rows = []
    for size in SIZES:
        rng = random.Random(size)
        shuffled = nodes[:]
        rng.shuffle(shuffled)
        requests = {
            shuffled[2 * i]: {shuffled[2 * i + 1]} for i in range(size)
        }
        cr = ConnectionRequestInstance(graph, requests)
        run_cr = CongestRun(graph)
        got = distributed_requests_to_components(cr, run_cr)
        assert got.labels == requests_to_components(cr).labels

        labels = {
            shuffled[i]: f"L{i % size}" for i in range(2 * size)
        }
        ic = SteinerForestInstance(graph, labels)
        run_ic = CongestRun(graph)
        got_min = distributed_minimalize(ic, run_ic)
        assert got_min.labels == minimalize_instance(ic).labels

        t = cr.num_terminals
        k = ic.num_components
        rows.append(
            (
                size,
                d,
                t,
                run_cr.rounds,
                f"{run_cr.rounds / (d + t):.1f}",
                k,
                run_ic.rounds,
                f"{run_ic.rounds / (d + k):.1f}",
            )
        )
    return rows


def test_e13_transforms(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E13: transforms — rounds vs O(D+t) (Lemma 2.3) and O(D+k) "
        "(Lemma 2.4)",
        ("demands", "D", "t", "rounds CR→IC", "/(D+t)", "k",
         "rounds minimalize", "/(D+k)"),
        rows,
    )
    for row in rows:
        assert float(row[4]) <= 12
        assert float(row[7]) <= 12
