"""E16 — simulation-backend speedup curves (reference vs flatarray vs
sharded).

Runs FloodMax leader election on G(n, p) across the three execution
engines for a sweep of sizes, asserting (a) every backend computes the
identical execution (rounds, ledger messages, elected leaders) and (b)
the ``flatarray`` engine clears the ≥ 3× speedup bar over ``reference``
at n = 256 — the acceptance criterion for the backend subsystem. The
measurements land in ``BENCH_backends.json`` (the first entry in the
repo's perf trajectory; CI regenerates a tiny-size smoke version as an
artifact).

Environment knobs:

* ``E16_SIZES`` — comma-separated node counts (default ``64,128,256``).
* ``E16_OUTPUT`` — where to write the JSON (default
  ``BENCH_backends.json`` in the repo root).
"""

import json
import os
import random
import time
from pathlib import Path

from benchmarks.conftest import print_table
from repro.congest.simulator import FloodMaxLeaderElection, Simulator
from repro.simbackend import ShardedBackend
from repro.workloads import random_connected_graph

SIZES = [
    int(size)
    for size in os.environ.get("E16_SIZES", "64,128,256").split(",")
]
OUTPUT = Path(
    os.environ.get(
        "E16_OUTPUT", Path(__file__).resolve().parent.parent / "BENCH_backends.json"
    )
)
EDGE_P = 0.35
REPEATS = 3
SPEEDUP_BAR = 3.0  # flatarray vs reference at n = 256 (acceptance bar)


def _backends():
    return [
        ("reference", lambda: "reference"),
        ("flatarray", lambda: "flatarray"),
        ("sharded", lambda: ShardedBackend(num_shards=min(4, os.cpu_count() or 1))),
    ]


def _run_once(graph, backend):
    programs = {v: FloodMaxLeaderElection() for v in graph.nodes}
    # Time construction too: every engine pays its setup inside the
    # clock (flatarray's topology compile, sharded's worker spawn), so
    # the speedup comparison is end-to-end honest.
    started = time.perf_counter()
    sim = Simulator(graph, programs, backend=backend)
    rounds = sim.run_to_completion()
    elapsed = time.perf_counter() - started
    leaders = [programs[v].leader for v in graph.nodes]
    return elapsed, (rounds, sim.run.messages, leaders)


def measure_all():
    entries = []
    for n in SIZES:
        graph = random_connected_graph(n, EDGE_P, random.Random(n))
        fingerprints = {}
        for name, make in _backends():
            best = float("inf")
            for _ in range(REPEATS):
                elapsed, fingerprint = _run_once(graph, make())
                best = min(best, elapsed)
                fingerprints[name] = fingerprint
            entries.append(
                {
                    "n": n,
                    "backend": name,
                    "seconds": best,
                    "rounds": fingerprint[0],
                    "messages": fingerprint[1],
                }
            )
        # Conformance inside the benchmark: same rounds, traffic, result.
        assert len(set(map(repr, fingerprints.values()))) == 1, (
            f"backends diverged at n={n}: "
            f"{ {k: v[:2] for k, v in fingerprints.items()} }"
        )
    return entries


def _seconds(entries, n, backend):
    return next(
        e["seconds"] for e in entries if e["n"] == n and e["backend"] == backend
    )


def test_e16_backend_speedups(benchmark):
    entries = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    speedups = {
        backend: {
            str(n): _seconds(entries, n, "reference") / _seconds(entries, n, backend)
            for n in SIZES
        }
        for backend in ("flatarray", "sharded")
    }
    rows = [
        (
            entry["n"],
            entry["backend"],
            f"{entry['seconds'] * 1000:.1f}",
            entry["rounds"],
            entry["messages"],
            f"{_seconds(entries, entry['n'], 'reference') / entry['seconds']:.2f}x",
        )
        for entry in entries
    ]
    print_table(
        f"E16: FloodMax on G(n, {EDGE_P}) per execution engine",
        ("n", "backend", "best ms", "rounds", "messages", "speedup"),
        rows,
    )
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(
        json.dumps(
            {
                "experiment": "e16-backends",
                "workload": {"program": "floodmax", "family": "gnp", "p": EDGE_P},
                "sizes": SIZES,
                "repeats": REPEATS,
                "entries": entries,
                "speedup_vs_reference": speedups,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    # Acceptance bar: the flat-array fast path is ≥ 3× the reference
    # engine on gnp n=256 FloodMax (only checked when 256 is swept —
    # the CI smoke job runs a tiny size for artifact freshness).
    if 256 in SIZES:
        speedup_256 = speedups["flatarray"]["256"]
        assert speedup_256 >= SPEEDUP_BAR, (
            f"flatarray speedup at n=256 is {speedup_256:.2f}x "
            f"(< {SPEEDUP_BAR}x bar)"
        )
    # The fast path must never lose to the reference engine outright —
    # only asserted at sizes where runs last long enough that scheduler
    # noise cannot flip the comparison (the n=32 CI smoke is exempt).
    assert all(
        speedups["flatarray"][str(n)] >= 1.0 for n in SIZES if n >= 128
    )
