"""E12 — ablation (Section 4.2): the ε trade-off.

Lemma F.1: the number of growth phases is O(log WD / ε), while Theorem 4.2
bounds the ratio by 2 + ε. Sweeping ε shows the rounds-vs-quality knob: the
sublinear algorithm's round count follows the growth-phase count.
"""

import random
from fractions import Fraction

from benchmarks.conftest import print_table
from repro.core import sublinear_moat_growing
from repro.exact import steiner_forest_cost
from repro.workloads import random_instance

EPSILONS = (Fraction(1, 20), Fraction(1, 4), Fraction(1), Fraction(2))


def run_sweep():
    inst = random_instance(14, 2, random.Random(12))
    opt = steiner_forest_cost(inst)
    rows = []
    for eps in EPSILONS:
        result = sublinear_moat_growing(inst, eps)
        result.solution.assert_feasible(inst)
        ratio = result.solution.weight / opt if opt else 1.0
        rows.append(
            (
                f"{float(eps):.2f}",
                result.num_growth_phases,
                result.num_merge_phases,
                result.rounds,
                f"{ratio:.3f}",
                f"{2 + float(eps):.2f}",
            )
        )
    return rows


def test_e12_epsilon_ablation(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E12: ε ablation — growth phases / rounds vs approximation",
        ("epsilon", "growth phases", "merge phases", "rounds", "ratio",
         "bound 2+ε"),
        rows,
    )
    # Finer ε: more growth phases and rounds.
    assert rows[0][1] >= rows[-1][1]
    assert rows[0][3] >= rows[-1][3]
    # All ratios within their bound.
    for row in rows:
        assert float(row[4]) <= float(row[5])
