"""E9 — Lemma 3.4 / Theorem 3.2: the Ω̃(s) term at constant D.

On path gadgets (t = 2, k = 1, D = 2) of growing shortest-path diameter s,
the deterministic algorithm's round count must grow linearly with s — the
parameter combination the lower bound shows is unavoidable.
"""

from benchmarks.conftest import print_table
from repro.analysis import fit_power_law
from repro.core import distributed_moat_growing
from repro.lowerbounds import path_gadget

LENGTHS = (4, 8, 16, 32)


def run_sweep():
    rows = []
    for length in LENGTHS:
        inst = path_gadget(length)
        result = distributed_moat_growing(inst)
        assert result.solution.weight == length
        rows.append(
            (
                length,
                inst.graph.unweighted_diameter(),
                result.rounds,
                f"{result.rounds / length:.2f}",
            )
        )
    return rows


def test_e9_lb_path(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E9: rounds vs s on path gadgets (D = 2, t = 2, k = 1)",
        ("s", "D", "rounds", "rounds/s"),
        rows,
    )
    # Rounds grow with s …
    measured = [r[2] for r in rows]
    assert measured == sorted(measured)
    assert measured[-1] > measured[0]
    # … and roughly linearly (bounded normalized cost).
    normalized = [float(r[3]) for r in rows]
    assert max(normalized) <= 8 * min(normalized)
    # Power-law fit: the exponent sits well below quadratic and the
    # marginal cost per unit of s is linear-ish (sub-linear exponents
    # occur because the fixed overhead dominates at small s).
    fit = fit_power_law([r[0] for r in rows], measured)
    print(f"power-law fit: rounds ≈ {fit.coefficient:.1f}·s^{fit.exponent:.2f} (R²={fit.r_squared:.3f})")
    assert 0.2 <= fit.exponent <= 1.5
