"""E8 — Figure 1 (right) / Lemma 3.3: the DSF-IC Set-Disjointness gadget.

Verifies the (a₀, b₀)-bridge dichotomy and the Ω(k)-shaped cut traffic over
the single-edge Alice–Bob cut.
"""

import random

from benchmarks.conftest import print_table
from repro.lowerbounds import (
    dsf_ic_gadget,
    ic_dichotomy_holds,
    measure_cut_traffic,
    random_disjointness_sets,
)

UNIVERSES = (4, 8, 16)


def run_sweep():
    rows = []
    for universe in UNIVERSES:
        for intersecting in (False, True):
            rng = random.Random(3 * universe + intersecting)
            a, b = random_disjointness_sets(universe, rng, intersecting)
            gadget = dsf_ic_gadget(universe, a, b)
            ok = ic_dichotomy_holds(gadget)
            bits = measure_cut_traffic(gadget)
            rows.append(
                (
                    universe,
                    intersecting,
                    gadget.instance.num_components,
                    ok,
                    bits,
                )
            )
    return rows


def test_e8_lb_dsfic(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E8: DSF-IC gadget (Lemma 3.3) — dichotomy + cut traffic",
        ("universe", "A∩B≠∅", "k", "dichotomy", "cut bits"),
        rows,
    )
    assert all(r[3] for r in rows)
    # Ω(k) shape: traffic grows with the universe for intersecting inputs.
    inter = [r for r in rows if r[1]]
    assert inter[-1][4] >= inter[0][4]
