"""E18 — profiling the paper pipeline and the ledger-backend speedup.

Runs the Section 4.1 distributed Steiner-forest pipeline (BFS setup,
reduced-weight Bellman–Ford decompositions, pipelined filtered upcast,
path selection) end-to-end under the three ledger engines the
``--backend`` axis selects for run-accepting solvers:

* ``reference`` — a plain :class:`~repro.congest.run.CongestRun`;
* ``flatarray`` — the compiled :class:`~repro.perf.FastCongestRun`;
* ``auto`` — the size heuristic (reference below 64 nodes, flatarray
  from there; see :data:`repro.simbackend.AUTO_THRESHOLD_NODES`).

Asserts (a) every engine computes the byte-identical execution
(solution weight and edges, rounds, messages, per-edge traffic, phase
breakdown), and (b) ``flatarray`` clears the **≥ 2× speedup bar** over
``reference`` at n = 256 — the perf acceptance criterion of the
profiling subsystem. A :class:`~repro.perf.PhaseProfiler` capture of
the largest instance per engine lands in the JSON alongside the curves,
so ``BENCH_profile.json`` shows *where* the pipeline spends its
rounds/messages/wall-time, not just the total.

Environment knobs:

* ``E18_SIZES`` — comma-separated node counts (default ``64,128,256``).
* ``E18_OUTPUT`` — where to write the JSON (default
  ``BENCH_profile.json`` in the repo root).
"""

import json
import os
import random
import time
from pathlib import Path

from benchmarks.conftest import print_table
from repro.core.distributed import distributed_moat_growing
from repro.perf import PhaseProfiler, make_ledger_run
from repro.workloads import random_instance

SIZES = [
    int(size)
    for size in os.environ.get("E18_SIZES", "64,128,256").split(",")
]
OUTPUT = Path(
    os.environ.get(
        "E18_OUTPUT", Path(__file__).resolve().parent.parent / "BENCH_profile.json"
    )
)
EDGE_P = 0.35
COMPONENTS = 3
REPEATS = 3
BACKENDS = ("reference", "flatarray", "auto")
SPEEDUP_BAR = 2.0  # flatarray vs reference at n = 256 (acceptance bar)


def _fingerprint(result):
    """Everything observable about one pipeline execution."""
    return (
        result.solution.weight,
        sorted(result.solution.edges, key=repr),
        result.rounds,
        result.run.messages,
        sorted(result.run.edge_messages.items(), key=repr),
        result.num_phases,
        dict(result.run.phase_rounds),
    )


def _run_once(instance, backend):
    # Ledger construction is inside the clock: the flatarray engine pays
    # its topology compile, so the speedup comparison is end-to-end.
    started = time.perf_counter()
    run = make_ledger_run(backend, instance.graph)
    result = distributed_moat_growing(instance, run=run)
    elapsed = time.perf_counter() - started
    return elapsed, result


def _profile_once(instance, backend):
    run = make_ledger_run(backend, instance.graph)
    profiler = PhaseProfiler()
    profiler.attach(run)
    distributed_moat_growing(instance, run=run)
    profiler.finish()
    return profiler.to_dict(bandwidth_bits=run.bandwidth_bits)


def measure_all():
    entries = []
    profiles = {}
    for n in SIZES:
        instance = random_instance(n, COMPONENTS, random.Random(n), p=EDGE_P)
        fingerprints = {}
        for backend in BACKENDS:
            best = float("inf")
            for _ in range(REPEATS):
                elapsed, result = _run_once(instance, backend)
                best = min(best, elapsed)
                fingerprints[backend] = _fingerprint(result)
            entries.append(
                {
                    "n": n,
                    "backend": backend,
                    "seconds": best,
                    "rounds": fingerprints[backend][2],
                    "messages": fingerprints[backend][3],
                    "weight": fingerprints[backend][0],
                }
            )
        # Conformance inside the benchmark: identical pipeline output.
        assert len(set(map(repr, fingerprints.values()))) == 1, (
            f"ledger engines diverged at n={n}"
        )
        if n == max(SIZES):
            profiles = {
                backend: _profile_once(instance, backend)
                for backend in BACKENDS
            }
    return entries, profiles


def _seconds(entries, n, backend):
    return next(
        e["seconds"] for e in entries if e["n"] == n and e["backend"] == backend
    )


def test_e18_pipeline_profile(benchmark):
    entries, profiles = benchmark.pedantic(
        measure_all, rounds=1, iterations=1
    )
    speedups = {
        backend: {
            str(n): _seconds(entries, n, "reference") / _seconds(entries, n, backend)
            for n in SIZES
        }
        for backend in ("flatarray", "auto")
    }
    rows = [
        (
            entry["n"],
            entry["backend"],
            f"{entry['seconds'] * 1000:.1f}",
            entry["rounds"],
            entry["messages"],
            f"{_seconds(entries, entry['n'], 'reference') / entry['seconds']:.2f}x",
        )
        for entry in entries
    ]
    print_table(
        f"E18: distributed pipeline on G(n, {EDGE_P}), k={COMPONENTS}, "
        "per ledger engine",
        ("n", "backend", "best ms", "rounds", "messages", "speedup"),
        rows,
    )
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(
        json.dumps(
            {
                "experiment": "e18-profile",
                "workload": {
                    "algorithm": "distributed",
                    "family": "gnp",
                    "p": EDGE_P,
                    "k": COMPONENTS,
                },
                "sizes": SIZES,
                "repeats": REPEATS,
                "entries": entries,
                "speedup_vs_reference": speedups,
                "profiles_at_max_size": profiles,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    # Acceptance bar: the compiled ledger is ≥ 2× the reference ledger
    # on the full pipeline at n = 256 (only checked when 256 is swept —
    # the CI smoke job runs a tiny size for artifact freshness).
    if 256 in SIZES:
        speedup_256 = speedups["flatarray"]["256"]
        assert speedup_256 >= SPEEDUP_BAR, (
            f"flatarray pipeline speedup at n=256 is {speedup_256:.2f}x "
            f"(< {SPEEDUP_BAR}x bar)"
        )
        # auto resolves to flatarray at this size, so it must track the
        # same curve (modulo timing noise); generously half the bar.
        assert speedups["auto"]["256"] >= SPEEDUP_BAR / 2
    # The fast path must never lose outright at sizes where runs last
    # long enough that scheduler noise cannot flip the comparison.
    assert all(
        speedups["flatarray"][str(n)] >= 1.0 for n in SIZES if n >= 128
    )
