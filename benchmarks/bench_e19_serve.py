"""E19 — load benchmark of the ``repro serve`` daemon.

Measures the serving layer, not the solver: every request is a
single-job ScenarioSpec over a ~1 ms moat-growing instance (see
:data:`repro.serve.loadgen.DEFAULT_WORKLOAD`), so the numbers are
dominated by framing, dedup, admission, and the warm pool — the things
this subsystem adds.

Two views land in ``BENCH_serve.json``:

* **throughput entries** — requests/sec at 0%, 50%, and 100% cache-hit
  ratios, each with 1 and 8 concurrent client processes. The request
  mix is constructed so the ``requests`` and ``hits`` columns are exact
  (warm names pre-submitted once; miss names unique per client), which
  is what lets ``repro bench check`` re-measure entries and compare
  those columns exactly, like the engine benches compare rounds.
* **latency** — the headline daemon-vs-CLI comparison: the same cached
  request answered by the warm daemon vs a cold ``repro batch``
  process. Acceptance bar: the warm hit is **≥ 5×** faster than paying
  a fresh interpreter.

Environment knobs:

* ``E19_REQUESTS`` — requests per client per config (default ``16``;
  this is the entry's ``n``, kept under the gate's size cap).
* ``E19_CLIENTS`` — comma-separated client counts (default ``1,8``).
* ``E19_RATIOS`` — comma-separated hit percentages (default ``0,50,100``).
* ``E19_OUTPUT`` — where to write the JSON (default
  ``BENCH_serve.json`` in the repo root).
"""

import json
import os
from pathlib import Path

from benchmarks.conftest import print_table
from repro.serve.loadgen import (
    DEFAULT_WORKLOAD,
    config_label,
    measure_config,
    measure_latency,
)

PER_CLIENT = int(os.environ.get("E19_REQUESTS", "16"))
CLIENTS = [
    int(count) for count in os.environ.get("E19_CLIENTS", "1,8").split(",")
]
RATIOS = [
    int(pct) for pct in os.environ.get("E19_RATIOS", "0,50,100").split(",")
]
OUTPUT = Path(
    os.environ.get(
        "E19_OUTPUT", Path(__file__).resolve().parent.parent / "BENCH_serve.json"
    )
)
SPEEDUP_BAR = 5.0  # warm daemon hit vs cold CLI on the same cached request
#: Aggregate-throughput bar for 8 clients vs 1, scaled to the machine:
#: parallel speedup is bounded by cores (the clients, the daemon loop,
#: and the workers all compete for them), so on a multi-core box we ask
#: for half the core-limited ideal, and on a single core we ask that
#: throughput merely *hold* under 8-way concurrency (no collapse from
#: contention) — the daemon still wins there on latency, not bandwidth.
CORES = os.cpu_count() or 1
SCALING_BAR = 0.7 if CORES == 1 else min(4.0, 0.5 * min(8, CORES))


def measure_all():
    entries = []
    for hit_pct in RATIOS:
        for clients in CLIENTS:
            label = config_label(hit_pct, clients)
            entries.append(
                measure_config(DEFAULT_WORKLOAD, PER_CLIENT, label)
            )
    latency = measure_latency(DEFAULT_WORKLOAD)
    return entries, latency


def _rps(entries, hit_pct, clients):
    label = config_label(hit_pct, clients)
    return next(e["rps"] for e in entries if e["backend"] == label)


def test_e19_serve_load(benchmark):
    entries, latency = benchmark.pedantic(measure_all, rounds=1, iterations=1)
    print_table(
        f"E19: repro serve, {PER_CLIENT} requests/client of a ~1 ms job",
        ("config", "requests", "hits", "executed", "seconds", "req/s"),
        [
            (
                entry["backend"],
                entry["requests"],
                entry["hits"],
                entry["executed"],
                f"{entry['seconds']:.3f}",
                f"{entry['rps']:.0f}",
            )
            for entry in entries
        ],
    )
    print(
        f"\nwarm daemon hit: {latency['warm_hit_seconds'] * 1000:.2f} ms   "
        f"cold CLI: {latency['cold_cli_seconds'] * 1000:.0f} ms   "
        f"speedup: {latency['speedup']:.1f}x"
    )
    OUTPUT.parent.mkdir(parents=True, exist_ok=True)
    OUTPUT.write_text(
        json.dumps(
            {
                "experiment": "e19-serve",
                "workload": dict(DEFAULT_WORKLOAD),
                "per_client_requests": PER_CLIENT,
                "clients": CLIENTS,
                "hit_ratios": RATIOS,
                "entries": entries,
                "latency": latency,
                "cpu_count": CORES,
                "scaling_bar": SCALING_BAR,
            },
            indent=2,
            sort_keys=True,
        )
        + "\n"
    )
    # Acceptance bars (only on the full default sweep — a reduced
    # E19_* environment is an artifact-freshness run, not a judgment).
    if 8 in CLIENTS and 1 in CLIENTS and set(RATIOS) >= {0, 100}:
        assert latency["speedup"] >= SPEEDUP_BAR, (
            f"warm daemon hit is only {latency['speedup']:.1f}x faster "
            f"than the cold CLI (< {SPEEDUP_BAR}x bar)"
        )
        for hit_pct in RATIOS:
            scaling = _rps(entries, hit_pct, 8) / _rps(entries, hit_pct, 1)
            assert scaling >= SCALING_BAR, (
                f"8 clients at {hit_pct}% hits scale only {scaling:.2f}x "
                f"over 1 client (< {SCALING_BAR}x bar)"
            )
