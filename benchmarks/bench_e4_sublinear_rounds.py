"""E4 — Corollary 4.21: the sublinear variant's Õ(sk + √min{st,n}) rounds.

Sweeps the number of terminals t at fixed k; the Section 4.1 algorithm pays
O(t) additively while the Section 4.2 algorithm replaces it by √min{st, n} —
the gap should widen as t grows. The sweep is driven through the experiment
engine: one :class:`ScenarioSpec` replaces the hand-rolled loop, and the
engine's instance-seeding discipline guarantees both algorithms (and every
t, since the graph seed ignores terminal placement) see the same graph.
"""

from benchmarks.conftest import print_table
from repro.engine import ScenarioSpec, run_spec

N = 36
SPEC = ScenarioSpec(
    name="e4-sublinear-rounds",
    family="gnp",
    algorithms=("distributed", "sublinear"),
    grid={"n": N, "p": 0.15, "k": 2, "component_size": [2, 4, 8]},
    seeds=1,
    description="Section 4.1 (O(ks+t)) vs Section 4.2 (Õ(sk+σ)), sweep t",
)


def run_sweep():
    stats = run_spec(SPEC, parallel=False)
    by_t = {}
    for record in stats.records:
        t = 2 * record["component_size"]
        by_t.setdefault(t, {})[record["algorithm"]] = record["metrics"]
    rows = []
    for t in sorted(by_t):
        plain, sub = by_t[t]["distributed"], by_t[t]["sublinear"]
        rows.append(
            (
                t,
                sub["sigma"],
                plain["rounds"],
                sub["rounds"],
                plain["weight"],
                sub["weight"],
            )
        )
    return rows


def test_e4_sublinear_rounds(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E4: Section 4.1 (O(ks+t)) vs Section 4.2 (Õ(sk+σ)), sweep t",
        ("t", "sigma", "rounds 4.1", "rounds 4.2", "W 4.1", "W 4.2"),
        rows,
    )
    # σ grows like √(st) and stays far below t·s.
    for t, sigma, *_ in rows:
        assert sigma * sigma <= N + 1  # σ = √min{st, n} ≤ √n
    # Both stay feasible with comparable weight (within the (2+ε)/2 gap).
    for row in rows:
        assert row[5] <= 1.5 * row[4] + 1


def test_e4_sublinear_single(benchmark):
    """Timing of one sublinear run (the benchmarked kernel)."""
    import random

    from repro.core import sublinear_moat_growing
    from repro.workloads import random_connected_graph, terminals_on_graph

    graph = random_connected_graph(30, 0.15, random.Random(5))
    inst = terminals_on_graph(graph, 2, 4, random.Random(3))
    result = benchmark.pedantic(
        lambda: sublinear_moat_growing(inst, 0.5), rounds=1, iterations=1
    )
    assert result.solution.is_feasible(inst)
