"""E4 — Corollary 4.21: the sublinear variant's Õ(sk + √min{st,n}) rounds.

Sweeps the number of terminals t at fixed k on a fixed graph; the
Section 4.1 algorithm pays O(t) additively while the Section 4.2 algorithm
replaces it by √min{st, n} — the gap should widen as t grows.
"""

import random

from benchmarks.conftest import print_table
from repro.core import distributed_moat_growing, sublinear_moat_growing
from repro.workloads import random_connected_graph, terminals_on_graph

T_SWEEP = (4, 8, 16)


def run_sweep():
    graph = random_connected_graph(36, 0.15, random.Random(5))
    rows = []
    for t in T_SWEEP:
        inst = terminals_on_graph(graph, 2, t // 2, random.Random(3))
        plain = distributed_moat_growing(inst)
        sub = sublinear_moat_growing(inst, 0.5)
        sub.solution.assert_feasible(inst)
        rows.append(
            (
                t,
                sub.sigma,
                plain.rounds,
                sub.rounds,
                plain.solution.weight,
                sub.solution.weight,
            )
        )
    return rows


def test_e4_sublinear_rounds(benchmark):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    print_table(
        "E4: Section 4.1 (O(ks+t)) vs Section 4.2 (Õ(sk+σ)), sweep t",
        ("t", "sigma", "rounds 4.1", "rounds 4.2", "W 4.1", "W 4.2"),
        rows,
    )
    # σ grows like √(st) and stays far below t·s.
    for t, sigma, *_ in rows:
        assert sigma * sigma <= 36 + 1  # σ = √min{st, n} ≤ √n
    # Both stay feasible with comparable weight (within the (2+ε)/2 gap).
    for row in rows:
        assert row[5] <= 1.5 * row[4] + 1


def test_e4_sublinear_single(benchmark):
    """Timing of one sublinear run (the benchmarked kernel)."""
    graph = random_connected_graph(30, 0.15, random.Random(5))
    inst = terminals_on_graph(graph, 2, 4, random.Random(3))
    result = benchmark.pedantic(
        lambda: sublinear_moat_growing(inst, 0.5), rounds=1, iterations=1
    )
    assert result.solution.is_feasible(inst)
