"""Golden-fixture pins for the store's schema-migration chain.

``tests/fixtures/store_v1.jsonl`` … ``store_v5.jsonl`` are hand-shaped
historical stores — rows exactly as each schema era wrote them, with
real content-hash cache keys. They pin three invariants:

* the declarative chain (:data:`repro.engine.migration.CHAIN`)
  normalizes every historical row **byte-for-byte identically** to the
  legacy hand-rolled ``_upgrade`` (frozen below as
  :func:`legacy_upgrade`) it replaced;
* **cache keys are append-only**: rebuilding a
  :class:`~repro.engine.jobs.Job` from any v1–v5 row re-derives the
  row's stored key, so every historical store keeps absorbing re-runs;
* extending the schema (a hypothetical v6 axis) requires exactly one
  registered :class:`~repro.engine.migration.MigrationStep` — and a
  mis-registered chain (gap, overlap, missing head) fails at
  registration time, not at read time.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.engine.jobs import Job, canonical_json
from repro.engine.migration import (
    CHAIN,
    SCHEMA_VERSION,
    MigrationChain,
    MigrationError,
    MigrationStep,
    build_chain,
)
from repro.engine.store import ResultStore

FIXTURES = Path(__file__).resolve().parent / "fixtures"
VERSIONS = list(range(1, SCHEMA_VERSION + 1))

_RELIABLE = {"model": "reliable", "params": {}}
_REFERENCE = {"name": "reference", "params": {}}


def legacy_upgrade(row):
    """The hand-rolled per-version normalizer the chain replaced,
    frozen verbatim (src/repro/engine/store.py before PR 9): the
    golden reference the chain must reproduce byte-for-byte."""
    if "network" not in row:
        row["network"] = dict(_RELIABLE, params={})
    if "network_model" not in row:
        row["network_model"] = row["network"].get("model", "reliable")
    if "backend" not in row:
        row["backend"] = dict(_REFERENCE, params={})
    if "backend_name" not in row:
        row["backend_name"] = row["backend"].get("name", "reference")
    if "placement" not in row:
        row["placement"] = "uniform"
    return row


def fixture_rows(version):
    path = FIXTURES / f"store_v{version}.jsonl"
    return [
        json.loads(line)
        for line in path.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]


@pytest.mark.parametrize("version", VERSIONS)
def test_fixture_exists_and_declares_its_version(version):
    rows = fixture_rows(version)
    assert rows, f"store_v{version}.jsonl is empty"
    assert all(row["schema"] == version for row in rows)


@pytest.mark.parametrize("version", VERSIONS)
def test_chain_normalizes_byte_identically_to_legacy_upgrade(version):
    for raw in fixture_rows(version):
        chain_row = CHAIN.migrate(json.loads(json.dumps(raw)))
        legacy_row = legacy_upgrade(json.loads(json.dumps(raw)))
        assert canonical_json(chain_row) == canonical_json(legacy_row)


@pytest.mark.parametrize("version", VERSIONS)
def test_store_reads_normalize_every_era(version):
    store = ResultStore(FIXTURES / f"store_v{version}.jsonl", index=False)
    for row in store.records():
        assert row["network"]["model"] == row["network_model"]
        assert row["backend"]["name"] == row["backend_name"]
        assert row["placement"] in {"uniform", "clustered"}
        assert row["schema"] == version  # migration reads, never restamps


@pytest.mark.parametrize("version", VERSIONS)
def test_cache_keys_stay_pinned(version):
    """A Job rebuilt from any historical row re-derives its stored key:
    the content-hash identity is append-only across all five schemas."""
    for row in fixture_rows(version):
        assert Job.from_dict(row).key == row["key"], (
            f"v{version} row {row['scenario']!r} no longer hashes to its "
            "stored cache key — historical stores would cold-start"
        )


def test_chain_is_gapless_to_current_schema():
    assert CHAIN.head == SCHEMA_VERSION
    covered = [(step.from_version, step.to_version) for step in CHAIN.steps]
    assert covered == [(v, v + 1) for v in range(1, SCHEMA_VERSION)]


def test_registration_rejects_gaps_and_overlaps():
    chain = MigrationChain()
    chain.add(MigrationStep(1, 2, lambda row: row))
    with pytest.raises(MigrationError):
        chain.add(MigrationStep(3, 4, lambda row: row))  # gap: skips v2
    with pytest.raises(MigrationError):
        chain.add(MigrationStep(1, 2, lambda row: row))  # overlap
    with pytest.raises(MigrationError):
        MigrationStep(2, 4, lambda row: row)  # multi-version jump
    with pytest.raises(MigrationError):
        chain.validate(SCHEMA_VERSION)  # incomplete chain


def test_hypothetical_v6_axis_is_one_registered_step():
    """The point of the refactor: a new schema axis is ONE step, not
    edits scattered across store code."""
    chain = build_chain()

    @chain.step(5, 6, "hypothetical priority axis")
    def _v5_to_v6(row):
        if "priority" not in row:
            row["priority"] = "normal"
        return row

    chain.validate(6)
    for version in VERSIONS:
        for raw in fixture_rows(version):
            row = chain.migrate(json.loads(json.dumps(raw)))
            assert row["priority"] == "normal"
            assert row["network_model"]  # earlier steps still applied
            assert Job.from_dict(row).key == raw["key"]
    # A v6-era row keeps its own value: steps are setdefault-idempotent.
    assert chain.migrate({"schema": 6, "priority": "high"})["priority"] == "high"


def test_store_migrate_cli_rewrites_without_changing_keys(tmp_path, capsys):
    """``repro store migrate`` is the explicit opt-in rewrite: every row
    restamped at the current schema, cache keys untouched, index rebuilt."""
    path = tmp_path / "mixed.jsonl"
    rows = [row for version in VERSIONS for row in fixture_rows(version)]
    path.write_text(
        "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows),
        encoding="utf-8",
    )
    before = ResultStore(path)
    keys_before = before.keys()
    normalized_before = {
        row["key"]: canonical_json({**row, "schema": SCHEMA_VERSION})
        for row in before.records()
    }

    assert main(["store", "migrate", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"migrated {len(rows)} rows" in out

    after = ResultStore(path)
    assert after.keys() == keys_before
    for row in after.records():
        assert row["schema"] == SCHEMA_VERSION
        assert canonical_json(row) == normalized_before[row["key"]]
    # Raw file is fully stamped too (not just the in-memory view).
    for line in path.read_text(encoding="utf-8").splitlines():
        assert json.loads(line)["schema"] == SCHEMA_VERSION


def test_store_inspect_cli_reports_schema_histogram(tmp_path, capsys):
    path = tmp_path / "mixed.jsonl"
    rows = fixture_rows(1) + fixture_rows(5)
    path.write_text(
        "".join(json.dumps(row, sort_keys=True) + "\n" for row in rows),
        encoding="utf-8",
    )
    assert main(["store", "inspect", str(path)]) == 0
    out = capsys.readouterr().out
    assert "v1: 3" in out and "v5: 2" in out
    assert f"{len(rows)}" in out

    assert main(["store", "reindex", str(path)]) == 0
    assert "5 keys" in capsys.readouterr().out

    assert main(["store", "inspect", str(tmp_path / 'nope.jsonl')]) == 2
