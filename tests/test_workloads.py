"""Tests for the workload generators."""

import random

import networkx as nx
import pytest

from repro.workloads import (
    ensure_connected,
    grid_graph,
    grid_instance,
    random_connected_graph,
    random_geometric_graph,
    random_instance,
    ring_of_blobs,
    terminals_on_graph,
)


class TestGraphGenerators:
    def test_random_connected(self):
        g = random_connected_graph(20, 0.2, random.Random(1))
        assert g.num_nodes == 20
        assert g.is_connected()

    def test_deterministic_given_seed(self):
        a = random_connected_graph(15, 0.3, random.Random(7))
        b = random_connected_graph(15, 0.3, random.Random(7))
        assert a.edge_set() == b.edge_set()
        assert a.total_weight() == b.total_weight()

    def test_geometric(self):
        g = random_geometric_graph(15, 0.5, random.Random(2))
        assert g.is_connected()
        assert all(w >= 1 for _, _, w in g.edges())

    def test_ring_of_blobs_s_scales_with_ring(self):
        rng = random.Random(3)
        small = ring_of_blobs(3, 4, rng)
        rng = random.Random(3)
        large = ring_of_blobs(9, 4, rng)
        assert (
            large.shortest_path_diameter() > small.shortest_path_diameter()
        )

    def test_ring_of_blobs_node_count(self):
        g = ring_of_blobs(4, 5, random.Random(0))
        assert g.num_nodes == 20


class TestInstanceGenerators:
    def test_terminals_disjoint(self):
        g = random_connected_graph(20, 0.3, random.Random(5))
        inst = terminals_on_graph(g, 4, 3, random.Random(5))
        assert inst.num_components == 4
        assert inst.num_terminals == 12

    def test_too_many_terminals_rejected(self):
        g = random_connected_graph(6, 0.5, random.Random(0))
        with pytest.raises(ValueError):
            terminals_on_graph(g, 4, 2, random.Random(0))

    def test_random_instance(self):
        inst = random_instance(18, 3, random.Random(4))
        assert inst.num_components == 3
        assert inst.graph.num_nodes == 18

    def test_grid_instance(self):
        inst = grid_instance(4, 4, 2, random.Random(6))
        assert inst.graph.num_nodes == 16
        assert inst.num_components == 2


def _graph_fingerprint(graph):
    """Byte-exact identity of a graph: nodes in order, weighted edges."""
    return repr((graph.nodes, graph.edges()))


def _instance_fingerprint(inst):
    """Byte-exact identity of an instance: graph, labels, components."""
    labels = sorted(inst.labels.items(), key=repr)
    components = sorted(
        (label, sorted(members, key=repr))
        for label, members in inst.components.items()
    )
    return repr((_graph_fingerprint(inst.graph), labels, components))


class TestSeededReproducibility:
    """Same seed ⇒ byte-identical output, for every graph family."""

    @pytest.mark.parametrize(
        "build",
        [
            lambda rng: random_connected_graph(15, 0.3, rng),
            lambda rng: random_connected_graph(10, 0.0, rng),  # fallback
            lambda rng: random_geometric_graph(15, 0.5, rng),
            lambda rng: random_geometric_graph(12, 0.01, rng),  # fallback
            lambda rng: grid_graph(3, 4, rng),
            lambda rng: ring_of_blobs(3, 4, rng),
        ],
        ids=[
            "gnp", "gnp-compose-fallback",
            "geometric", "geometric-compose-fallback",
            "grid", "ring-of-blobs",
        ],
    )
    def test_graph_family_reproducible(self, build):
        a = build(random.Random(42))
        b = build(random.Random(42))
        assert _graph_fingerprint(a) == _graph_fingerprint(b)

    def test_connectivity_fallback_path_taken_and_connected(self):
        # p=0 leaves G(n,p) edgeless, forcing the nx.compose path-graph
        # fallback; the result must still be connected and reproducible.
        g = random_connected_graph(10, 0.0, random.Random(9))
        assert g.is_connected()
        assert g.num_edges == 9  # exactly the fallback path

    def test_geometric_fallback_connected(self):
        g = random_geometric_graph(12, 0.01, random.Random(9))
        assert g.is_connected()

    @pytest.mark.parametrize(
        "build",
        [
            lambda rng: random_instance(14, 3, rng),
            lambda rng: random_instance(10, 2, rng, p=0.0),  # fallback
            lambda rng: grid_instance(4, 4, 2, rng),
            lambda rng: terminals_on_graph(
                ring_of_blobs(3, 4, rng), 3, 2, rng
            ),
        ],
        ids=["random", "random-compose-fallback", "grid", "ring"],
    )
    def test_instances_reproducible(self, build):
        a = build(random.Random(1234))
        b = build(random.Random(1234))
        assert _instance_fingerprint(a) == _instance_fingerprint(b)

    def test_different_seeds_differ(self):
        a = random_connected_graph(15, 0.3, random.Random(1))
        b = random_connected_graph(15, 0.3, random.Random(2))
        assert _graph_fingerprint(a) != _graph_fingerprint(b)


class TestEnsureConnected:
    def test_connected_graph_untouched(self):
        g = nx.path_graph(4)
        assert ensure_connected(g) is g

    def test_disconnected_graph_gets_path_overlay(self):
        g = nx.empty_graph(6)
        fixed = ensure_connected(g)
        assert nx.is_connected(fixed)
        assert fixed.number_of_edges() == 5  # exactly the fallback path

    def test_overlay_preserves_sampled_edges_and_attributes(self):
        g = nx.Graph()
        g.add_nodes_from(range(5), flavor="sampled")
        g.add_edge(0, 3)
        fixed = ensure_connected(g)
        assert fixed.has_edge(0, 3)
        assert fixed.nodes[0]["flavor"] == "sampled"

    def test_non_integer_labels_rejected_not_silently_disconnected(self):
        g = nx.Graph([("a", "b"), ("c", "d")])
        with pytest.raises(ValueError, match="0..n-1"):
            ensure_connected(g)

    def test_non_contiguous_integer_labels_rejected_no_phantom_nodes(self):
        # Without the label check, path_graph(4) over nodes {0,1,3,4}
        # would inject a phantom node 2 and report "connected".
        g = nx.Graph([(0, 1), (3, 4)])
        with pytest.raises(ValueError, match="0..n-1"):
            ensure_connected(g)

    @pytest.mark.parametrize(
        "build",
        [
            lambda: random_connected_graph(12, 0.0, random.Random(5)),
            lambda: random_geometric_graph(12, 0.01, random.Random(5)),
        ],
        ids=["gnp", "geometric"],
    )
    def test_fallback_path_edges_always_receive_weights(self, build):
        # p=0 / tiny radius force the path-overlay fallback for (nearly)
        # every edge; each must carry an explicit positive integer weight
        # (never the from_networkx missing-weight default applied blindly).
        g = build()
        assert g.is_connected()
        assert g.num_edges >= 11  # the fallback path is present
        for u, v, w in g.edges():
            assert isinstance(w, int) and w >= 1
