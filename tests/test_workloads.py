"""Tests for the workload generators."""

import random

import pytest

from repro.workloads import (
    grid_instance,
    random_connected_graph,
    random_geometric_graph,
    random_instance,
    ring_of_blobs,
    terminals_on_graph,
)


class TestGraphGenerators:
    def test_random_connected(self):
        g = random_connected_graph(20, 0.2, random.Random(1))
        assert g.num_nodes == 20
        assert g.is_connected()

    def test_deterministic_given_seed(self):
        a = random_connected_graph(15, 0.3, random.Random(7))
        b = random_connected_graph(15, 0.3, random.Random(7))
        assert a.edge_set() == b.edge_set()
        assert a.total_weight() == b.total_weight()

    def test_geometric(self):
        g = random_geometric_graph(15, 0.5, random.Random(2))
        assert g.is_connected()
        assert all(w >= 1 for _, _, w in g.edges())

    def test_ring_of_blobs_s_scales_with_ring(self):
        rng = random.Random(3)
        small = ring_of_blobs(3, 4, rng)
        rng = random.Random(3)
        large = ring_of_blobs(9, 4, rng)
        assert (
            large.shortest_path_diameter() > small.shortest_path_diameter()
        )

    def test_ring_of_blobs_node_count(self):
        g = ring_of_blobs(4, 5, random.Random(0))
        assert g.num_nodes == 20


class TestInstanceGenerators:
    def test_terminals_disjoint(self):
        g = random_connected_graph(20, 0.3, random.Random(5))
        inst = terminals_on_graph(g, 4, 3, random.Random(5))
        assert inst.num_components == 4
        assert inst.num_terminals == 12

    def test_too_many_terminals_rejected(self):
        g = random_connected_graph(6, 0.5, random.Random(0))
        with pytest.raises(ValueError):
            terminals_on_graph(g, 4, 2, random.Random(0))

    def test_random_instance(self):
        inst = random_instance(18, 3, random.Random(4))
        assert inst.num_components == 3
        assert inst.graph.num_nodes == 18

    def test_grid_instance(self):
        inst = grid_instance(4, 4, 2, random.Random(6))
        assert inst.graph.num_nodes == 16
        assert inst.num_components == 2
