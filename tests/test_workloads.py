"""Tests for the workload generators."""

import random

import networkx as nx
import pytest

from repro.workloads import (
    TERMINAL_PLACEMENTS,
    broom_graph,
    caterpillar_graph,
    clustered_geometric_graph,
    ensure_connected,
    grid_graph,
    grid_instance,
    place_terminals,
    powerlaw_graph,
    random_connected_graph,
    random_geometric_graph,
    random_instance,
    random_regular_graph,
    ring_of_blobs,
    smallworld_graph,
    terminals_on_graph,
    torus_graph,
)


class TestGraphGenerators:
    def test_random_connected(self):
        g = random_connected_graph(20, 0.2, random.Random(1))
        assert g.num_nodes == 20
        assert g.is_connected()

    def test_deterministic_given_seed(self):
        a = random_connected_graph(15, 0.3, random.Random(7))
        b = random_connected_graph(15, 0.3, random.Random(7))
        assert a.edge_set() == b.edge_set()
        assert a.total_weight() == b.total_weight()

    def test_geometric(self):
        g = random_geometric_graph(15, 0.5, random.Random(2))
        assert g.is_connected()
        assert all(w >= 1 for _, _, w in g.edges())

    def test_ring_of_blobs_s_scales_with_ring(self):
        rng = random.Random(3)
        small = ring_of_blobs(3, 4, rng)
        rng = random.Random(3)
        large = ring_of_blobs(9, 4, rng)
        assert (
            large.shortest_path_diameter() > small.shortest_path_diameter()
        )

    def test_ring_of_blobs_node_count(self):
        g = ring_of_blobs(4, 5, random.Random(0))
        assert g.num_nodes == 20


class TestNewGraphFamilies:
    def test_powerlaw_has_hubs(self):
        g = powerlaw_graph(40, 2, random.Random(1))
        degrees = sorted(g.degree(v) for v in g.nodes)
        # Preferential attachment: the top node dominates the median.
        assert degrees[-1] >= 3 * degrees[len(degrees) // 2]
        assert g.is_connected()

    def test_smallworld_connected_even_when_rewired(self):
        g = smallworld_graph(24, 4, 0.5, random.Random(2))
        assert g.is_connected()
        assert g.num_nodes == 24

    def test_random_regular_degrees(self):
        g = random_regular_graph(16, 3, random.Random(3))
        assert g.is_connected()
        # ensure_connected may add fallback path edges, never remove any.
        assert all(g.degree(v) >= 3 for v in g.nodes) or g.num_edges >= 24

    def test_torus_is_four_regular(self):
        g = torus_graph(4, 5, random.Random(4))
        assert g.num_nodes == 20
        assert all(g.degree(v) == 4 for v in g.nodes)

    def test_caterpillar_is_tree_with_legs(self):
        g = caterpillar_graph(5, 2, random.Random(5))
        assert g.num_nodes == 15
        assert g.num_edges == g.num_nodes - 1  # a tree
        assert g.is_connected()
        # Leaves: every spine node contributed exactly two.
        leaves = [v for v in g.nodes if g.degree(v) == 1]
        assert len(leaves) >= 10

    def test_broom_star_at_handle_end(self):
        g = broom_graph(6, 4, random.Random(6))
        assert g.num_nodes == 10
        assert g.num_edges == 9  # a tree
        assert g.degree(5) == 5  # handle end: 1 path edge + 4 bristles

    def test_clustered_geometric_connected_with_metric_weights(self):
        g = clustered_geometric_graph(20, 3, random.Random(7))
        assert g.is_connected()
        assert all(w >= 1 for _, _, w in g.edges())

    def test_shortest_path_diameter_regimes_differ(self):
        # The catalog spans regimes: trees have linear s, power-law tiny s.
        rng = random.Random(8)
        tree_s = caterpillar_graph(8, 1, rng).shortest_path_diameter()
        rng = random.Random(8)
        hub_s = powerlaw_graph(16, 3, rng).shortest_path_diameter()
        assert tree_s > hub_s


class TestTerminalPlacements:
    def _graph(self, seed=9):
        return random_connected_graph(20, 0.3, random.Random(seed))

    @pytest.mark.parametrize("placement", sorted(TERMINAL_PLACEMENTS))
    def test_disjoint_components_of_requested_shape(self, placement):
        inst = place_terminals(placement, self._graph(), 3, 2, random.Random(1))
        assert inst.num_components == 3
        assert inst.num_terminals == 6  # disjoint: no node reused

    @pytest.mark.parametrize("placement", sorted(TERMINAL_PLACEMENTS))
    def test_deterministic_given_seed(self, placement):
        g = self._graph()
        a = place_terminals(placement, g, 3, 2, random.Random(2))
        b = place_terminals(placement, g, 3, 2, random.Random(2))
        assert a.labels == b.labels

    @pytest.mark.parametrize("placement", sorted(TERMINAL_PLACEMENTS))
    def test_overfull_request_rejected(self, placement):
        g = random_connected_graph(6, 0.5, random.Random(0))
        with pytest.raises(ValueError, match="distinct terminals"):
            place_terminals(placement, g, 4, 2, random.Random(0))

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="unknown terminal placement"):
            place_terminals("teleport", self._graph(), 2, 2, random.Random(0))

    def test_clustered_members_are_near_their_seed(self):
        g = self._graph()
        inst = place_terminals("clustered", g, 2, 2, random.Random(3))
        dist = g.all_pairs_distances()
        diameter = g.weighted_diameter()
        for component in inst.components.values():
            u, v = sorted(component, key=repr)
            assert dist[u][v] <= diameter  # sanity
        # Intra-component distances are no larger than the far-pairs ones.
        far = place_terminals("far_pairs", g, 2, 2, random.Random(3))
        near_max = max(
            dist[min(c, key=repr)][max(c, key=repr)]
            for c in inst.components.values()
        )
        far_max = max(
            dist[min(c, key=repr)][max(c, key=repr)]
            for c in far.components.values()
        )
        assert near_max <= far_max

    def test_far_pairs_anchor_on_weighted_farthest(self):
        g = self._graph()
        dist = g.all_pairs_distances()
        inst = place_terminals("far_pairs", g, 1, 2, random.Random(4))
        (component,) = inst.components.values()
        u, v = sorted(component, key=repr)
        # The pair realizes the maximum distance from one of its endpoints.
        assert dist[u][v] in (max(dist[u].values()), max(dist[v].values()))

    def test_hub_spoke_touches_the_hub_neighborhood(self):
        g = self._graph()
        hub = max(g.nodes, key=lambda v: (g.degree(v), repr(v)))
        inst = place_terminals("hub_spoke", g, 2, 2, random.Random(5))
        terminals = inst.terminals
        assert hub in terminals  # the hub itself seeds the first component


class TestInstanceGenerators:
    def test_terminals_disjoint(self):
        g = random_connected_graph(20, 0.3, random.Random(5))
        inst = terminals_on_graph(g, 4, 3, random.Random(5))
        assert inst.num_components == 4
        assert inst.num_terminals == 12

    def test_too_many_terminals_rejected(self):
        g = random_connected_graph(6, 0.5, random.Random(0))
        with pytest.raises(ValueError):
            terminals_on_graph(g, 4, 2, random.Random(0))

    def test_overfull_pair_request_names_the_numbers(self):
        # Regression: asking for more disjoint terminal pairs than the
        # graph has nodes for must raise immediately with the arithmetic
        # spelled out — never hang hunting for free nodes or silently
        # reuse one across components.
        g = random_connected_graph(7, 0.5, random.Random(1))
        with pytest.raises(ValueError, match="8 distinct terminals"):
            terminals_on_graph(g, 4, 2, random.Random(1))

    @pytest.mark.parametrize(
        "k,component_size,message",
        [
            (0, 2, "at least one input component"),
            (-1, 2, "at least one input component"),
            (2, 0, "at least one terminal"),
            (2, -3, "at least one terminal"),
        ],
    )
    def test_degenerate_requests_rejected_not_silently_shrunk(
        self, k, component_size, message
    ):
        # Regression: k=0 / component_size=0 used to produce an instance
        # with silently missing (empty) components instead of erroring.
        g = random_connected_graph(8, 0.5, random.Random(2))
        with pytest.raises(ValueError, match=message):
            terminals_on_graph(g, k, component_size, random.Random(2))

    def test_exactly_full_graph_allowed(self):
        g = random_connected_graph(8, 0.5, random.Random(3))
        inst = terminals_on_graph(g, 4, 2, random.Random(3))
        assert inst.num_terminals == 8

    def test_random_instance(self):
        inst = random_instance(18, 3, random.Random(4))
        assert inst.num_components == 3
        assert inst.graph.num_nodes == 18

    def test_grid_instance(self):
        inst = grid_instance(4, 4, 2, random.Random(6))
        assert inst.graph.num_nodes == 16
        assert inst.num_components == 2


def _graph_fingerprint(graph):
    """Byte-exact identity of a graph: nodes in order, weighted edges."""
    return repr((graph.nodes, graph.edges()))


def _instance_fingerprint(inst):
    """Byte-exact identity of an instance: graph, labels, components."""
    labels = sorted(inst.labels.items(), key=repr)
    components = sorted(
        (label, sorted(members, key=repr))
        for label, members in inst.components.items()
    )
    return repr((_graph_fingerprint(inst.graph), labels, components))


class TestSeededReproducibility:
    """Same seed ⇒ byte-identical output, for every graph family."""

    @pytest.mark.parametrize(
        "build",
        [
            lambda rng: random_connected_graph(15, 0.3, rng),
            lambda rng: random_connected_graph(10, 0.0, rng),  # fallback
            lambda rng: random_geometric_graph(15, 0.5, rng),
            lambda rng: random_geometric_graph(12, 0.01, rng),  # fallback
            lambda rng: grid_graph(3, 4, rng),
            lambda rng: ring_of_blobs(3, 4, rng),
            lambda rng: powerlaw_graph(16, 2, rng),
            lambda rng: smallworld_graph(16, 4, 0.3, rng),
            lambda rng: random_regular_graph(14, 3, rng),
            lambda rng: torus_graph(3, 5, rng),
            lambda rng: caterpillar_graph(4, 2, rng),
            lambda rng: broom_graph(5, 3, rng),
            lambda rng: clustered_geometric_graph(16, 3, rng),
        ],
        ids=[
            "gnp", "gnp-compose-fallback",
            "geometric", "geometric-compose-fallback",
            "grid", "ring-of-blobs",
            "powerlaw", "smallworld", "regular", "torus",
            "caterpillar", "broom", "cluster-geo",
        ],
    )
    def test_graph_family_reproducible(self, build):
        a = build(random.Random(42))
        b = build(random.Random(42))
        assert _graph_fingerprint(a) == _graph_fingerprint(b)

    def test_connectivity_fallback_path_taken_and_connected(self):
        # p=0 leaves G(n,p) edgeless, forcing the nx.compose path-graph
        # fallback; the result must still be connected and reproducible.
        g = random_connected_graph(10, 0.0, random.Random(9))
        assert g.is_connected()
        assert g.num_edges == 9  # exactly the fallback path

    def test_geometric_fallback_connected(self):
        g = random_geometric_graph(12, 0.01, random.Random(9))
        assert g.is_connected()

    @pytest.mark.parametrize(
        "build",
        [
            lambda rng: random_instance(14, 3, rng),
            lambda rng: random_instance(10, 2, rng, p=0.0),  # fallback
            lambda rng: grid_instance(4, 4, 2, rng),
            lambda rng: terminals_on_graph(
                ring_of_blobs(3, 4, rng), 3, 2, rng
            ),
        ],
        ids=["random", "random-compose-fallback", "grid", "ring"],
    )
    def test_instances_reproducible(self, build):
        a = build(random.Random(1234))
        b = build(random.Random(1234))
        assert _instance_fingerprint(a) == _instance_fingerprint(b)

    def test_different_seeds_differ(self):
        a = random_connected_graph(15, 0.3, random.Random(1))
        b = random_connected_graph(15, 0.3, random.Random(2))
        assert _graph_fingerprint(a) != _graph_fingerprint(b)


class TestEnsureConnected:
    def test_connected_graph_untouched(self):
        g = nx.path_graph(4)
        assert ensure_connected(g) is g

    def test_disconnected_graph_gets_path_overlay(self):
        g = nx.empty_graph(6)
        fixed = ensure_connected(g)
        assert nx.is_connected(fixed)
        assert fixed.number_of_edges() == 5  # exactly the fallback path

    def test_overlay_preserves_sampled_edges_and_attributes(self):
        g = nx.Graph()
        g.add_nodes_from(range(5), flavor="sampled")
        g.add_edge(0, 3)
        fixed = ensure_connected(g)
        assert fixed.has_edge(0, 3)
        assert fixed.nodes[0]["flavor"] == "sampled"

    def test_non_integer_labels_rejected_not_silently_disconnected(self):
        g = nx.Graph([("a", "b"), ("c", "d")])
        with pytest.raises(ValueError, match="0..n-1"):
            ensure_connected(g)

    def test_non_contiguous_integer_labels_rejected_no_phantom_nodes(self):
        # Without the label check, path_graph(4) over nodes {0,1,3,4}
        # would inject a phantom node 2 and report "connected".
        g = nx.Graph([(0, 1), (3, 4)])
        with pytest.raises(ValueError, match="0..n-1"):
            ensure_connected(g)

    @pytest.mark.parametrize(
        "build",
        [
            lambda: random_connected_graph(12, 0.0, random.Random(5)),
            lambda: random_geometric_graph(12, 0.01, random.Random(5)),
        ],
        ids=["gnp", "geometric"],
    )
    def test_fallback_path_edges_always_receive_weights(self, build):
        # p=0 / tiny radius force the path-overlay fallback for (nearly)
        # every edge; each must carry an explicit positive integer weight
        # (never the from_networkx missing-weight default applied blindly).
        g = build()
        assert g.is_connected()
        assert g.num_edges >= 11  # the fallback path is present
        for u, v, w in g.edges():
            assert isinstance(w, int) and w >= 1
