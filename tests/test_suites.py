"""Tests for the curated scenario suites and the ``suite`` subcommand."""

import json

import pytest

from repro.cli import main
from repro.engine import REGISTRY, SUITES, ScenarioSpec, SuiteRegistry, SuiteSpec, expand_suites
from repro.engine.jobs import expand_jobs


class TestSuiteSpec:
    def test_empty_suite_rejected(self):
        with pytest.raises(ValueError, match="no scenarios"):
            SuiteSpec(name="empty", scenarios=())

    def test_duplicate_scenario_names_rejected(self):
        spec = REGISTRY.get("gnp-core")
        with pytest.raises(ValueError, match="repeats scenario names"):
            SuiteSpec(name="dup", scenarios=(spec, spec))

    def test_job_count_sums_members(self):
        suite = SUITES.get("smoke")
        assert suite.job_count() == sum(
            len(expand_jobs(spec)) for spec in suite.scenarios
        )


class TestSuiteRegistry:
    def test_builtin_suites_registered(self):
        assert {"smoke", "adversity", "scaling", "nightly"} <= set(
            SUITES.names()
        )

    def test_duplicate_registration_rejected(self):
        registry = SuiteRegistry()
        suite = SuiteSpec(
            name="solo", scenarios=(REGISTRY.get("gnp-core"),)
        )
        registry.register(suite)
        with pytest.raises(ValueError, match="already registered"):
            registry.register(suite)

    def test_unknown_suite_names_choices(self):
        with pytest.raises(KeyError, match="unknown suite"):
            SUITES.get("nope")

    def test_smoke_spans_many_graph_families(self):
        # The acceptance bar: one suite run covers a multi-family grid.
        families = {spec.family for spec in SUITES.get("smoke").scenarios}
        assert len(families) >= 4

    def test_registry_members_are_byte_identical_specs(self):
        # Suites reference registered scenarios without copying/mutating,
        # so suite runs share cache keys with plain `sweep` runs.
        smoke = SUITES.get("smoke")
        for spec in smoke.scenarios:
            if spec.name in REGISTRY:
                assert spec == REGISTRY.get(spec.name)

    def test_expand_suites_deduplicates_across_suites(self):
        specs = expand_suites(SUITES, ["smoke", "smoke"])
        names = [spec.name for spec in specs]
        assert names == list(SUITES.get("smoke").scenario_names)

    def test_expand_suites_rejects_conflicting_same_name_specs(self):
        # Silently dropping one of two different specs sharing a name
        # would vanish its results; that's a conflict, not a duplicate.
        registry = SuiteRegistry()
        base = REGISTRY.get("gnp-core")
        variant = ScenarioSpec.from_dict(
            dict(base.to_dict(), seeds=base.seeds + 1)
        )
        registry.register(SuiteSpec(name="a", scenarios=(base,)))
        registry.register(SuiteSpec(name="b", scenarios=(variant,)))
        with pytest.raises(ValueError, match="conflicting specs"):
            expand_suites(registry, ["a", "b"])
        # Identical specs under one name remain a plain dedup.
        registry.register(SuiteSpec(name="c", scenarios=(base,)))
        assert [s.name for s in expand_suites(registry, ["a", "c"])] == [
            "gnp-core"
        ]

    def test_nightly_covers_every_registered_scenario(self):
        nightly = set(SUITES.get("nightly").scenario_names)
        assert set(REGISTRY.names()) <= nightly

    def test_nightly_exact_probes_cover_new_families(self):
        exact_families = {
            spec.family
            for spec in SUITES.get("nightly").scenarios
            if spec.exact
        }
        assert {"powerlaw", "smallworld", "regular", "broom"} <= exact_families

    def test_all_suite_specs_expand(self):
        for name in SUITES.names():
            for spec in SUITES.get(name).scenarios:
                assert isinstance(spec, ScenarioSpec)
                assert len(expand_jobs(spec)) > 0


class TestSuiteCLI:
    def test_list_shows_all_suites_with_job_counts(self, capsys):
        assert main(["suite", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "adversity", "scaling", "nightly"):
            assert name in out
        assert "jobs" in out

    def test_list_rejects_names(self, capsys):
        assert main(["suite", "list", "smoke"]) == 2
        assert "takes no suite names" in capsys.readouterr().err

    def test_show_renders_member_table(self, capsys):
        assert main(["suite", "show", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "powerlaw-hubs" in out
        assert "hub_spoke" in out
        assert "torus-local" in out

    def test_show_without_names_errors(self, capsys):
        assert main(["suite", "show"]) == 2
        assert "needs suite names" in capsys.readouterr().err

    def test_unknown_suite_errors(self, capsys):
        assert main(["suite", "run", "nope", "--no-store"]) == 2
        assert "unknown suite 'nope'" in capsys.readouterr().err

    def test_run_smoke_executes_then_hits_cache(self, tmp_path, capsys):
        store = str(tmp_path / "suite.jsonl")
        args = ["suite", "run", "smoke", "--store", store, "--serial"]
        assert main(args) == 0
        out = capsys.readouterr().out
        # Every member scenario ran through the engine and reported.
        for name in SUITES.get("smoke").scenario_names:
            assert f"scenario: {name}" in out
        assert "cached=   0" in out
        # An identical re-run executes nothing: 100% cache hits.
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "executed=   0" in out
        assert "cached=   0" not in out
        with open(store) as handle:
            rows = [json.loads(line) for line in handle]
        assert len(rows) == SUITES.get("smoke").job_count()

    def test_run_suite_shares_cache_with_plain_sweep(self, tmp_path, capsys):
        # The suite adds curation, not a new execution path: a sweep of a
        # member scenario fully warms the suite's cache for it.
        store = str(tmp_path / "shared.jsonl")
        assert main(
            ["sweep", "--scenario", "grid-rounds", "--store", store,
             "--serial"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["suite", "run", "smoke", "--store", store, "--serial"]
        ) == 0
        out = capsys.readouterr().out
        assert "scenario grid-rounds          executed=   0 cached=   8" in out

    def test_run_with_network_override(self, tmp_path, capsys):
        store = str(tmp_path / "suite.jsonl")
        assert main(
            ["suite", "run", "smoke", "--store", store, "--serial",
             "--network", "delay:max_delay=2"]
        ) == 0
        out = capsys.readouterr().out
        assert "delay" in out

    def test_run_with_backend_override(self, tmp_path, capsys):
        store = str(tmp_path / "suite.jsonl")
        assert main(
            ["suite", "run", "smoke", "--store", store, "--serial",
             "--backend", "flatarray"]
        ) == 0
        out = capsys.readouterr().out
        assert "flatarray" in out
        with open(store) as handle:
            rows = [json.loads(line) for line in handle]
        assert {row["backend_name"] for row in rows} == {"flatarray"}

    def test_run_conflicting_suites_error_cleanly(
        self, monkeypatch, capsys
    ):
        # The conflict ValueError from expand_suites must surface as the
        # CLI's standard `error:` + exit 2, not a traceback. Built-in
        # suites never conflict, so install a registry that does.
        import repro.cli as cli_module

        base = REGISTRY.get("gnp-core")
        variant = ScenarioSpec.from_dict(
            dict(base.to_dict(), seeds=base.seeds + 1)
        )
        registry = SuiteRegistry()
        registry.register(SuiteSpec(name="a", scenarios=(base,)))
        registry.register(SuiteSpec(name="b", scenarios=(variant,)))
        monkeypatch.setattr(cli_module, "SUITES", registry)
        assert main(["suite", "run", "a", "b", "--no-store"]) == 2
        assert "conflicting specs" in capsys.readouterr().err

    def test_report_placement_filter(self, tmp_path, capsys):
        store = str(tmp_path / "suite.jsonl")
        main(["sweep", "--scenario", "powerlaw-hubs", "--store", store,
              "--serial"])
        capsys.readouterr()
        assert main(
            ["report", "--store", store, "--placement", "hub_spoke"]
        ) == 0
        out = capsys.readouterr().out
        assert "powerlaw-hubs" in out
        assert main(
            ["report", "--store", store, "--placement", "uniform"]
        ) == 0
        assert "no records" in capsys.readouterr().out
