"""Tests for Algorithm 1 — centralized moat growing (Theorem 4.1)."""

from fractions import Fraction

import pytest

from repro.core.moat import moat_growing
from repro.exact import steiner_forest_cost
from repro.model import SteinerForestInstance, WeightedGraph
from tests.conftest import make_random_instance


class TestSimpleInstances:
    def test_two_terminals_shortest_path(self, triangle):
        inst = SteinerForestInstance(triangle, {0: "x", 2: "x"})
        result = moat_growing(inst)
        assert result.solution.weight == triangle.distance(0, 2)

    def test_trivial_instance_empty_output(self, triangle):
        inst = SteinerForestInstance(triangle, {0: "x"})
        result = moat_growing(inst)
        assert result.solution.edges == frozenset()
        assert result.events == []

    def test_two_separate_pairs(self, path5):
        inst = SteinerForestInstance(
            path5, {0: "a", 1: "a", 3: "b", 4: "b"}
        )
        result = moat_growing(inst)
        assert result.solution.edges == frozenset({(0, 1), (3, 4)})
        assert result.solution.weight == 2

    def test_equidistant_pair_merge_time(self, path5):
        """Two terminals at distance 4 merge after growth µ = 2 each."""
        inst = SteinerForestInstance(path5, {0: "x", 4: "x"})
        result = moat_growing(inst)
        assert len(result.events) == 1
        assert result.events[0].mu == Fraction(2)
        assert result.radii[0] == Fraction(2)
        assert result.radii[4] == Fraction(2)

    def test_half_integral_merge(self):
        g = WeightedGraph([0, 1], [(0, 1, 3)])
        inst = SteinerForestInstance(g, {0: "x", 1: "x"})
        result = moat_growing(inst)
        assert result.events[0].mu == Fraction(3, 2)

    def test_inactive_moat_absorbed_one_sided(self):
        """A satisfied pair sits between two distant partners: the merged
        moat goes inactive, then an active moat reaches it one-sidedly."""
        # Path: A --1-- c1 --1-- c2 --10-- B, labels: {c1,c2}, {A,B}.
        g = WeightedGraph(
            ["A", "c1", "c2", "B"],
            [("A", "c1", 4), ("c1", "c2", 1), ("c2", "B", 10)],
        )
        inst = SteinerForestInstance(
            g, {"c1": "c", "c2": "c", "A": "x", "B": "x"}
        )
        result = moat_growing(inst)
        assert result.solution.is_feasible(inst)
        # The c-moat (inactive after its merge) is traversed by the A–B
        # connection; at least one merge involves an inactive moat.
        assert result.num_merge_phases >= 2


class TestGuarantees:
    @pytest.mark.parametrize("seed", range(12))
    def test_two_approximation(self, seed):
        inst = make_random_instance(seed)
        opt = steiner_forest_cost(inst)
        result = moat_growing(inst)
        result.solution.assert_feasible(inst)
        assert result.solution.is_forest()
        if opt > 0:
            assert result.solution.weight <= 2 * opt

    @pytest.mark.parametrize("seed", range(12))
    def test_dual_lower_bound_certified(self, seed):
        """Lemma C.4: Σ actᵢ µᵢ lower-bounds the optimum."""
        inst = make_random_instance(seed)
        opt = steiner_forest_cost(inst)
        result = moat_growing(inst)
        assert result.dual_lower_bound <= opt

    @pytest.mark.parametrize("seed", range(12))
    def test_solution_within_twice_dual(self, seed):
        """Theorem 4.1's accounting: W(F) < 2 Σ actᵢ µᵢ."""
        inst = make_random_instance(seed)
        result = moat_growing(inst)
        if result.events:
            assert result.solution.weight <= 2 * result.dual_lower_bound

    @pytest.mark.parametrize("seed", range(12))
    def test_merge_phase_bound(self, seed):
        """Lemma 4.4: at most 2k merge phases."""
        inst = make_random_instance(seed)
        result = moat_growing(inst)
        assert result.num_merge_phases <= 2 * inst.num_components + 1

    @pytest.mark.parametrize("seed", range(8))
    def test_forest_before_pruning(self, seed):
        inst = make_random_instance(seed)
        result = moat_growing(inst)
        assert result.forest.is_forest()

    @pytest.mark.parametrize("seed", range(8))
    def test_merges_bounded_by_terminals(self, seed):
        inst = make_random_instance(seed)
        result = moat_growing(inst)
        assert len(result.events) <= inst.num_terminals

    def test_mst_special_case_exact(self, grid33):
        """Section 1: k = 1, t = n specializes to an exact MST."""
        import networkx as nx

        inst = SteinerForestInstance(grid33, {v: 0 for v in grid33.nodes})
        result = moat_growing(inst)
        mst = nx.minimum_spanning_tree(grid33.to_networkx())
        expected = sum(d["weight"] for _, _, d in mst.edges(data=True))
        assert result.solution.weight == expected

    def test_radii_monotone_events(self):
        inst = make_random_instance(5)
        result = moat_growing(inst)
        mus = [e.mu for e in result.events]
        assert all(mu >= 0 for mu in mus)
