"""Tests for BFS, broadcast/convergecast/upcast, Bellman–Ford, pipeline."""

from fractions import Fraction


from repro.congest import (
    CongestRun,
    MergeItem,
    bellman_ford,
    broadcast_items,
    build_bfs_tree,
    convergecast_aggregate,
    pipelined_filtered_upcast,
    upcast_items,
)
from repro.congest.bfs import default_root
from repro.model import WeightedGraph


class TestBFS:
    def test_depth_bounded_by_diameter(self, grid44):
        run = CongestRun(grid44)
        tree = build_bfs_tree(grid44, run)
        assert tree.depth <= grid44.unweighted_diameter()

    def test_rounds_linear_in_depth(self, grid44):
        run = CongestRun(grid44)
        tree = build_bfs_tree(grid44, run)
        assert run.rounds <= tree.depth + 2

    def test_default_root_is_max_id(self, grid44):
        assert default_root(grid44) == max(grid44.nodes, key=repr)

    def test_parents_form_tree(self, grid44):
        run = CongestRun(grid44)
        tree = build_bfs_tree(grid44, run, root=0)
        assert tree.parent[0] is None
        for v in grid44.nodes:
            if v != 0:
                assert tree.depth_of[tree.parent[v]] == tree.depth_of[v] - 1

    def test_depths_are_hop_distances(self, grid44):
        run = CongestRun(grid44)
        tree = build_bfs_tree(grid44, run, root=0)
        # Node 15 is 6 hops from corner 0 in the 4x4 grid.
        assert tree.depth_of[15] == 6

    def test_path_to_root(self, path5):
        run = CongestRun(path5)
        tree = build_bfs_tree(path5, run, root=0)
        assert tree.path_to_root(4) == [4, 3, 2, 1, 0]

    def test_orders(self, grid33):
        run = CongestRun(grid33)
        tree = build_bfs_tree(grid33, run, root=0)
        td = tree.nodes_top_down()
        bu = tree.nodes_bottom_up()
        assert td[0] == 0
        assert bu[-1] == 0
        assert set(td) == set(grid33.nodes)


class TestBroadcast:
    def test_pipelined_round_bound(self, grid44):
        run = CongestRun(grid44)
        tree = build_bfs_tree(grid44, run)
        start = run.rounds
        broadcast_items(tree, list(range(20)), run)
        assert run.rounds - start <= tree.depth + 20 + 1

    def test_empty_broadcast_free(self, grid44):
        run = CongestRun(grid44)
        tree = build_bfs_tree(grid44, run)
        start = run.rounds
        broadcast_items(tree, [], run)
        assert run.rounds == start

    def test_single_node_graph(self):
        g = WeightedGraph([0, 1], [(0, 1, 1)])
        run = CongestRun(g)
        tree = build_bfs_tree(g, run)
        assert broadcast_items(tree, [1, 2], run) == [1, 2]


class TestConvergecast:
    def test_sum(self, grid44):
        run = CongestRun(grid44)
        tree = build_bfs_tree(grid44, run)
        start = run.rounds
        total = convergecast_aggregate(
            tree, {v: 1 for v in grid44.nodes}, lambda a, b: a + b, run
        )
        assert total == 16
        assert run.rounds - start <= tree.depth + 1

    def test_min(self, grid44):
        run = CongestRun(grid44)
        tree = build_bfs_tree(grid44, run)
        result = convergecast_aggregate(
            tree, {v: v for v in grid44.nodes}, min, run
        )
        assert result == 0


class TestUpcast:
    def test_collects_distinct(self, grid44):
        run = CongestRun(grid44)
        tree = build_bfs_tree(grid44, run)
        items = upcast_items(
            tree, {v: [v % 4] for v in grid44.nodes}, run
        )
        assert items == [0, 1, 2, 3]

    def test_round_bound_depth_plus_items(self, grid44):
        run = CongestRun(grid44)
        tree = build_bfs_tree(grid44, run)
        start = run.rounds
        upcast_items(tree, {v: [v] for v in grid44.nodes}, run)
        assert run.rounds - start <= 2 * tree.depth + 16 + 2

    def test_custom_key_dedup(self, grid44):
        run = CongestRun(grid44)
        tree = build_bfs_tree(grid44, run)
        items = upcast_items(
            tree,
            {v: [(v, "payload")] for v in grid44.nodes},
            run,
            key=lambda item: item[0] % 2,
        )
        assert len(items) == 2


class TestBellmanFord:
    def test_single_source_distances(self, grid44):
        run = CongestRun(grid44)
        result = bellman_ford(grid44, {0: (0, "src")}, run)
        apd = grid44.all_pairs_distances()
        for v in grid44.nodes:
            assert result.dist[v] == apd[0][v]

    def test_iterations_bounded_by_s(self, grid44):
        run = CongestRun(grid44)
        result = bellman_ford(grid44, {0: (0, "src")}, run)
        assert result.iterations <= grid44.shortest_path_diameter() + 1

    def test_voronoi_tags(self, path5):
        run = CongestRun(path5)
        result = bellman_ford(path5, {0: (0, "L"), 4: (0, "R")}, run)
        assert result.tag[1] == "L"
        assert result.tag[3] == "R"

    def test_tie_breaks_lexicographically(self, path5):
        run = CongestRun(path5)
        result = bellman_ford(path5, {0: (0, "A"), 4: (0, "B")}, run)
        # Node 2 at distance 2 from both: tag "A" < "B" wins.
        assert result.tag[2] == "A"

    def test_blocked_nodes_frozen(self, path5):
        run = CongestRun(path5)
        result = bellman_ford(
            path5, {0: (0, "src")}, run, blocked={2}
        )
        assert 2 not in result.dist
        assert 3 not in result.dist  # unreachable behind the block

    def test_max_iterations_cutoff(self, path5):
        run = CongestRun(path5)
        result = bellman_ford(
            path5, {0: (0, "src")}, run, max_iterations=2
        )
        assert not result.stabilized
        assert 4 not in result.dist

    def test_custom_edge_weight(self, path5):
        run = CongestRun(path5)
        result = bellman_ford(
            path5,
            {0: (0, "src")},
            run,
            edge_weight=lambda u, v: Fraction(1, 2),
        )
        assert result.dist[4] == 2

    def test_zero_weight_edges_terminate(self, path5):
        run = CongestRun(path5)
        result = bellman_ford(
            path5, {0: (0, "s")}, run, edge_weight=lambda u, v: Fraction(0)
        )
        assert result.stabilized
        assert all(result.dist[v] == 0 for v in path5.nodes)

    def test_parent_chains_acyclic(self, grid44):
        run = CongestRun(grid44)
        result = bellman_ford(
            grid44,
            {0: (0, "a"), 15: (0, "b")},
            run,
            edge_weight=lambda u, v: Fraction(0),
        )
        for v in grid44.nodes:
            seen = set()
            x = v
            while result.parent.get(x) is not None:
                assert x not in seen, "parent cycle"
                seen.add(x)
                x = result.parent[x]

    def test_initial_distances_respected(self, path5):
        run = CongestRun(path5)
        result = bellman_ford(
            path5, {0: (10, "far"), 4: (0, "near")}, run
        )
        # Node 2: via 0 costs 12, via 4 costs 2.
        assert result.tag[2] == "near"


class TestPipelinedFilteredUpcast:
    def _tree(self, graph):
        run = CongestRun(graph)
        return build_bfs_tree(graph, run), run

    def test_cycle_filtered(self, grid44):
        tree, run = self._tree(grid44)
        items = {
            0: [MergeItem((1,), "x", "y")],
            5: [MergeItem((2,), "y", "z")],
            10: [MergeItem((3,), "x", "z")],  # closes a cycle
        }
        accepted = pipelined_filtered_upcast(tree, items, {}, run)
        assert [m.key for m in accepted] == [(1,), (2,)]

    def test_base_components_respected(self, grid44):
        tree, run = self._tree(grid44)
        items = {0: [MergeItem((1,), "x", "y")]}
        accepted = pipelined_filtered_upcast(
            tree, items, {"x": "c", "y": "c"}, run
        )
        assert accepted == []

    def test_duplicates_deduplicated(self, grid44):
        tree, run = self._tree(grid44)
        items = {
            0: [MergeItem((1,), "x", "y")],
            15: [MergeItem((1,), "x", "y")],
        }
        accepted = pipelined_filtered_upcast(tree, items, {}, run)
        assert len(accepted) == 1

    def test_stop_predicate_truncates(self, grid44):
        tree, run = self._tree(grid44)
        items = {
            0: [MergeItem((1,), "a", "b")],
            1: [MergeItem((2,), "b", "c")],
            2: [MergeItem((3,), "c", "d")],
        }
        accepted = pipelined_filtered_upcast(
            tree, items, {}, run,
            stop_predicate=lambda prefix: len(prefix) == 2,
        )
        assert [m.key for m in accepted] == [(1,), (2,)]

    def test_round_bound(self, grid44):
        tree, run = self._tree(grid44)
        items = {
            v: [MergeItem((v,), f"a{v}", f"b{v}")] for v in grid44.nodes
        }
        start = run.rounds
        accepted = pipelined_filtered_upcast(tree, items, {}, run)
        assert run.rounds - start <= 3 * tree.depth + len(accepted) + 18

    def test_merge_item_ordering(self):
        assert MergeItem((1, 2), "a", "b") < MergeItem((1, 3), "a", "b")
        assert MergeItem((1,), "a", "b") == MergeItem((1,), "c", "d")
