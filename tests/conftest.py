"""Shared fixtures for the test suite."""

import random

import networkx as nx
import pytest

from repro.model import WeightedGraph
from repro.model.instance import instance_from_components


@pytest.fixture
def rng():
    return random.Random(0xABCDEF)


@pytest.fixture
def triangle():
    """A weighted triangle: the simplest graph with a cycle."""
    return WeightedGraph([0, 1, 2], [(0, 1, 1), (1, 2, 2), (0, 2, 4)])


@pytest.fixture
def path5():
    """A unit-weight path on 5 nodes."""
    return WeightedGraph(
        range(5), [(i, i + 1, 1) for i in range(4)]
    )


@pytest.fixture
def grid33():
    """A 3×3 unit-weight grid."""
    g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(3, 3))
    return WeightedGraph.from_networkx(g)


@pytest.fixture
def grid44():
    """A 4×4 unit-weight grid."""
    g = nx.convert_node_labels_to_integers(nx.grid_2d_graph(4, 4))
    return WeightedGraph.from_networkx(g)


@pytest.fixture
def grid_instance_2comp(grid44):
    """Two 2-terminal components on opposite corners of the 4×4 grid."""
    return instance_from_components(grid44, [[0, 15], [3, 12]])


def make_random_instance(seed, n_range=(8, 16), k_range=(1, 3),
                         comp_size_range=(2, 3), p=0.4, max_weight=20):
    """Deterministic random instance used across test modules."""
    rng = random.Random(seed)
    n = rng.randint(*n_range)
    g = nx.gnp_random_graph(n, p, seed=rng.randrange(1 << 30))
    if not nx.is_connected(g):
        g = nx.compose(g, nx.path_graph(n))
    for u, v in g.edges:
        g[u][v]["weight"] = rng.randint(1, max_weight)
    graph = WeightedGraph.from_networkx(g)
    nodes = list(graph.nodes)
    rng.shuffle(nodes)
    k = rng.randint(*k_range)
    components, idx = [], 0
    for _ in range(k):
        size = rng.randint(*comp_size_range)
        components.append(nodes[idx: idx + size])
        idx += size
    return instance_from_components(graph, components)
