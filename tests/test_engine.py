"""Tests for the experiment engine (registry, jobs, runner, store)."""

import json

import pytest

from repro.engine import (
    ALGORITHMS,
    GRAPH_FAMILIES,
    REGISTRY,
    ResultStore,
    ScenarioSpec,
    aggregate_records,
    build_instance,
    content_hash,
    execute_job,
    expand_grid,
    expand_jobs,
    render_report,
    run_spec,
    run_suite,
)
from repro.engine.jobs import Job


def tiny_spec(**overrides):
    """A spec small enough to execute in-process during tests."""
    fields = dict(
        name="tiny",
        family="gnp",
        algorithms=("moat", "distributed"),
        grid={"n": [8, 10], "p": 0.4, "k": 2, "component_size": 2},
        seeds=1,
    )
    fields.update(overrides)
    return ScenarioSpec(**fields)


class TestSpecValidation:
    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError, match="family"):
            tiny_spec(family="nope")

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(ValueError, match="algorithms"):
            tiny_spec(algorithms=("moat", "nope"))

    def test_round_trips_through_dict(self):
        spec = tiny_spec(algo_grid={"eps": ["1/2"]}, exact=True)
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_registry_covers_families_and_algorithms(self):
        # The acceptance bar for the default sweep: ≥ 2 graph families
        # and ≥ 3 algorithms across the built-in scenarios.
        specs = REGISTRY.specs()
        assert len({s.family for s in specs}) >= 2
        assert len({a for s in specs for a in s.algorithms}) >= 3


class TestJobExpansion:
    def test_grid_cartesian_product(self):
        grid = expand_grid({"a": [1, 2], "b": [3, 4], "c": 9})
        assert len(grid) == 4
        assert {"a": 1, "b": 4, "c": 9} in grid

    def test_job_count(self):
        spec = tiny_spec(seeds=3, algo_grid={"x": [1, 2]})
        # 2 grid points × 2 algo grid points × 2 algorithms × 3 seeds.
        assert len(expand_jobs(spec)) == 24

    def test_keys_are_stable_and_distinct(self):
        jobs = expand_jobs(tiny_spec())
        keys = [job.key for job in jobs]
        assert len(set(keys)) == len(keys)
        assert keys == [job.key for job in expand_jobs(tiny_spec())]

    def test_content_hash_ignores_key_order(self):
        assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})

    def test_instance_shared_across_algorithms(self):
        spec = tiny_spec()
        jobs = expand_jobs(spec)
        moat = next(j for j in jobs if j.algorithm == "moat")
        dist = next(
            j
            for j in jobs
            if j.algorithm == "distributed"
            and j.family_params == moat.family_params
            and j.seed_index == moat.seed_index
        )
        a, b = build_instance(moat), build_instance(dist)
        assert a.graph.nodes == b.graph.nodes
        assert a.graph.edges() == b.graph.edges()
        assert a.labels == b.labels

    def test_graph_shared_across_placement_sweep(self):
        # Sweeping k re-places terminals on the *same* graph.
        j2 = Job("s", "gnp", {"n": 12, "p": 0.4}, 2, 2, "moat")
        j3 = Job("s", "gnp", {"n": 12, "p": 0.4}, 3, 2, "moat")
        a, b = build_instance(j2), build_instance(j3)
        assert a.graph.edges() == b.graph.edges()
        assert a.num_components == 2 and b.num_components == 3


class TestPlacementAxis:
    def test_default_placement_cache_key_and_seeds_pinned(self):
        # Uniform-placement jobs must keep the exact cache keys and
        # derived seeds of pre-placement-axis schemas (v1–v3 stores keep
        # absorbing re-runs). These constants were computed before the
        # placement field existed.
        job = Job("gnp-core", "gnp", {"n": 12, "p": 0.3}, 2, 2, "moat")
        assert job.key == (
            "17d647613802497ccc0eb1712e4becfc8a92a106e4993d6a29a0d307fe7b78fb"
        )
        assert job.graph_seed() == 4256871043532638782
        assert job.placement_seed() == 3595446297050400242
        assert job.algorithm_seed() == 4657064864270727341

    def test_default_placement_omitted_from_identity(self):
        job = Job("s", "gnp", {"n": 12, "p": 0.4}, 2, 2, "moat")
        assert "placement" not in job.identity()
        swept = Job(
            "s", "gnp", {"n": 12, "p": 0.4}, 2, 2, "moat",
            placement="far_pairs",
        )
        assert swept.identity()["placement"] == "far_pairs"
        assert swept.key != job.key
        assert swept.placement_seed() != job.placement_seed()
        # The graph stream ignores placement entirely: every strategy
        # re-places terminals on the same graph.
        assert swept.graph_seed() == job.graph_seed()

    def test_unknown_placement_rejected_at_construction(self):
        with pytest.raises(ValueError, match="unknown terminal placement"):
            Job("s", "gnp", {"n": 12}, 2, 2, "moat", placement="teleport")

    def test_job_round_trips_placement(self):
        job = Job(
            "s", "gnp", {"n": 12, "p": 0.4}, 2, 2, "moat",
            placement="clustered",
        )
        clone = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.placement == "clustered"

    def test_spec_placement_grid_validates_and_sweeps(self):
        with pytest.raises(ValueError, match="unknown terminal placements"):
            tiny_spec(grid={"n": 8, "k": 2, "placement": "teleport"})
        spec = tiny_spec(
            grid={
                "n": 8, "p": 0.4, "k": 2, "component_size": 2,
                "placement": ["uniform", "hub_spoke"],
            },
        )
        jobs = expand_jobs(spec)
        assert {job.placement for job in jobs} == {"uniform", "hub_spoke"}
        # Sweeping placements doubles the grid without touching the
        # family parameters routed to the graph builder.
        assert all("placement" not in job.family_params for job in jobs)

    def test_build_instance_dispatches_placement(self):
        base = Job("s", "gnp", {"n": 14, "p": 0.4}, 2, 2, "moat")
        hub = Job(
            "s", "gnp", {"n": 14, "p": 0.4}, 2, 2, "moat",
            placement="hub_spoke",
        )
        a, b = build_instance(base), build_instance(hub)
        assert a.graph.edges() == b.graph.edges()  # same graph stream
        graph = a.graph
        hub_node = max(
            graph.nodes, key=lambda v: (graph.degree(v), repr(v))
        )
        assert hub_node in b.terminals

    def test_record_carries_placement_and_report_grows_column(self):
        spec = tiny_spec(
            algorithms=("moat",),
            grid={
                "n": 8, "p": 0.4, "k": 2, "component_size": 2,
                "placement": ["uniform", "far_pairs"],
            },
        )
        records = [execute_job(job.to_dict()) for job in expand_jobs(spec)]
        assert {r["placement"] for r in records} == {"uniform", "far_pairs"}
        report = render_report(records)
        assert "placement" in report
        assert "far_pairs" in report
        # A uniform-only record set keeps the compact table.
        uniform_only = [r for r in records if r["placement"] == "uniform"]
        assert "placement" not in render_report(uniform_only)


class TestExecuteJob:
    def test_deterministic_record(self):
        job = expand_jobs(tiny_spec())[0].to_dict()
        first, second = execute_job(job), execute_job(job)
        first["metrics"].pop("wall_time")
        second["metrics"].pop("wall_time")
        assert first == second

    def test_metrics_present(self):
        spec = tiny_spec(algorithms=("distributed",))
        record = execute_job(expand_jobs(spec)[0].to_dict())
        metrics = record["metrics"]
        assert metrics["weight"] >= 0
        assert metrics["rounds"] > 0
        assert metrics["messages"] > 0
        assert metrics["n"] in (8, 10)

    def test_exact_mode_records_ratio(self):
        spec = tiny_spec(
            algorithms=("moat",), grid={"n": 8, "k": 2, "component_size": 2},
            exact=True,
        )
        record = execute_job(expand_jobs(spec)[0].to_dict())
        assert record["metrics"]["ratio"] <= 2.0 + 1e-9

    def test_algo_params_reach_the_solver(self):
        spec = tiny_spec(
            algorithms=("rounded",),
            grid={"n": 10, "k": 2, "component_size": 2},
            algo_grid={"eps": ["1/10", "2"]},
        )
        records = [execute_job(j.to_dict()) for j in expand_jobs(spec)]
        phases = {
            r["algo_params"]["eps"]: r["metrics"]["growth_phases"]
            for r in records
        }
        # Coarser ε ⇒ no more growth phases (Lemma F.1).
        assert phases["1/10"] >= phases["2"]


class TestStore:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        assert len(store) == 0 and store.keys() == set()
        store.append([{"key": "k1", "scenario": "s", "metrics": {}}])
        store.append([{"key": "k2", "scenario": "t", "metrics": {}}])
        assert store.keys() == {"k1", "k2"}
        assert [r["key"] for r in store.records()] == ["k1", "k2"]
        assert store.select(scenario="t")[0]["key"] == "k2"


class TestRunner:
    def test_rerun_hits_cache_completely(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "r.jsonl")
        first = run_spec(spec, store=store, parallel=False)
        assert first.executed == len(expand_jobs(spec)) and first.cached == 0
        second = run_spec(spec, store=store, parallel=False)
        assert second.executed == 0
        assert second.cached == first.executed
        assert len(second.records) == len(first.records)
        # Nothing was appended by the cached run.
        assert len(store) == first.executed

    def test_partial_cache_runs_only_new_rows(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        run_spec(tiny_spec(), store=store, parallel=False)
        grown = tiny_spec(grid={"n": [8, 10, 12], "p": 0.4, "k": 2,
                                "component_size": 2})
        stats = run_spec(grown, store=store, parallel=False)
        assert stats.cached == 4  # the original 2×2 grid rows
        assert stats.executed == 2  # only the n=12 rows

    def test_parallel_execution_in_worker_processes(self, tmp_path):
        spec = tiny_spec()
        store = ResultStore(tmp_path / "r.jsonl")
        stats = run_spec(spec, store=store, parallel=True, max_workers=2)
        assert stats.executed == len(expand_jobs(spec))
        serial = [
            execute_job(j.to_dict()) for j in expand_jobs(spec)
        ]
        for par, ser in zip(stats.records, serial):
            assert par["key"] == ser["key"]
            assert par["metrics"]["weight"] == ser["metrics"]["weight"]

    def test_run_suite_shares_one_store(self, tmp_path):
        store = ResultStore(tmp_path / "r.jsonl")
        specs = [tiny_spec(), tiny_spec(name="tiny2", family="grid",
                                        grid={"rows": 3, "cols": 3, "k": 2,
                                              "component_size": 2})]
        all_stats = run_suite(specs, store=store, parallel=False)
        assert [s.scenario for s in all_stats] == ["tiny", "tiny2"]
        assert len(store) == sum(s.executed for s in all_stats)


class TestAggregateAndReport:
    @pytest.fixture(scope="class")
    def records(self):
        return run_spec(tiny_spec(), parallel=False).records

    def test_aggregate_rows(self, records):
        rows = aggregate_records(records)
        assert {row.algorithm for row in rows} == {"moat", "distributed"}
        for row in rows:
            assert row.scenario == "tiny"
            assert row.jobs == 2
            assert row.mean_weight > 0
        dist = next(r for r in rows if r.algorithm == "distributed")
        assert dist.mean_rounds > 0

    def test_report_renders(self, records):
        text = render_report(records)
        assert "scenario: tiny" in text
        assert "distributed" in text and "moat" in text
        assert render_report([]) == "no records"


class TestNetworkAxis:
    NETWORKS = [
        "reliable",
        {"model": "delay", "params": {"max_delay": 3}},
        {"model": "lossy", "params": {"drop_p": 0.2, "retransmit": 1}},
    ]

    def test_default_network_keeps_v1_identity(self):
        job = expand_jobs(tiny_spec())[0]
        # Schema-v1 cache keys and derived seeds depended on exactly
        # these fields; the default network must not perturb them.
        assert "network" not in job.identity()
        assert set(job.identity()) == {
            "scenario", "family", "family_params", "k", "component_size",
            "algorithm", "algo_params", "seed_index", "exact",
        }

    def test_each_network_gets_its_own_cache_key(self):
        spec = tiny_spec(network=self.NETWORKS)
        jobs = expand_jobs(spec)
        assert len(jobs) == 3 * len(expand_jobs(tiny_spec()))
        keys = {job.key for job in jobs}
        assert len(keys) == len(jobs)
        by_network = {job.network["model"] for job in jobs}
        assert by_network == {"reliable", "delay", "lossy"}

    def test_algorithm_seed_is_network_independent(self):
        spec = tiny_spec(network=self.NETWORKS, algorithms=("moat",))
        jobs = [j for j in expand_jobs(spec) if j.seed_index == 0][:3]
        seeds = {j.algorithm_seed() for j in jobs}
        assert len(seeds) == 1  # same coins on every channel

    def test_spec_round_trips_with_network(self):
        spec = tiny_spec(network=self.NETWORKS)
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.network_names == ("reliable", "delay", "lossy")

    def test_unknown_network_model_rejected(self):
        with pytest.raises(ValueError, match="unknown network models"):
            tiny_spec(network="warp-drive")

    def test_bad_network_params_rejected_at_construction(self):
        # Mistyped parameters must fail when the spec is built, not as a
        # crashed worker halfway through a sweep.
        with pytest.raises(ValueError, match="bad parameters"):
            tiny_spec(network={"model": "lossy", "params": {"dropp": 0.1}})

    def test_sweep_crosses_networks_with_distinct_cached_rows(self, tmp_path):
        spec = tiny_spec(
            network=self.NETWORKS,
            algorithms=("distributed",),
            grid={"n": 8, "p": 0.4, "k": 2, "component_size": 2},
        )
        store = ResultStore(tmp_path / "r.jsonl")
        stats = run_spec(spec, store=store, parallel=False)
        assert stats.executed == 3
        models = {r["network_model"] for r in stats.records}
        assert models == {"reliable", "delay", "lossy"}
        # Re-running hits the cache for every network condition.
        again = run_spec(spec, store=store, parallel=False)
        assert again.executed == 0 and again.cached == 3

    def test_adverse_records_carry_emulated_rounds(self):
        spec = tiny_spec(
            network=[{"model": "delay", "params": {"max_delay": 4}}],
            algorithms=("distributed",),
            grid={"n": 8, "p": 0.4, "k": 2, "component_size": 2},
        )
        record = execute_job(expand_jobs(spec)[0].to_dict())
        metrics = record["metrics"]
        assert metrics["emulated_rounds"] == 4 * metrics["rounds"]

    def test_reliable_records_have_no_emulated_rounds(self):
        record = execute_job(expand_jobs(tiny_spec())[0].to_dict())
        assert "emulated_rounds" not in record["metrics"]
        assert record["network_model"] == "reliable"

    def test_report_grows_network_column_only_when_adverse(self):
        spec = tiny_spec(
            network=self.NETWORKS,
            algorithms=("distributed",),
            grid={"n": 8, "p": 0.4, "k": 2, "component_size": 2},
        )
        adverse = render_report(run_spec(spec, parallel=False).records)
        assert "network" in adverse and "lossy" in adverse
        clean = render_report(run_spec(tiny_spec(), parallel=False).records)
        assert "network" not in clean

    def test_builtin_adversity_scenario_registered(self):
        spec = REGISTRY.get("gnp-adversity")
        assert len(spec.network_names) >= 3

    def test_pre_netmodel_metrics_regression(self):
        # Metrics snapshot taken before the netmodel subsystem existed:
        # on the default channel, job seeds, instances, and results must
        # reproduce exactly.
        spec = ScenarioSpec(
            name="t",
            family="gnp",
            algorithms=("distributed", "sublinear"),
            grid={"n": 10, "p": 0.4, "k": 2, "component_size": 2},
            seeds=1,
        )
        by_algo = {
            job.algorithm: execute_job(job.to_dict())["metrics"]
            for job in expand_jobs(spec)
        }
        assert by_algo["distributed"]["rounds"] == 54
        assert by_algo["distributed"]["messages"] == 307
        assert by_algo["distributed"]["weight"] == 18
        assert by_algo["sublinear"]["rounds"] == 276
        assert by_algo["sublinear"]["messages"] == 882
        assert by_algo["sublinear"]["weight"] == 18


class TestBackendAxis:
    BACKENDS = [
        "reference",
        "flatarray",
        {"name": "sharded", "params": {"num_shards": 2}},
    ]

    def test_default_backend_keeps_v2_identity(self):
        job = expand_jobs(tiny_spec())[0]
        # Schema-v2 cache keys depended on exactly these fields; the
        # default reference engine must not perturb them.
        assert "backend" not in job.identity()
        assert set(job.identity()) == {
            "scenario", "family", "family_params", "k", "component_size",
            "algorithm", "algo_params", "seed_index", "exact",
        }

    def test_each_backend_gets_its_own_cache_key(self):
        spec = tiny_spec(backend=self.BACKENDS)
        jobs = expand_jobs(spec)
        assert len(jobs) == 3 * len(expand_jobs(tiny_spec()))
        keys = {job.key for job in jobs}
        assert len(keys) == len(jobs)
        assert {job.backend["name"] for job in jobs} == {
            "reference", "flatarray", "sharded",
        }

    def test_algorithm_seed_is_backend_independent(self):
        spec = tiny_spec(backend=self.BACKENDS, algorithms=("moat",))
        jobs = [j for j in expand_jobs(spec) if j.seed_index == 0][:3]
        assert len({j.algorithm_seed() for j in jobs}) == 1

    def test_spec_round_trips_with_backend(self):
        spec = tiny_spec(backend=self.BACKENDS)
        clone = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.backend_names == ("reference", "flatarray", "sharded")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation backends"):
            tiny_spec(backend="warp-core")

    def test_bad_backend_params_rejected_at_construction(self):
        with pytest.raises(ValueError, match="bad parameters"):
            tiny_spec(backend={"name": "sharded", "params": {"shardz": 2}})

    def test_sweep_crosses_backends_with_distinct_cached_rows(self, tmp_path):
        spec = tiny_spec(
            backend=["reference", "flatarray"],
            algorithms=("distributed",),
            grid={"n": 8, "p": 0.4, "k": 2, "component_size": 2},
        )
        store = ResultStore(tmp_path / "r.jsonl")
        stats = run_spec(spec, store=store, parallel=False)
        assert stats.executed == 2
        assert {r["backend_name"] for r in stats.records} == {
            "reference", "flatarray",
        }
        # The engine axis never changes ledger-level solver results.
        assert len({r["metrics"]["weight"] for r in stats.records}) == 1
        again = run_spec(spec, store=store, parallel=False)
        assert again.executed == 0 and again.cached == 2

    def test_report_grows_backend_column_only_when_non_default(self):
        spec = tiny_spec(
            backend=["reference", "flatarray"],
            algorithms=("distributed",),
            grid={"n": 8, "p": 0.4, "k": 2, "component_size": 2},
        )
        multi = render_report(run_spec(spec, parallel=False).records)
        assert "backend" in multi and "flatarray" in multi
        clean = render_report(run_spec(tiny_spec(), parallel=False).records)
        assert "backend" not in clean


class TestRunnerProgress:
    def test_progress_lines_emitted(self, tmp_path):
        spec = tiny_spec(algorithms=("moat",), seeds=1)
        store = ResultStore(tmp_path / "r.jsonl")
        lines = []
        stats = run_spec(spec, store=store, parallel=False, log=lines.append)
        assert stats.executed == 2
        # One header line plus one completion line per executed job.
        assert lines[0] == "[tiny] 2 jobs: 0 cache hits, 2 to run"
        assert lines[1].startswith("[tiny] job 1/2 done: moat")
        assert lines[2].startswith("[tiny] job 2/2 done: moat")

    def test_progress_reports_cache_hits(self, tmp_path):
        spec = tiny_spec(algorithms=("moat",), seeds=1)
        store = ResultStore(tmp_path / "r.jsonl")
        run_spec(spec, store=store, parallel=False)
        lines = []
        run_spec(spec, store=store, parallel=False, log=lines.append)
        assert lines == ["[tiny] 2 jobs: 2 cache hits, 0 to run"]

    def test_silent_by_default(self, capsys, tmp_path):
        run_spec(
            tiny_spec(algorithms=("moat",), seeds=1),
            store=ResultStore(tmp_path / "r.jsonl"),
            parallel=False,
        )
        assert capsys.readouterr().err == ""

    def test_parallel_defaults_to_cpu_count_workers(self, tmp_path):
        # max_workers=None must resolve to os.cpu_count() (not the
        # executor's own default); observable as a successful parallel
        # run with progress for every job.
        lines = []
        spec = tiny_spec(algorithms=("moat",), seeds=1)
        stats = run_spec(
            spec,
            store=ResultStore(tmp_path / "r.jsonl"),
            parallel=True,
            max_workers=None,
            log=lines.append,
        )
        assert stats.executed == 2
        done_lines = [line for line in lines if "done:" in line]
        assert len(done_lines) == 2


class TestStoreSchemaMigration:
    V1_ROW = {
        "key": "v1-row",
        "scenario": "legacy",
        "algorithm": "moat",
        "schema": 1,
        "metrics": {"weight": 3},
    }

    def test_v1_rows_read_as_reliable(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(json.dumps(self.V1_ROW) + "\n")
        store = ResultStore(path)
        (row,) = store.records()
        assert row["network"] == {"model": "reliable", "params": {}}
        assert row["network_model"] == "reliable"

    def test_pre_v3_rows_read_as_reference_backend(self, tmp_path):
        # v1 and v2 rows predate the backend axis: both read back as the
        # reference engine, and the backend filter sees them.
        v2_row = dict(
            self.V1_ROW,
            key="v2-row",
            schema=2,
            network={"model": "lossy", "params": {"drop_p": 0.1}},
            network_model="lossy",
        )
        path = tmp_path / "mixed.jsonl"
        path.write_text(
            json.dumps(self.V1_ROW) + "\n" + json.dumps(v2_row) + "\n"
        )
        store = ResultStore(path)
        rows = list(store.records())
        assert all(
            r["backend"] == {"name": "reference", "params": {}} for r in rows
        )
        assert all(r["backend_name"] == "reference" for r in rows)
        assert {r["key"] for r in store.select(backend="reference")} == {
            "v1-row", "v2-row",
        }
        assert store.select(backend="flatarray") == []

    def test_mixed_version_round_trip(self, tmp_path):
        path = tmp_path / "mixed.jsonl"
        path.write_text(json.dumps(self.V1_ROW) + "\n")
        store = ResultStore(path)
        store.append(
            [
                {
                    "key": "v2-row",
                    "scenario": "legacy",
                    "algorithm": "moat",
                    "network": {"model": "lossy", "params": {"drop_p": 0.1}},
                    "network_model": "lossy",
                    "metrics": {"weight": 5},
                }
            ]
        )
        reread = ResultStore(path)  # fresh parse of the mixed file
        assert reread.keys() == {"v1-row", "v2-row"}
        assert [r["network_model"] for r in reread.records()] == [
            "reliable", "lossy",
        ]
        # Unstamped appends get the current (bumped) schema version.
        assert [r["schema"] for r in reread.records()] == [1, 5]
        assert [r["key"] for r in reread.select(network="lossy")] == ["v2-row"]
        assert [r["key"] for r in reread.select(network="reliable")] == [
            "v1-row"
        ]


class TestRegistryTables:
    def test_algorithm_specs_carry_runners(self):
        for name, spec in ALGORITHMS.items():
            assert spec.name == name
            assert callable(spec.run)

    def test_families_build_graphs(self):
        import random

        for name, family in GRAPH_FAMILIES.items():
            graph = family.build(random.Random(0))
            assert graph.num_nodes > 0, name
